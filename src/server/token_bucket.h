#ifndef VIEWJOIN_SERVER_TOKEN_BUCKET_H_
#define VIEWJOIN_SERVER_TOKEN_BUCKET_H_

#include <algorithm>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>

namespace viewjoin::server {

/// Classic token bucket: `rate_per_sec` tokens refill continuously up to
/// `burst`. Time is caller-supplied (monotonic nanoseconds) so tests are
/// deterministic — the server feeds it steady_clock, tests feed it a counter.
class TokenBucket {
 public:
  TokenBucket(double rate_per_sec, double burst, int64_t now_ns)
      : rate_per_sec_(rate_per_sec),
        burst_(burst),
        tokens_(burst),
        last_ns_(now_ns) {}

  /// Takes one token if available. On refusal, *retry_after_ms says how long
  /// until a token will exist — the Retry-After hint clients honor.
  bool TryAcquire(int64_t now_ns, double* retry_after_ms) {
    Refill(now_ns);
    if (tokens_ >= 1.0) {
      tokens_ -= 1.0;
      if (retry_after_ms != nullptr) *retry_after_ms = 0;
      return true;
    }
    if (retry_after_ms != nullptr) {
      *retry_after_ms =
          rate_per_sec_ > 0 ? (1.0 - tokens_) / rate_per_sec_ * 1e3 : 1e9;
    }
    return false;
  }

  double tokens() const { return tokens_; }

 private:
  void Refill(int64_t now_ns) {
    if (now_ns <= last_ns_) return;
    double elapsed_sec = static_cast<double>(now_ns - last_ns_) * 1e-9;
    tokens_ = std::min(burst_, tokens_ + elapsed_sec * rate_per_sec_);
    last_ns_ = now_ns;
  }

  double rate_per_sec_;
  double burst_;
  double tokens_;
  int64_t last_ns_;
};

/// Per-tenant quota table: one TokenBucket per tenant key, created lazily
/// with a uniform rate/burst. Thread-safe; over-quota is a typed refusal at
/// admission, never a queued hang.
class TenantQuotas {
 public:
  /// rate_per_sec <= 0 disables quotas entirely (every acquire succeeds).
  TenantQuotas(double rate_per_sec, double burst)
      : rate_per_sec_(rate_per_sec), burst_(burst) {}

  bool TryAcquire(const std::string& tenant, int64_t now_ns,
                  double* retry_after_ms) {
    if (rate_per_sec_ <= 0) {
      if (retry_after_ms != nullptr) *retry_after_ms = 0;
      return true;
    }
    std::lock_guard<std::mutex> lock(mu_);
    auto it = buckets_.find(tenant);
    if (it == buckets_.end()) {
      it = buckets_
               .emplace(tenant, TokenBucket(rate_per_sec_, burst_, now_ns))
               .first;
    }
    return it->second.TryAcquire(now_ns, retry_after_ms);
  }

  size_t tenant_count() const {
    std::lock_guard<std::mutex> lock(mu_);
    return buckets_.size();
  }

 private:
  const double rate_per_sec_;
  const double burst_;
  mutable std::mutex mu_;
  std::map<std::string, TokenBucket> buckets_;
};

}  // namespace viewjoin::server

#endif  // VIEWJOIN_SERVER_TOKEN_BUCKET_H_
