#ifndef VIEWJOIN_SERVER_NET_H_
#define VIEWJOIN_SERVER_NET_H_

#include <cstdint>
#include <string>

#include "util/fault_injection.h"
#include "util/status.h"

namespace viewjoin::server {

/// True when `status` is the typed deadline-expiry error Conn's SendFrame /
/// RecvFrame return — the server counts these (slowloris reaping) separately
/// from hard transport failures.
bool IsTimeout(const util::Status& status);

/// True when `status` is the typed clean-EOF "connection closed by peer".
bool IsPeerClosed(const util::Status& status);

/// One TCP connection with per-operation deadlines, framed send/recv, and
/// deterministic fault injection (util::SocketFaultInjector is consulted on
/// every physical send/recv, so tests can force short I/O, resets and stalls
/// on either end of the wire).
///
/// Deadlines are the slowloris defense: a peer that dribbles a byte a minute
/// — or stops mid-frame — costs the owner at most one deadline interval, not
/// a pinned thread. They are per *operation attempt*, implemented with
/// SO_RCVTIMEO/SO_SNDTIMEO on a blocking socket; a frame read that makes no
/// progress within the deadline fails with the typed timeout error.
///
/// Move-only; the destructor closes the socket.
class Conn {
 public:
  Conn() = default;  // invalid connection
  Conn(int fd, util::SocketEnd end);
  ~Conn();

  Conn(Conn&& other) noexcept;
  Conn& operator=(Conn&& other) noexcept;
  Conn(const Conn&) = delete;
  Conn& operator=(const Conn&) = delete;

  /// Connects to `host`:`port` with a bounded handshake (no indefinite
  /// blocking on an unresponsive address).
  static util::StatusOr<Conn> Connect(const std::string& host, uint16_t port,
                                      double timeout_ms = 5000);

  bool valid() const { return fd_ >= 0; }
  int fd() const { return fd_; }

  /// Per-operation deadlines in milliseconds (0 = block indefinitely).
  void set_read_deadline_ms(double ms) { read_deadline_ms_ = ms; }
  void set_write_deadline_ms(double ms) { write_deadline_ms_ = ms; }
  double read_deadline_ms() const { return read_deadline_ms_; }

  /// Sends one frame (header + payload). Refuses payloads above
  /// `max_frame_bytes` locally — the peer would reject them anyway.
  util::Status SendFrame(const std::string& payload, uint32_t max_frame_bytes);

  /// Receives one frame's payload. Typed errors:
  ///   kNotFound           clean EOF before any byte (peer closed);
  ///   kIoError            timeout (see IsTimeout) or transport failure;
  ///   kCorruption         bad magic or EOF mid-frame;
  ///   kResourceExhausted  declared length above `max_frame_bytes`.
  util::StatusOr<std::string> RecvFrame(uint32_t max_frame_bytes);

  /// Graceful close.
  void Close();

  /// Abortive close: SO_LINGER 0, so the peer sees an RST instead of an
  /// orderly FIN. Used by the injected-reset fault to put a real reset on
  /// the wire.
  void HardClose();

  /// Half-close for early replies sent before the request was read (load
  /// shedding): flushes our response, signals no-more-writes, then drains
  /// the peer's unread bytes for up to `drain_ms` so closing cannot RST the
  /// response out of the peer's receive buffer.
  void FinishAndDrain(double drain_ms);

 private:
  util::Status SendAll(const uint8_t* data, size_t len);
  /// Reads exactly `len` bytes unless EOF/fault; *got reports progress.
  util::Status RecvAll(uint8_t* data, size_t len, size_t* got);

  int fd_ = -1;
  util::SocketEnd end_ = util::SocketEnd::kAny;
  double read_deadline_ms_ = 0;
  double write_deadline_ms_ = 0;
};

/// Listening socket bound to 127.0.0.1 (the server fronts one host; a
/// production deployment would put a TLS terminator or mesh proxy in front).
class Listener {
 public:
  Listener() = default;
  ~Listener();

  Listener(Listener&& other) noexcept;
  Listener& operator=(Listener&& other) noexcept;
  Listener(const Listener&) = delete;
  Listener& operator=(const Listener&) = delete;

  /// Binds and listens; port 0 picks an ephemeral port (see port()).
  static util::StatusOr<Listener> Bind(uint16_t port, int backlog = 64);

  bool valid() const { return fd_ >= 0; }
  uint16_t port() const { return port_; }

  /// Blocking accept. Fails with kCancelled-like kIoError("listener closed")
  /// once Shutdown() has been called from another thread — the accept loop's
  /// exit signal.
  util::StatusOr<Conn> Accept();

  /// Unblocks Accept() and refuses further connections (drain step 1).
  /// Idempotent; safe from any thread.
  void Shutdown();

 private:
  int fd_ = -1;
  uint16_t port_ = 0;
};

}  // namespace viewjoin::server

#endif  // VIEWJOIN_SERVER_NET_H_
