#include "server/server.h"

#include <algorithm>
#include <chrono>
#include <optional>
#include <thread>
#include <utility>

#include "tpq/pattern.h"
#include "util/check.h"
#include "xml/parser.h"

namespace viewjoin::server {

namespace {

constexpr auto kWatchdogTick = std::chrono::milliseconds(5);

QueryResponse ErrorResponse(std::string message) {
  QueryResponse response;
  response.verdict = Verdict::kError;
  response.error = std::move(message);
  return response;
}

}  // namespace

QueryServer::QueryServer(core::Engine* engine, const ServerOptions& options)
    : engine_(engine),
      options_(options),
      quotas_(options.quota_rate_per_sec, options.quota_burst) {}

QueryServer::~QueryServer() {
  if (state_.load(std::memory_order_acquire) == State::kServing ||
      state_.load(std::memory_order_acquire) == State::kDraining) {
    Drain();
  }
}

int64_t QueryServer::NowNanos() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

double QueryServer::EffectiveReadDeadline() const {
  return draining() ? options_.drain_read_deadline_ms
                    : options_.read_deadline_ms;
}

util::Status QueryServer::Start() {
  VJ_CHECK(state_.load() == State::kIdle) << "server already started";
  util::StatusOr<Listener> bound = Listener::Bind(options_.port);
  if (!bound.ok()) return bound.status();
  listener_ = std::move(*bound);

  size_t workers = std::max<size_t>(options_.workers, 1);
  sessions_.reserve(workers);
  for (size_t i = 0; i < workers; ++i) {
    sessions_.push_back(std::make_unique<core::Engine::Session>(engine_, i));
  }

  state_.store(State::kServing, std::memory_order_release);
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  worker_threads_.reserve(workers);
  for (size_t i = 0; i < workers; ++i) {
    worker_threads_.emplace_back([this, i] { WorkerLoop(i); });
  }
  watchdog_ = std::thread([this] { WatchdogLoop(); });
  return util::Status::Ok();
}

void QueryServer::AcceptLoop() {
  while (true) {
    util::StatusOr<Conn> conn = listener_.Accept();
    if (!conn.ok()) return;  // listener shut down: drain step 1
    connections_accepted_.fetch_add(1, std::memory_order_relaxed);

    size_t depth;
    {
      std::lock_guard<std::mutex> lock(mu_);
      depth = pending_.size();
    }
    // Load shedding happens here, before the request is read: a saturated
    // server answers "come back later" in O(1) instead of queueing work it
    // cannot serve within any deadline.
    if (depth >= options_.max_pending) {
      rejected_shed_.fetch_add(1, std::memory_order_relaxed);
      Shed(std::move(*conn), "pending-connection queue at high water");
      continue;
    }
    if (options_.memory_high_water_bytes > 0 &&
        options_.per_query_memory_budget > 0) {
      uint64_t committed =
          (in_flight_.load(std::memory_order_relaxed) + depth + 1) *
          options_.per_query_memory_budget;
      if (committed > options_.memory_high_water_bytes) {
        rejected_shed_.fetch_add(1, std::memory_order_relaxed);
        Shed(std::move(*conn), "memory budget at high water");
        continue;
      }
    }
    {
      std::lock_guard<std::mutex> lock(mu_);
      pending_.push_back(std::move(*conn));
    }
    cv_.notify_one();
  }
}

void QueryServer::Shed(Conn conn, const char* why) {
  QueryResponse response;
  response.verdict = Verdict::kRejected;
  response.error = std::string("shed: ") + why;
  response.retry_after_ms = options_.shed_retry_after_ms;
  conn.set_write_deadline_ms(options_.write_deadline_ms);
  if (conn.SendFrame(EncodeQueryResponse(response), options_.max_frame_bytes)
          .ok()) {
    // The peer is about to send (or already sent) a request we never read;
    // a plain close would RST our response out of its receive buffer.
    conn.FinishAndDrain(options_.write_deadline_ms);
  }
}

void QueryServer::WorkerLoop(size_t worker_id) {
  core::Engine::Session* session = sessions_[worker_id].get();
  while (true) {
    Conn conn;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] {
        return !pending_.empty() ||
               state_.load(std::memory_order_acquire) >= State::kDraining;
      });
      if (pending_.empty()) return;  // draining and nothing left to answer
      conn = std::move(pending_.front());
      pending_.pop_front();
    }
    ServeConn(std::move(conn), session);
  }
}

void QueryServer::ServeConn(Conn conn, core::Engine::Session* session) {
  conn.set_write_deadline_ms(options_.write_deadline_ms);
  while (conn.valid()) {
    conn.set_read_deadline_ms(EffectiveReadDeadline());
    util::StatusOr<std::string> frame = conn.RecvFrame(options_.max_frame_bytes);
    if (!frame.ok()) {
      if (IsPeerClosed(frame.status())) return;  // orderly keep-alive end
      if (IsTimeout(frame.status())) {
        // Slowloris reaping while serving; during drain it is just an idle
        // keep-alive connection being retired.
        if (!draining()) read_timeouts_.fetch_add(1, std::memory_order_relaxed);
        return;
      }
      frame_errors_.fetch_add(1, std::memory_order_relaxed);
      // A decodable transport (bad magic, over-cap frame) still gets a typed
      // answer before the disconnect; a dead socket just closes.
      conn.SendFrame(EncodeQueryResponse(ErrorResponse(
                         frame.status().ToString())),
                     options_.max_frame_bytes);
      return;
    }

    util::StatusOr<MsgType> type = PeekType(*frame);
    if (!type.ok()) {
      frame_errors_.fetch_add(1, std::memory_order_relaxed);
      conn.SendFrame(
          EncodeQueryResponse(ErrorResponse(type.status().ToString())),
          options_.max_frame_bytes);
      return;
    }

    if (*type == MsgType::kStatusRequest) {
      if (!conn.SendFrame(EncodeStatusResponse(Snapshot()),
                          options_.max_frame_bytes)
               .ok()) {
        return;
      }
      continue;
    }
    if (*type == MsgType::kBackupRequest) {
      BackupRequest backup;
      util::Status backup_decoded = DecodeBackupRequest(*frame, &backup);
      if (!backup_decoded.ok()) {
        frame_errors_.fetch_add(1, std::memory_order_relaxed);
        conn.SendFrame(
            EncodeQueryResponse(ErrorResponse(backup_decoded.ToString())),
            options_.max_frame_bytes);
        return;
      }
      if (!conn.SendFrame(EncodeBackupResponse(TriggerBackup(backup.dest_dir)),
                          options_.max_frame_bytes)
               .ok()) {
        return;
      }
      continue;
    }
    if (*type == MsgType::kUpdateRequest) {
      UpdateRequest update;
      util::Status update_decoded = DecodeUpdateRequest(*frame, &update);
      if (!update_decoded.ok()) {
        frame_errors_.fetch_add(1, std::memory_order_relaxed);
        conn.SendFrame(
            EncodeQueryResponse(ErrorResponse(update_decoded.ToString())),
            options_.max_frame_bytes);
        return;
      }
      if (!conn.SendFrame(EncodeUpdateResponse(HandleUpdate(update)),
                          options_.max_frame_bytes)
               .ok()) {
        return;
      }
      continue;
    }
    if (*type != MsgType::kQueryRequest) {
      frame_errors_.fetch_add(1, std::memory_order_relaxed);
      conn.SendFrame(EncodeQueryResponse(
                         ErrorResponse("unexpected message type")),
                     options_.max_frame_bytes);
      return;
    }

    QueryRequest request;
    util::Status decoded = DecodeQueryRequest(*frame, &request);
    if (!decoded.ok()) {
      frame_errors_.fetch_add(1, std::memory_order_relaxed);
      conn.SendFrame(EncodeQueryResponse(ErrorResponse(decoded.ToString())),
                     options_.max_frame_bytes);
      return;
    }

    QueryResponse response = HandleQuery(request, session);
    if (!conn.SendFrame(EncodeQueryResponse(response),
                        options_.max_frame_bytes)
             .ok()) {
      return;
    }
  }
}

util::StatusOr<const storage::MaterializedView*> QueryServer::ResolveView(
    const std::string& pattern, storage::Scheme scheme) {
  std::string key =
      std::string(storage::SchemeName(scheme)) + "|" + pattern;
  std::lock_guard<std::mutex> lock(views_mu_);
  auto it = view_cache_.find(key);
  if (it != view_cache_.end()) return it->second;
  // First use: materialize through the engine (one-time preprocessing, like
  // AddView at startup). Serialized by views_mu_ so concurrent workers
  // requesting the same new view build it once.
  util::StatusOr<const storage::MaterializedView*> made =
      engine_->TryAddView(pattern, scheme);
  if (!made.ok()) return made.status();
  view_cache_.emplace(std::move(key), *made);
  return *made;
}

QueryResponse QueryServer::HandleQuery(const QueryRequest& request,
                                       core::Engine::Session* session) {
  QueryResponse response;
  if (draining()) {
    rejected_draining_.fetch_add(1, std::memory_order_relaxed);
    response.verdict = Verdict::kShuttingDown;
    response.error = "server is draining";
    response.retry_after_ms = options_.drain_deadline_ms;
    return response;
  }

  double retry_after = 0;
  if (!quotas_.TryAcquire(request.tenant, NowNanos(), &retry_after)) {
    rejected_quota_.fetch_add(1, std::memory_order_relaxed);
    response.verdict = Verdict::kRejected;
    response.error = "tenant '" + request.tenant + "' over quota";
    response.retry_after_ms = retry_after;
    return response;
  }

  std::string parse_error;
  std::optional<tpq::TreePattern> query =
      tpq::TreePattern::Parse(request.query, &parse_error);
  if (!query.has_value()) {
    return ErrorResponse("bad query '" + request.query + "': " + parse_error);
  }
  std::optional<storage::Scheme> scheme = storage::ParseScheme(request.scheme);
  if (!scheme.has_value()) {
    return ErrorResponse("bad scheme '" + request.scheme + "'");
  }
  std::optional<core::Algorithm> algorithm =
      core::ParseAlgorithm(request.algorithm);
  if (!algorithm.has_value()) {
    return ErrorResponse("bad algorithm '" + request.algorithm + "'");
  }

  std::vector<const storage::MaterializedView*> views;
  views.reserve(request.views.size());
  for (const std::string& pattern : request.views) {
    util::StatusOr<const storage::MaterializedView*> view =
        ResolveView(pattern, *scheme);
    if (!view.ok()) {
      return ErrorResponse("bad view '" + pattern +
                           "': " + view.status().ToString());
    }
    views.push_back(*view);
  }

  core::RunOptions run;
  run.algorithm = *algorithm;
  run.cold_cache = false;
  run.deadline_ms = request.deadline_ms > 0 ? request.deadline_ms
                                            : options_.default_deadline_ms;
  if (options_.max_deadline_ms > 0) {
    run.deadline_ms = std::min(run.deadline_ms, options_.max_deadline_ms);
  }
  run.memory_budget_bytes = options_.per_query_memory_budget;
  run.allow_base_fallback = options_.allow_base_fallback;

  core::Engine::RetryPolicy retry;
  retry.max_retries = options_.max_retries;
  retry.backoff_ms = options_.retry_backoff_ms;
  retry.backoff_cap_ms = options_.retry_backoff_cap_ms;

  in_flight_.fetch_add(1, std::memory_order_relaxed);
  core::RunResult result = session->Run(*query, views, run, retry);
  in_flight_.fetch_sub(1, std::memory_order_relaxed);
  queries_served_.fetch_add(1, std::memory_order_relaxed);

  if (result.ok) {
    response.verdict = Verdict::kOk;
  } else if (result.timed_out) {
    response.verdict = Verdict::kTimeout;
    response.error = result.error;
  } else if (result.cancelled) {
    // The only canceller here is the drain watchdog (clients have no cancel
    // channel yet), so tell the client the truth about why.
    response.verdict = Verdict::kCancelled;
    response.error = draining() ? "cancelled by drain" : result.error;
  } else {
    response.verdict = Verdict::kError;
    response.error = result.error;
  }
  response.match_count = result.match_count;
  response.result_hash = result.result_hash;
  response.server_ms = result.total_ms;
  response.degraded = result.degraded;
  response.pages_read = result.io.pages_read;
  response.attempts = static_cast<uint32_t>(result.attempts);
  return response;
}

UpdateResponse QueryServer::HandleUpdate(const UpdateRequest& request) {
  const bool tokened =
      !request.token.empty() && options_.update_dedup_window > 0;
  if (!tokened) return ApplyUpdateRequest(request);

  // Exactly-once under retries: lookup, apply, and cache-insert happen under
  // one lock, so a second in-flight retry of the same token cannot slip past
  // the lookup before the first commits. Update batches are serialized
  // inside the engine anyway, so this serialization costs nothing.
  std::lock_guard<std::mutex> dedup_lock(dedup_mu_);
  auto it = dedup_cache_.find(request.token);
  if (it != dedup_cache_.end()) {
    update_dedup_hits_.fetch_add(1, std::memory_order_relaxed);
    return it->second;  // replay the committed response; nothing re-applies
  }
  UpdateResponse response = ApplyUpdateRequest(request);
  // Only committed batches enter the window: a refused or failed batch did
  // not apply, so the client's retry with the same token must run for real.
  if (response.verdict == Verdict::kOk) {
    dedup_cache_.emplace(request.token, response);
    dedup_order_.push_back(request.token);
    while (dedup_order_.size() > options_.update_dedup_window) {
      dedup_cache_.erase(dedup_order_.front());
      dedup_order_.pop_front();
    }
  }
  return response;
}

UpdateResponse QueryServer::ApplyUpdateRequest(const UpdateRequest& request) {
  UpdateResponse response;
  if (draining()) {
    // An update refused mid-drain must NOT be half-accepted: the catalog is
    // about to be closed crash-safely, and a transaction racing that close is
    // the corruption this server exists to prevent.
    rejected_draining_.fetch_add(1, std::memory_order_relaxed);
    response.verdict = Verdict::kShuttingDown;
    response.error = "server is draining";
    response.retry_after_ms = options_.drain_deadline_ms;
    return response;
  }

  double retry_after = 0;
  if (!quotas_.TryAcquire(request.tenant, NowNanos(), &retry_after)) {
    rejected_quota_.fetch_add(1, std::memory_order_relaxed);
    response.verdict = Verdict::kRejected;
    response.error = "tenant '" + request.tenant + "' over quota";
    response.retry_after_ms = retry_after;
    return response;
  }

  // Fragment parsing happens here, before any document mutation: a batch
  // with a malformed fragment is refused whole rather than partially applied
  // up to the bad op.
  std::vector<core::UpdateOp> ops;
  ops.reserve(request.ops.size());
  for (size_t i = 0; i < request.ops.size(); ++i) {
    const UpdateRequest::Op& wire_op = request.ops[i];
    core::UpdateOp op;
    op.kind = wire_op.kind == 0 ? core::UpdateOp::Kind::kInsertSubtree
                                : core::UpdateOp::Kind::kDeleteSubtree;
    op.target_tag = wire_op.target_tag;
    op.target_start = wire_op.target_start;
    op.after_tag = wire_op.after_tag;
    op.after_start = wire_op.after_start;
    if (op.kind == core::UpdateOp::Kind::kInsertSubtree) {
      xml::ParseResult parsed = xml::ParseDocument(wire_op.fragment);
      if (!parsed.ok()) {
        response.verdict = Verdict::kError;
        response.error = "op " + std::to_string(i) +
                         ": bad fragment: " + parsed.error;
        return response;
      }
      op.subtree = xml::SpecFromDocument(*parsed.document);
    }
    ops.push_back(std::move(op));
  }

  const int64_t start_ns = NowNanos();
  in_flight_.fetch_add(1, std::memory_order_relaxed);
  util::StatusOr<core::UpdateResult> result = engine_->ApplyUpdates(ops);
  in_flight_.fetch_sub(1, std::memory_order_relaxed);
  response.server_ms = static_cast<double>(NowNanos() - start_ns) / 1e6;

  if (!result.ok()) {
    if (result.status().code() == util::StatusCode::kResourceExhausted) {
      // Disk full: the batch aborted cleanly (no torn page, no orphan file)
      // and reads keep serving; surface the pressure in the status snapshot.
      resource_exhausted_.fetch_add(1, std::memory_order_relaxed);
    }
    response.verdict = Verdict::kError;
    response.error = result.status().ToString();
    return response;
  }
  response.verdict = Verdict::kOk;
  response.applied = result->applied;
  response.failed = result->failed;
  response.relabeled = result->relabeled;
  response.txn_epoch = result->txn_epoch;
  response.delta_maintained = result->delta_maintained;
  response.fully_rebuilt = result->fully_rebuilt;
  return response;
}

BackupResponse QueryServer::TriggerBackup(const std::string& dest_dir) {
  BackupResponse response;
  // Claim an in-flight slot before the drain check: Drain() flips state
  // first and then waits for this counter, so either we see the drain and
  // refuse, or the drain sees us and waits — never a backup racing the
  // catalog close.
  backups_in_flight_.fetch_add(1, std::memory_order_acq_rel);
  if (draining()) {
    backups_in_flight_.fetch_sub(1, std::memory_order_acq_rel);
    rejected_draining_.fetch_add(1, std::memory_order_relaxed);
    response.verdict = Verdict::kShuttingDown;
    response.error = "server is draining";
    return response;
  }
  const std::string dir = dest_dir.empty() ? options_.backup_dir : dest_dir;
  if (dir.empty()) {
    backups_in_flight_.fetch_sub(1, std::memory_order_acq_rel);
    backups_failed_.fetch_add(1, std::memory_order_relaxed);
    response.verdict = Verdict::kError;
    response.error = "no backup directory: request named none and the server "
                     "has no --backup-dir configured";
    return response;
  }

  const int64_t start_ns = NowNanos();
  util::StatusOr<storage::BackupReport> report =
      engine_->CreateBackup(dir, options_.backup_rate_bytes);
  response.server_ms = static_cast<double>(NowNanos() - start_ns) / 1e6;
  backups_in_flight_.fetch_sub(1, std::memory_order_acq_rel);

  if (!report.ok()) {
    if (report.status().code() == util::StatusCode::kResourceExhausted) {
      resource_exhausted_.fetch_add(1, std::memory_order_relaxed);
    }
    backups_failed_.fetch_add(1, std::memory_order_relaxed);
    std::lock_guard<std::mutex> lock(backup_status_mu_);
    last_backup_error_ = report.status().ToString();
    response.verdict = Verdict::kError;
    response.error = last_backup_error_;
    return response;
  }
  backups_completed_.fetch_add(1, std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(backup_status_mu_);
    last_backup_error_.clear();
  }
  response.verdict = Verdict::kOk;
  response.directory = report->directory;
  response.epoch = report->epoch;
  response.view_pages = report->view_page_count;
  response.bytes_copied = report->bytes_copied;
  return response;
}

void QueryServer::WatchdogLoop() {
  while (state_.load(std::memory_order_acquire) != State::kStopped) {
    std::this_thread::sleep_for(kWatchdogTick);
    // Cooperative checkpoints cannot run while a worker sits inside a long
    // page read; expired deadlines are fired from here, exactly as the batch
    // watchdog does.
    for (const std::unique_ptr<core::Engine::Session>& session : sessions_) {
      if (session->governance()->DeadlineExpired()) {
        session->governance()->RequestAbort(algo::AbortReason::kDeadline);
      }
    }
    int64_t drain_deadline = drain_deadline_ns_.load(std::memory_order_acquire);
    if (drain_deadline != 0 && NowNanos() >= drain_deadline) {
      // Drain budget exhausted: abort whatever is still running so drain
      // always terminates. The aborted queries answer kCancelled.
      if (in_flight_.load(std::memory_order_relaxed) > 0) {
        drain_forced_.store(true, std::memory_order_relaxed);
      }
      for (const std::unique_ptr<core::Engine::Session>& session : sessions_) {
        session->governance()->RequestAbort(algo::AbortReason::kCancelled);
      }
    }
  }
}

void QueryServer::HardKill() {
  hard_killed_.store(true, std::memory_order_release);
  // Pull the drain deadline to "now": the watchdog's next tick aborts all
  // in-flight queries. Workers never have their sockets yanked from under
  // them (fd-reuse races); bounded op deadlines get them out on their own.
  drain_deadline_ns_.store(1, std::memory_order_release);
  for (const std::unique_ptr<core::Engine::Session>& session : sessions_) {
    session->governance()->RequestAbort(algo::AbortReason::kCancelled);
  }
  listener_.Shutdown();
  State expected = State::kServing;
  state_.compare_exchange_strong(expected, State::kDraining);
  {
    std::lock_guard<std::mutex> lock(mu_);
  }
  cv_.notify_all();
}

bool QueryServer::Drain() {
  State state = state_.load(std::memory_order_acquire);
  if (state == State::kIdle) {
    state_.store(State::kStopped, std::memory_order_release);
    return true;
  }

  State expected = State::kServing;
  if (state_.compare_exchange_strong(expected, State::kDraining)) {
    drain_deadline_ns_.store(
        NowNanos() + static_cast<int64_t>(options_.drain_deadline_ms * 1e6),
        std::memory_order_release);
    listener_.Shutdown();  // step 1: stop accepting; unblocks AcceptLoop
    {
      // Empty critical section: a worker between its predicate check and its
      // wait must not miss the state change.
      std::lock_guard<std::mutex> lock(mu_);
    }
    cv_.notify_all();
  }

  std::lock_guard<std::mutex> drain_lock(drain_mu_);
  if (drained_) return drain_clean_;

  if (accept_thread_.joinable()) accept_thread_.join();
  for (std::thread& worker : worker_threads_) {
    if (worker.joinable()) worker.join();
  }
  state_.store(State::kStopped, std::memory_order_release);
  if (watchdog_.joinable()) watchdog_.join();

  // A backup that won the race against the drain flag finishes before the
  // catalog closes under it (TriggerBackup claims its slot before checking
  // the state, so this wait cannot miss one).
  while (backups_in_flight_.load(std::memory_order_acquire) > 0) {
    std::this_thread::sleep_for(kWatchdogTick);
  }

  // Step 3: quiesce the background scrubber before touching the catalog —
  // a heal racing a closing catalog is exactly the kind of shutdown race
  // this server exists to not have.
  engine_->scrubber()->Stop();
  util::Status closed = engine_->catalog()->Close();

  drain_clean_ = closed.ok() &&
                 !drain_forced_.load(std::memory_order_acquire) &&
                 !hard_killed_.load(std::memory_order_acquire);
  drained_ = true;
  return drain_clean_;
}

StatusResponse QueryServer::Snapshot() const {
  StatusResponse status;
  State state = state_.load(std::memory_order_acquire);
  size_t depth;
  {
    std::lock_guard<std::mutex> lock(mu_);
    depth = pending_.size();
  }
  status.healthy = true;
  status.draining = state >= State::kDraining;
  status.in_flight = in_flight_.load(std::memory_order_relaxed);
  status.queued_connections = depth;
  bool memory_ok = true;
  if (options_.memory_high_water_bytes > 0 &&
      options_.per_query_memory_budget > 0) {
    memory_ok = (status.in_flight + depth + 1) *
                    options_.per_query_memory_budget <=
                options_.memory_high_water_bytes;
  }
  status.ready =
      state == State::kServing && depth < options_.max_pending && memory_ok;
  status.connections_accepted =
      connections_accepted_.load(std::memory_order_relaxed);
  status.queries_served = queries_served_.load(std::memory_order_relaxed);
  status.rejected_quota = rejected_quota_.load(std::memory_order_relaxed);
  status.rejected_shed = rejected_shed_.load(std::memory_order_relaxed);
  status.rejected_draining =
      rejected_draining_.load(std::memory_order_relaxed);
  status.read_timeouts = read_timeouts_.load(std::memory_order_relaxed);
  status.frame_errors = frame_errors_.load(std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(views_mu_);
    status.views_cached = view_cache_.size();
  }
  status.backups_completed = backups_completed_.load(std::memory_order_relaxed);
  status.backups_failed = backups_failed_.load(std::memory_order_relaxed);
  status.update_dedup_hits =
      update_dedup_hits_.load(std::memory_order_relaxed);
  status.resource_exhausted =
      resource_exhausted_.load(std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(backup_status_mu_);
    status.last_backup_error = last_backup_error_;
  }
  return status;
}

}  // namespace viewjoin::server
