#ifndef VIEWJOIN_SERVER_SERVER_H_
#define VIEWJOIN_SERVER_SERVER_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "core/engine.h"
#include "server/net.h"
#include "server/token_bucket.h"
#include "server/wire.h"
#include "util/status.h"

namespace viewjoin::server {

struct ServerOptions {
  /// TCP port on 127.0.0.1; 0 picks an ephemeral port (see port()).
  uint16_t port = 0;
  /// Worker threads, each holding one Engine::Session.
  size_t workers = 4;
  /// Queued-connection high water: an accept that would push the pending
  /// queue past this is answered kRejected with a Retry-After hint and
  /// closed, before its request is even read (load shedding).
  size_t max_pending = 16;
  /// Retry-After hint handed to shed clients, in milliseconds.
  double shed_retry_after_ms = 100;
  /// Per-operation socket deadlines (the slowloris defense): a peer that
  /// cannot deliver a frame within the read deadline is disconnected.
  double read_deadline_ms = 2000;
  double write_deadline_ms = 2000;
  /// During drain, new socket reads use this much shorter deadline so idle
  /// keep-alive connections cannot stretch the drain.
  double drain_read_deadline_ms = 100;
  uint32_t max_frame_bytes = kDefaultMaxFrameBytes;
  /// Query deadline defaulting/clamping: a request with deadline_ms == 0
  /// gets the default; every request is clamped to the max.
  double default_deadline_ms = 10000;
  double max_deadline_ms = 60000;
  /// Per-tenant token-bucket quota (<= 0 disables): sustained queries/sec
  /// and burst allowance. Over quota is a typed kRejected with Retry-After,
  /// layered *above* the engine's own admission control.
  double quota_rate_per_sec = 0;
  double quota_burst = 10;
  /// Per-query intermediate-solution budget in bytes (0 = unlimited).
  uint64_t per_query_memory_budget = 0;
  /// Memory high water in bytes (0 = off): when admitted queries' committed
  /// budgets (in_flight x per_query_memory_budget) would cross it, new
  /// connections are shed at accept time.
  uint64_t memory_high_water_bytes = 0;
  /// Engine-side bounded retry for transient storage faults.
  int max_retries = 2;
  double retry_backoff_ms = 1.0;
  double retry_backoff_cap_ms = 50.0;
  /// Serving prefers a bounded, typed failure over the base-document
  /// fallback's unbounded full scan; flip for availability-over-latency.
  bool allow_base_fallback = false;
  /// Graceful-drain budget: in-flight queries still running this long after
  /// Drain() starts are watchdog-aborted (kCancelled) so drain always
  /// terminates.
  double drain_deadline_ms = 5000;
  /// Default destination for triggered hot backups (SIGUSR2 or a
  /// kBackupRequest with an empty dest_dir); "" = backups must name a
  /// directory explicitly.
  std::string backup_dir;
  /// Copy pacing for hot backups in bytes/sec (0 = unthrottled). Servers
  /// wire VIEWJOIN_BACKUP_RATE_BYTES through here so a backup cannot starve
  /// the serving I/O path.
  uint64_t backup_rate_bytes = 0;
  /// Idempotency dedup window: the committed responses of the most recent N
  /// tokened update batches are kept, so a client retry with the same token
  /// replays the response instead of double-applying (0 disables; wired from
  /// VIEWJOIN_UPDATE_DEDUP_WINDOW).
  size_t update_dedup_window = 64;
};

/// A long-lived multi-tenant query server over one Engine.
///
/// Threads: one blocking accept loop, `workers` worker threads (each owning
/// an Engine::Session), and one watchdog that fires query deadlines on stuck
/// workers and enforces the drain budget. Connections are keep-alive: a
/// worker serves one connection's requests to completion before taking the
/// next from the pending queue.
///
/// Overload behavior is "reject fast, typed": per-tenant quota exhaustion,
/// queue high water and memory high water all produce an immediate
/// QueryResponse{kRejected, retry_after_ms} — never a hang, never a silent
/// close.
///
/// Lifecycle: Start() → serving → Drain() (graceful: stop accepting, answer
/// queued/late requests with kShuttingDown, finish or deadline-abort
/// in-flight, close the catalog crash-safely) → stopped. HardKill() (the
/// double-signal path) aborts in-flight work immediately; a Drain() blocked
/// on stubborn queries unblocks and completes. All three are safe to call
/// from threads other than the owner's.
class QueryServer {
 public:
  QueryServer(core::Engine* engine, const ServerOptions& options);
  ~QueryServer();

  QueryServer(const QueryServer&) = delete;
  QueryServer& operator=(const QueryServer&) = delete;

  /// Binds the listener and spawns the serving threads.
  util::Status Start();

  /// The bound port (valid after Start()).
  uint16_t port() const { return listener_.port(); }

  /// Graceful shutdown; blocks until the server is fully stopped and the
  /// engine's catalog is closed. Returns true when every in-flight query
  /// finished inside the drain budget (no watchdog abort, no hard kill).
  /// Idempotent; concurrent callers all block until done.
  bool Drain();

  /// Immediate abort of all in-flight work (does not block; pair with
  /// Drain() to finish teardown).
  void HardKill();

  bool draining() const {
    return state_.load(std::memory_order_acquire) >= State::kDraining;
  }

  /// Point-in-time health/readiness counters.
  StatusResponse Snapshot() const;

  /// Takes an online hot backup into `dest_dir` ("" = options.backup_dir)
  /// while the server keeps serving — the SIGUSR2 handler and the
  /// kBackupRequest admin frame both land here. Refused typed while
  /// draining; Drain() waits out an in-flight backup before closing the
  /// catalog, so the drain guarantees are unchanged. The copy is paced by
  /// options.backup_rate_bytes.
  BackupResponse TriggerBackup(const std::string& dest_dir = "");

 private:
  enum class State : int { kIdle = 0, kServing = 1, kDraining = 2, kStopped = 3 };

  void AcceptLoop();
  void WorkerLoop(size_t worker_id);
  void WatchdogLoop();

  /// Sheds `conn` at accept time with a typed kRejected, before reading its
  /// request (respond → half-close → drain unread bytes → close).
  void Shed(Conn conn, const char* why);

  /// Serves one connection's requests until EOF, timeout, error, or drain.
  void ServeConn(Conn conn, core::Engine::Session* session);

  QueryResponse HandleQuery(const QueryRequest& request,
                            core::Engine::Session* session);

  /// Applies one live-document update batch through the engine (atomic view
  /// epoch bump; see core::Engine::ApplyUpdates). Shares the tenant quota
  /// bucket with queries, and is refused typed (kShuttingDown) during drain.
  /// Requests carrying an idempotency token are answered from the dedup
  /// window when the same token already committed — exactly-once under
  /// client retries.
  UpdateResponse HandleUpdate(const UpdateRequest& request);

  /// The apply path under HandleUpdate's dedup wrapper: admission checks,
  /// fragment parsing, and the engine transaction.
  UpdateResponse ApplyUpdateRequest(const UpdateRequest& request);

  /// Resolves a view pattern to a materialized view, materializing on first
  /// use (cached by scheme + pattern).
  util::StatusOr<const storage::MaterializedView*> ResolveView(
      const std::string& pattern, storage::Scheme scheme);

  double EffectiveReadDeadline() const;
  static int64_t NowNanos();

  core::Engine* engine_;
  const ServerOptions options_;
  TenantQuotas quotas_;

  Listener listener_;
  std::atomic<State> state_{State::kIdle};
  std::atomic<bool> hard_killed_{false};
  /// Set once drain begins; the watchdog aborts in-flight queries past it.
  std::atomic<int64_t> drain_deadline_ns_{0};
  /// True when the drain watchdog had to abort a still-running query.
  std::atomic<bool> drain_forced_{false};

  std::thread accept_thread_;
  std::vector<std::thread> worker_threads_;
  std::thread watchdog_;
  std::vector<std::unique_ptr<core::Engine::Session>> sessions_;

  mutable std::mutex mu_;  // guards pending_
  std::condition_variable cv_;
  std::deque<Conn> pending_;

  mutable std::mutex views_mu_;  // guards view_cache_, serializes materialize
  std::map<std::string, const storage::MaterializedView*> view_cache_;

  /// Serializes Drain()'s teardown so concurrent Drain callers are safe.
  std::mutex drain_mu_;
  bool drained_ = false;
  bool drain_clean_ = false;

  /// Serializes tokened update batches end to end (dedup lookup → engine
  /// apply → dedup insert), making the exactly-once window airtight against
  /// two concurrent retries of the same token. Update batches are already
  /// serialized inside the engine, so this costs no parallelism.
  std::mutex dedup_mu_;
  /// token → committed response, bounded FIFO of options_.update_dedup_window.
  std::map<std::string, UpdateResponse> dedup_cache_;
  std::deque<std::string> dedup_order_;

  /// Backups in flight (0 or 1 in practice; the engine serializes them).
  /// Drain() waits for this to reach zero before closing the catalog.
  std::atomic<uint64_t> backups_in_flight_{0};
  mutable std::mutex backup_status_mu_;  // guards last_backup_error_
  std::string last_backup_error_;

  // Counters (see StatusResponse).
  std::atomic<uint64_t> in_flight_{0};
  std::atomic<uint64_t> connections_accepted_{0};
  std::atomic<uint64_t> queries_served_{0};
  std::atomic<uint64_t> rejected_quota_{0};
  std::atomic<uint64_t> rejected_shed_{0};
  std::atomic<uint64_t> rejected_draining_{0};
  std::atomic<uint64_t> read_timeouts_{0};
  std::atomic<uint64_t> frame_errors_{0};
  std::atomic<uint64_t> backups_completed_{0};
  std::atomic<uint64_t> backups_failed_{0};
  std::atomic<uint64_t> update_dedup_hits_{0};
  std::atomic<uint64_t> resource_exhausted_{0};
};

}  // namespace viewjoin::server

#endif  // VIEWJOIN_SERVER_SERVER_H_
