#include "server/net.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>

#include "server/wire.h"

namespace viewjoin::server {

namespace {

using Clock = std::chrono::steady_clock;

constexpr char kTimeoutPrefix[] = "net timeout: ";
constexpr char kPeerClosedMsg[] = "connection closed by peer";

util::Status Timeout(const char* op) {
  return util::Status::IoError(std::string(kTimeoutPrefix) + op +
                               " deadline exceeded");
}

util::Status Errno(const char* op) {
  return util::Status::IoError(std::string(op) + " failed: " +
                               std::strerror(errno));
}

/// Absolute deadline `ms` from now; time_point::max() means none.
Clock::time_point DeadlinePoint(double ms) {
  if (ms <= 0) return Clock::time_point::max();
  return Clock::now() + std::chrono::duration_cast<Clock::duration>(
                            std::chrono::duration<double, std::milli>(ms));
}

/// Arms SO_RCVTIMEO/SO_SNDTIMEO with the time remaining until `deadline`.
/// Returns false when the deadline has already passed.
bool ArmSocketTimeout(int fd, int option, Clock::time_point deadline) {
  struct timeval tv = {0, 0};
  if (deadline != Clock::time_point::max()) {
    auto remaining = deadline - Clock::now();
    if (remaining <= Clock::duration::zero()) return false;
    auto micros =
        std::chrono::duration_cast<std::chrono::microseconds>(remaining);
    tv.tv_sec = static_cast<time_t>(micros.count() / 1000000);
    tv.tv_usec = static_cast<suseconds_t>(micros.count() % 1000000);
    if (tv.tv_sec == 0 && tv.tv_usec == 0) tv.tv_usec = 1;
  }
  ::setsockopt(fd, SOL_SOCKET, option, &tv, sizeof(tv));
  return true;
}

void SetNoDelay(int fd) {
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

}  // namespace

bool IsTimeout(const util::Status& status) {
  return status.code() == util::StatusCode::kIoError &&
         status.message().rfind(kTimeoutPrefix, 0) == 0;
}

bool IsPeerClosed(const util::Status& status) {
  return status.code() == util::StatusCode::kNotFound &&
         status.message() == kPeerClosedMsg;
}

// ---- Conn ------------------------------------------------------------------

Conn::Conn(int fd, util::SocketEnd end) : fd_(fd), end_(end) {
  if (fd_ >= 0) SetNoDelay(fd_);
}

Conn::~Conn() { Close(); }

Conn::Conn(Conn&& other) noexcept
    : fd_(other.fd_),
      end_(other.end_),
      read_deadline_ms_(other.read_deadline_ms_),
      write_deadline_ms_(other.write_deadline_ms_) {
  other.fd_ = -1;
}

Conn& Conn::operator=(Conn&& other) noexcept {
  if (this != &other) {
    Close();
    fd_ = other.fd_;
    end_ = other.end_;
    read_deadline_ms_ = other.read_deadline_ms_;
    write_deadline_ms_ = other.write_deadline_ms_;
    other.fd_ = -1;
  }
  return *this;
}

util::StatusOr<Conn> Conn::Connect(const std::string& host, uint16_t port,
                                   double timeout_ms) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return Errno("socket");

  struct sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    return util::Status::InvalidArgument("bad IPv4 address '" + host + "'");
  }

  // Non-blocking connect with a bounded handshake, then back to blocking
  // (per-op deadlines use SO_RCVTIMEO/SO_SNDTIMEO on a blocking socket).
  int flags = ::fcntl(fd, F_GETFL, 0);
  ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
  int rc = ::connect(fd, reinterpret_cast<struct sockaddr*>(&addr),
                     sizeof(addr));
  if (rc != 0 && errno != EINPROGRESS) {
    util::Status error = Errno("connect");
    ::close(fd);
    return error;
  }
  if (rc != 0) {
    struct pollfd pfd = {fd, POLLOUT, 0};
    int timeout = timeout_ms <= 0 ? -1 : static_cast<int>(timeout_ms);
    int ready = ::poll(&pfd, 1, timeout);
    if (ready <= 0) {
      ::close(fd);
      return ready == 0 ? Timeout("connect") : Errno("poll");
    }
    int so_error = 0;
    socklen_t len = sizeof(so_error);
    ::getsockopt(fd, SOL_SOCKET, SO_ERROR, &so_error, &len);
    if (so_error != 0) {
      ::close(fd);
      return util::Status::IoError(std::string("connect failed: ") +
                                   std::strerror(so_error));
    }
  }
  ::fcntl(fd, F_SETFL, flags);
  return Conn(fd, util::SocketEnd::kClient);
}

void Conn::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

void Conn::HardClose() {
  if (fd_ < 0) return;
  struct linger lg = {1, 0};  // close() discards and sends RST
  ::setsockopt(fd_, SOL_SOCKET, SO_LINGER, &lg, sizeof(lg));
  ::close(fd_);
  fd_ = -1;
}

void Conn::FinishAndDrain(double drain_ms) {
  if (fd_ < 0) return;
  ::shutdown(fd_, SHUT_WR);
  // Swallow whatever the peer had in flight (it sent a request we never
  // read) until EOF or the drain budget runs out; then close without RST.
  Clock::time_point deadline = DeadlinePoint(drain_ms <= 0 ? 1 : drain_ms);
  uint8_t sink[512];
  while (ArmSocketTimeout(fd_, SO_RCVTIMEO, deadline)) {
    ssize_t n = ::recv(fd_, sink, sizeof(sink), 0);
    if (n == 0) break;                          // orderly EOF
    if (n < 0 && errno == EINTR) continue;
    if (n < 0) break;                           // timeout or error: give up
  }
  Close();
}

util::Status Conn::SendAll(const uint8_t* data, size_t len) {
  Clock::time_point deadline = DeadlinePoint(write_deadline_ms_);
  size_t sent = 0;
  while (sent < len) {
    size_t chunk = len - sent;
    switch (util::SocketFaultInjector::Global().OnSendAttempt(end_)) {
      case util::SocketFault::kNone:
        break;
      case util::SocketFault::kShortWrite:
        chunk = 1;
        break;
      case util::SocketFault::kReset:
        HardClose();
        return util::Status::IoError("injected connection reset");
      case util::SocketFault::kStall:
        std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(
            util::SocketFaultInjector::Global().stall_ms()));
        break;
      case util::SocketFault::kShortRead:
        break;  // read fault armed on kAny; not applicable to sends
    }
    if (!ArmSocketTimeout(fd_, SO_SNDTIMEO, deadline)) return Timeout("send");
    ssize_t n = ::send(fd_, data + sent, chunk, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) return Timeout("send");
      return Errno("send");
    }
    sent += static_cast<size_t>(n);
  }
  return util::Status::Ok();
}

util::Status Conn::RecvAll(uint8_t* data, size_t len, size_t* got) {
  Clock::time_point deadline = DeadlinePoint(read_deadline_ms_);
  *got = 0;
  while (*got < len) {
    size_t chunk = len - *got;
    switch (util::SocketFaultInjector::Global().OnRecvAttempt(end_)) {
      case util::SocketFault::kNone:
        break;
      case util::SocketFault::kShortRead:
        chunk = 1;
        break;
      case util::SocketFault::kReset:
        HardClose();
        return util::Status::IoError("injected connection reset");
      case util::SocketFault::kStall:
        std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(
            util::SocketFaultInjector::Global().stall_ms()));
        break;
      case util::SocketFault::kShortWrite:
        break;  // write fault armed on kAny; not applicable to recvs
    }
    if (!ArmSocketTimeout(fd_, SO_RCVTIMEO, deadline)) return Timeout("recv");
    ssize_t n = ::recv(fd_, data + *got, chunk, 0);
    if (n == 0) return util::Status::NotFound(kPeerClosedMsg);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) return Timeout("recv");
      return Errno("recv");
    }
    *got += static_cast<size_t>(n);
  }
  return util::Status::Ok();
}

util::Status Conn::SendFrame(const std::string& payload,
                             uint32_t max_frame_bytes) {
  if (!valid()) return util::Status::IoError("send on closed connection");
  if (payload.size() > max_frame_bytes) {
    return util::Status::ResourceExhausted(
        "frame of " + std::to_string(payload.size()) +
        " bytes exceeds the " + std::to_string(max_frame_bytes) + "-byte cap");
  }
  uint8_t header[kFrameHeaderBytes];
  EncodeFrameHeader(static_cast<uint32_t>(payload.size()), header);
  util::Status sent = SendAll(header, sizeof(header));
  if (!sent.ok()) return sent;
  return SendAll(reinterpret_cast<const uint8_t*>(payload.data()),
                 payload.size());
}

util::StatusOr<std::string> Conn::RecvFrame(uint32_t max_frame_bytes) {
  if (!valid()) return util::Status::IoError("recv on closed connection");
  uint8_t header[kFrameHeaderBytes];
  size_t got = 0;
  util::Status read = RecvAll(header, sizeof(header), &got);
  if (!read.ok()) {
    // EOF cleanly between frames is the peer hanging up; EOF mid-header is a
    // torn frame.
    if (IsPeerClosed(read) && got > 0) {
      return util::Status::Corruption("connection closed mid-frame");
    }
    return read;
  }
  util::StatusOr<uint32_t> length = DecodeFrameHeader(header, max_frame_bytes);
  if (!length.ok()) return length.status();
  std::string payload(*length, '\0');
  if (*length > 0) {
    read = RecvAll(reinterpret_cast<uint8_t*>(payload.data()), payload.size(),
                   &got);
    if (!read.ok()) {
      if (IsPeerClosed(read)) {
        return util::Status::Corruption("connection closed mid-frame");
      }
      return read;
    }
  }
  return payload;
}

// ---- Listener --------------------------------------------------------------

Listener::~Listener() {
  if (fd_ >= 0) ::close(fd_);
}

Listener::Listener(Listener&& other) noexcept
    : fd_(other.fd_), port_(other.port_) {
  other.fd_ = -1;
}

Listener& Listener::operator=(Listener&& other) noexcept {
  if (this != &other) {
    if (fd_ >= 0) ::close(fd_);
    fd_ = other.fd_;
    port_ = other.port_;
    other.fd_ = -1;
  }
  return *this;
}

util::StatusOr<Listener> Listener::Bind(uint16_t port, int backlog) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return Errno("socket");
  int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  struct sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(fd, reinterpret_cast<struct sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    util::Status error = Errno("bind");
    ::close(fd);
    return error;
  }
  if (::listen(fd, backlog) != 0) {
    util::Status error = Errno("listen");
    ::close(fd);
    return error;
  }
  socklen_t len = sizeof(addr);
  ::getsockname(fd, reinterpret_cast<struct sockaddr*>(&addr), &len);

  Listener listener;
  listener.fd_ = fd;
  listener.port_ = ntohs(addr.sin_port);
  return listener;
}

util::StatusOr<Conn> Listener::Accept() {
  if (fd_ < 0) return util::Status::IoError("listener closed");
  while (true) {
    int conn_fd = ::accept(fd_, nullptr, nullptr);
    if (conn_fd >= 0) return Conn(conn_fd, util::SocketEnd::kServer);
    if (errno == EINTR) continue;
    // EINVAL is Linux's verdict for accept on a shutdown() listener — the
    // drain path's way of unblocking this loop.
    return util::Status::IoError(std::string("listener closed: ") +
                                 std::strerror(errno));
  }
}

void Listener::Shutdown() {
  // shutdown() (not close()) unblocks a concurrent Accept without freeing
  // the descriptor number under it — close would race fd reuse.
  if (fd_ >= 0) ::shutdown(fd_, SHUT_RDWR);
}

}  // namespace viewjoin::server
