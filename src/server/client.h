#ifndef VIEWJOIN_SERVER_CLIENT_H_
#define VIEWJOIN_SERVER_CLIENT_H_

#include <algorithm>
#include <cstdint>
#include <string>

#include "server/net.h"
#include "server/wire.h"
#include "util/backoff.h"
#include "util/status.h"

namespace viewjoin::server {

/// Client-side retry schedule for *refused* requests — kRejected (quota /
/// load shed) and kShuttingDown (drain) verdicts, the two cases where the
/// server explicitly says "come back later". Execution failures (kError,
/// kTimeout) are not retried: resending a bad query is not going to fix it.
///
/// The delay honors the server's Retry-After hint but never exceeds `cap_ms`
/// per attempt (a hostile or confused server cannot park the client for an
/// hour), and decorrelated jitter keeps a thundering herd of shed clients
/// from re-arriving in lockstep. Total wait across a full run of retries is
/// therefore bounded by `max_retries * cap_ms` — tests assert exactly that.
class RefusalRetryPolicy {
 public:
  RefusalRetryPolicy(int max_retries, double base_ms, double cap_ms,
                     uint64_t seed)
      : remaining_(max_retries),
        base_ms_(base_ms),
        cap_ms_(cap_ms),
        backoff_(base_ms, cap_ms, seed) {}

  static bool Retryable(Verdict verdict) {
    return verdict == Verdict::kRejected || verdict == Verdict::kShuttingDown;
  }

  /// Milliseconds to sleep before the next attempt, or a negative value when
  /// the verdict is not retryable or the retry budget is spent.
  double NextDelayMs(Verdict verdict, double retry_after_ms) {
    if (!Retryable(verdict) || remaining_ <= 0) return -1;
    --remaining_;
    double delay = std::max(backoff_.NextDelayMs(), retry_after_ms);
    delay = std::min(std::max(delay, base_ms_), cap_ms_);
    total_wait_ms_ += delay;
    return delay;
  }

  int remaining() const { return remaining_; }
  double total_wait_ms() const { return total_wait_ms_; }

 private:
  int remaining_;
  double base_ms_;
  double cap_ms_;
  util::DecorrelatedJitterBackoff backoff_;
  double total_wait_ms_ = 0;
};

/// Thin synchronous client over one keep-alive connection. Not thread-safe;
/// one Client per thread. Every call is bounded by `deadline_ms` — a dead or
/// stalling server produces a typed timeout, never a hang.
class Client {
 public:
  Client() = default;

  /// Connects (or reconnects) to the server.
  util::Status Connect(const std::string& host, uint16_t port,
                       double timeout_ms = 5000);

  bool connected() const { return conn_.valid(); }
  void Close() { conn_.Close(); }

  /// Per-call socket deadline for request/response round trips.
  void set_deadline_ms(double ms) { deadline_ms_ = ms; }
  void set_max_frame_bytes(uint32_t bytes) { max_frame_bytes_ = bytes; }

  /// One query round trip. Transport-level failures (including the server
  /// vanishing mid-response) surface as statuses; server-side failures come
  /// back as QueryResponse verdicts.
  util::StatusOr<QueryResponse> Query(const QueryRequest& request);

  /// One live-document update batch round trip. Same transport semantics as
  /// Query(); the server applies the whole batch as one atomic view epoch.
  util::StatusOr<UpdateResponse> Update(const UpdateRequest& request);

  /// Health/readiness probe.
  util::StatusOr<StatusResponse> GetStatus();

  /// Admin: trigger an online hot backup on the server ("" = the server's
  /// configured default backup directory). The call blocks for the copy, so
  /// size the deadline to the store (and the server's backup rate limit).
  util::StatusOr<BackupResponse> TriggerBackup(const std::string& dest_dir);

 private:
  util::StatusOr<std::string> RoundTrip(const std::string& payload);

  Conn conn_;
  double deadline_ms_ = 5000;
  uint32_t max_frame_bytes_ = kDefaultMaxFrameBytes;
};

}  // namespace viewjoin::server

#endif  // VIEWJOIN_SERVER_CLIENT_H_
