#ifndef VIEWJOIN_SERVER_CLIENT_H_
#define VIEWJOIN_SERVER_CLIENT_H_

#include <cstdint>
#include <string>

#include "server/net.h"
#include "server/wire.h"
#include "util/status.h"

namespace viewjoin::server {

/// Thin synchronous client over one keep-alive connection. Not thread-safe;
/// one Client per thread. Every call is bounded by `deadline_ms` — a dead or
/// stalling server produces a typed timeout, never a hang.
class Client {
 public:
  Client() = default;

  /// Connects (or reconnects) to the server.
  util::Status Connect(const std::string& host, uint16_t port,
                       double timeout_ms = 5000);

  bool connected() const { return conn_.valid(); }
  void Close() { conn_.Close(); }

  /// Per-call socket deadline for request/response round trips.
  void set_deadline_ms(double ms) { deadline_ms_ = ms; }
  void set_max_frame_bytes(uint32_t bytes) { max_frame_bytes_ = bytes; }

  /// One query round trip. Transport-level failures (including the server
  /// vanishing mid-response) surface as statuses; server-side failures come
  /// back as QueryResponse verdicts.
  util::StatusOr<QueryResponse> Query(const QueryRequest& request);

  /// Health/readiness probe.
  util::StatusOr<StatusResponse> GetStatus();

 private:
  util::StatusOr<std::string> RoundTrip(const std::string& payload);

  Conn conn_;
  double deadline_ms_ = 5000;
  uint32_t max_frame_bytes_ = kDefaultMaxFrameBytes;
};

}  // namespace viewjoin::server

#endif  // VIEWJOIN_SERVER_CLIENT_H_
