#ifndef VIEWJOIN_SERVER_WIRE_H_
#define VIEWJOIN_SERVER_WIRE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "util/status.h"

namespace viewjoin::server {

// ---- Framing ---------------------------------------------------------------
//
// Every message travels as one length-prefixed frame:
//
//   u32 magic "VJW1"  |  u32 payload length  |  payload
//
// and the payload's first byte is the message type. All integers are
// little-endian; strings are u32 length + raw bytes. The length prefix is
// validated against a max-frame cap *before* the payload is read, so a
// hostile 4 GiB length declaration costs the server 8 bytes of reading, not
// an allocation.

constexpr uint32_t kFrameMagic = 0x31574A56u;  // "VJW1" little-endian
constexpr size_t kFrameHeaderBytes = 8;
constexpr uint32_t kDefaultMaxFrameBytes = 1u << 20;

/// Serializes a frame header for a payload of `payload_len` bytes.
void EncodeFrameHeader(uint32_t payload_len, uint8_t out[kFrameHeaderBytes]);

/// Validates magic and cap; returns the payload length. Corruption for a bad
/// magic (the peer is not speaking this protocol), ResourceExhausted for a
/// frame above `max_frame_bytes` (the slowloris/allocation defense).
util::StatusOr<uint32_t> DecodeFrameHeader(const uint8_t in[kFrameHeaderBytes],
                                           uint32_t max_frame_bytes);

// ---- Messages --------------------------------------------------------------

enum class MsgType : uint8_t {
  kQueryRequest = 1,
  kQueryResponse = 2,
  kStatusRequest = 3,   // health/readiness probe
  kStatusResponse = 4,
  kUpdateRequest = 5,   // live-document update batch
  kUpdateResponse = 6,
  kBackupRequest = 7,   // admin: trigger an online hot backup
  kBackupResponse = 8,
};

/// Server verdict on one query. Every request gets exactly one typed
/// response — rejection is an answer, never a silent close or a hang.
enum class Verdict : uint8_t {
  kOk = 0,
  kError = 1,         // execution failed (bad pattern, storage fault, ...)
  kRejected = 2,      // bounced by quota or load shedding; see retry_after_ms
  kTimeout = 3,       // deadline expired mid-execution
  kCancelled = 4,     // aborted (drain watchdog or explicit cancellation)
  kShuttingDown = 5,  // server is draining; reconnect elsewhere/later
};

const char* VerdictName(Verdict verdict);

struct QueryRequest {
  std::string tenant;               // quota bucket key ("" = anonymous)
  std::string query;                // TPQ as an XPath string
  std::vector<std::string> views;   // covering view patterns
  std::string scheme = "LE";        // E / T / LE / LE_p
  std::string algorithm = "auto";   // TS / VJ / IJ / auto
  double deadline_ms = 0;           // 0 = server default
  bool count_only = false;          // reserved: match streaming is future work
};

struct QueryResponse {
  Verdict verdict = Verdict::kError;
  std::string error;          // empty on kOk
  double retry_after_ms = 0;  // kRejected: when the client should retry
  uint64_t match_count = 0;
  uint64_t result_hash = 0;
  double server_ms = 0;       // execution time inside the engine
  bool degraded = false;
  uint64_t pages_read = 0;
  uint32_t attempts = 1;      // engine-side retry ladder attempts
};

/// A batch of live-document updates, applied atomically server-side (one
/// manifest update transaction; see core::Engine::ApplyUpdates). Ops address
/// nodes by (tag, start label) as learned from prior query results; inserts
/// carry the new subtree as an XML fragment the server parses.
struct UpdateRequest {
  struct Op {
    uint8_t kind = 0;  // 0 = insert-subtree, 1 = delete-subtree
    std::string target_tag;   // insert: parent; delete: subtree root
    uint32_t target_start = 0;
    std::string after_tag;    // insert position; after_start 0 = first child
    uint32_t after_start = 0;
    std::string fragment;     // XML subtree to insert; empty for deletes
  };
  std::string tenant;
  /// Idempotency token ("" = none): a client that retries a batch after a
  /// lost response sends the same token, and the server's bounded dedup
  /// window replays the committed response instead of applying the batch a
  /// second time. Tokens are opaque bytes; clients should make them unique
  /// per logical batch (e.g. random hex chosen before the first attempt).
  std::string token;
  std::vector<Op> ops;
};

struct UpdateResponse {
  Verdict verdict = Verdict::kError;
  std::string error;          // empty unless the whole batch was refused
  double retry_after_ms = 0;  // kRejected / kShuttingDown: when to retry
  uint64_t applied = 0;       // ops applied to the document
  /// Per-op skip reasons ("op <i>: ..."); kOk with a non-empty list means a
  /// partially applied batch.
  std::vector<std::string> failed;
  bool relabeled = false;
  uint64_t txn_epoch = 0;
  uint64_t delta_maintained = 0;
  uint64_t fully_rebuilt = 0;
  double server_ms = 0;
};

/// Admin request: take an online hot backup into `dest_dir` on the server's
/// filesystem ("" = the server's configured default backup directory).
/// Refused typed while draining; the copy is paced by the server's
/// configured rate limit. Equivalent to sending the server SIGUSR2.
struct BackupRequest {
  std::string dest_dir;
};

struct BackupResponse {
  Verdict verdict = Verdict::kError;
  std::string error;           // empty on kOk
  std::string directory;       // where the image landed
  uint64_t epoch = 0;          // catalog epoch the image pins
  uint64_t view_pages = 0;     // committed view pages copied
  uint64_t bytes_copied = 0;
  double server_ms = 0;
};

/// Health/readiness snapshot. `healthy` is trivially true when a response
/// arrives at all; `ready` means the server would admit a query right now
/// (serving, queue below high water, memory below high water).
struct StatusResponse {
  bool healthy = true;
  bool ready = false;
  bool draining = false;
  uint64_t in_flight = 0;
  uint64_t queued_connections = 0;
  uint64_t connections_accepted = 0;
  uint64_t queries_served = 0;
  uint64_t rejected_quota = 0;
  uint64_t rejected_shed = 0;
  uint64_t rejected_draining = 0;
  uint64_t read_timeouts = 0;
  uint64_t frame_errors = 0;
  uint64_t views_cached = 0;
  /// Hot-backup lifecycle counters (SIGUSR2 or kBackupRequest triggers).
  uint64_t backups_completed = 0;
  uint64_t backups_failed = 0;
  /// Retried update batches answered from the idempotency dedup window
  /// instead of being applied a second time.
  uint64_t update_dedup_hits = 0;
  /// Operations (updates, backups) that failed with kResourceExhausted —
  /// the disk-full signal; the engine keeps serving reads when it rises.
  uint64_t resource_exhausted = 0;
  /// Why the most recent backup failed ("" = never failed, or succeeded
  /// since).
  std::string last_backup_error;
};

// ---- Encoding / decoding ---------------------------------------------------
//
// Encoders produce the frame *payload* (type byte + body); the caller
// prepends the frame header when sending. Decoders take the payload and
// return typed errors on truncation or trailing garbage — a malformed frame
// from the network must never crash the server or silently mis-parse.

std::string EncodeQueryRequest(const QueryRequest& request);
std::string EncodeQueryResponse(const QueryResponse& response);
std::string EncodeStatusRequest();
std::string EncodeStatusResponse(const StatusResponse& status);
std::string EncodeUpdateRequest(const UpdateRequest& request);
std::string EncodeUpdateResponse(const UpdateResponse& response);
std::string EncodeBackupRequest(const BackupRequest& request);
std::string EncodeBackupResponse(const BackupResponse& response);

/// The payload's message type (InvalidArgument on an empty or unknown-typed
/// payload).
util::StatusOr<MsgType> PeekType(const std::string& payload);

util::Status DecodeQueryRequest(const std::string& payload,
                                QueryRequest* request);
util::Status DecodeQueryResponse(const std::string& payload,
                                 QueryResponse* response);
util::Status DecodeStatusResponse(const std::string& payload,
                                  StatusResponse* status);
util::Status DecodeUpdateRequest(const std::string& payload,
                                 UpdateRequest* request);
util::Status DecodeUpdateResponse(const std::string& payload,
                                  UpdateResponse* response);
util::Status DecodeBackupRequest(const std::string& payload,
                                 BackupRequest* request);
util::Status DecodeBackupResponse(const std::string& payload,
                                  BackupResponse* response);

}  // namespace viewjoin::server

#endif  // VIEWJOIN_SERVER_WIRE_H_
