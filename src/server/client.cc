#include "server/client.h"

namespace viewjoin::server {

util::Status Client::Connect(const std::string& host, uint16_t port,
                             double timeout_ms) {
  util::StatusOr<Conn> conn = Conn::Connect(host, port, timeout_ms);
  if (!conn.ok()) return conn.status();
  conn_ = std::move(*conn);
  return util::Status::Ok();
}

util::StatusOr<std::string> Client::RoundTrip(const std::string& payload) {
  if (!conn_.valid()) return util::Status::IoError("not connected");
  conn_.set_write_deadline_ms(deadline_ms_);
  conn_.set_read_deadline_ms(deadline_ms_);
  util::Status sent = conn_.SendFrame(payload, max_frame_bytes_);
  if (!sent.ok()) {
    conn_.Close();
    return sent;
  }
  util::StatusOr<std::string> reply = conn_.RecvFrame(max_frame_bytes_);
  if (!reply.ok()) {
    conn_.Close();
    // EOF where a response was due is a failure, not a clean hang-up.
    if (IsPeerClosed(reply.status())) {
      return util::Status::IoError("server closed the connection mid-call");
    }
  }
  return reply;
}

util::StatusOr<QueryResponse> Client::Query(const QueryRequest& request) {
  util::StatusOr<std::string> reply = RoundTrip(EncodeQueryRequest(request));
  if (!reply.ok()) return reply.status();
  QueryResponse response;
  util::Status decoded = DecodeQueryResponse(*reply, &response);
  if (!decoded.ok()) return decoded;
  return response;
}

util::StatusOr<UpdateResponse> Client::Update(const UpdateRequest& request) {
  util::StatusOr<std::string> reply = RoundTrip(EncodeUpdateRequest(request));
  if (!reply.ok()) return reply.status();
  UpdateResponse response;
  util::Status decoded = DecodeUpdateResponse(*reply, &response);
  if (!decoded.ok()) return decoded;
  return response;
}

util::StatusOr<BackupResponse> Client::TriggerBackup(
    const std::string& dest_dir) {
  BackupRequest request;
  request.dest_dir = dest_dir;
  util::StatusOr<std::string> reply = RoundTrip(EncodeBackupRequest(request));
  if (!reply.ok()) return reply.status();
  BackupResponse response;
  util::Status decoded = DecodeBackupResponse(*reply, &response);
  if (!decoded.ok()) return decoded;
  return response;
}

util::StatusOr<StatusResponse> Client::GetStatus() {
  util::StatusOr<std::string> reply = RoundTrip(EncodeStatusRequest());
  if (!reply.ok()) return reply.status();
  StatusResponse status;
  util::Status decoded = DecodeStatusResponse(*reply, &status);
  if (!decoded.ok()) return decoded;
  return status;
}

}  // namespace viewjoin::server
