#ifndef VIEWJOIN_ALGO_INTER_JOIN_H_
#define VIEWJOIN_ALGO_INTER_JOIN_H_

#include <optional>
#include <string>
#include <vector>

#include "algo/holistic_stats.h"
#include "algo/query_context.h"
#include "storage/buffer_pool.h"
#include "storage/materialized_view.h"
#include "tpq/pattern.h"
#include "tpq/subpattern.h"
#include "xml/document.h"

namespace viewjoin::algo {

/// InterJoin (Phillips, Zhang, Ilyas & Özsu, SSDBM'06) as characterized and
/// evaluated by the ViewJoin paper: evaluation of a *path* query over
/// interleaving *path* views stored in the tuple scheme, executed as a
/// sequence of stack-based binary structural joins over sorted tuple lists,
/// with each combined tuple verified against the remaining interleaved
/// constraints (paper Sections I and VII).
///
/// Example (paper): Q = //a//b//c over views //a//c and //b — scan the
/// (a,c)-tuple list and the b-list, join a with b structurally, then verify
/// that b is an ancestor of c in each combined (a,b,c) tuple.
///
/// Limitations faithful to the original: only path queries, only path views,
/// and binary (non-holistic) join composition, which can generate large
/// useless intermediate results — the behaviour ViewJoin improves upon.
class InterJoin {
 public:
  /// Binds a path query to covering tuple-scheme path views. Returns
  /// std::nullopt and sets *error when the query/views fall outside
  /// InterJoin's class (non-path query, non-path or non-tuple view, no
  /// covering, overlapping view types).
  static std::optional<InterJoin> Bind(
      const xml::Document& doc, const tpq::TreePattern& query,
      std::vector<const storage::MaterializedView*> views,
      storage::BufferPool* pool, std::string* error = nullptr);

  /// Runs the join sequence, streaming verified matches to `sink`. A
  /// non-null `ctx` governs the run (checkpointed per loaded tuple, per
  /// joined pair and per emitted match; relation loads and join outputs are
  /// charged against its memory budget) — once it aborts, evaluation stops
  /// early and the partial output must be discarded by the caller.
  void Evaluate(tpq::MatchSink* sink, QueryContext* ctx = nullptr);

  const HolisticStats& stats() const { return stats_; }

 private:
  InterJoin() = default;

  /// Tuples of one relation: flattened labels, `arity` labels per tuple.
  struct Relation {
    std::vector<int> positions;  // covered query node indices, ascending
    std::vector<xml::Label> labels;  // tuple-major, positions-minor
    size_t arity() const { return positions.size(); }
    size_t size() const {
      return positions.empty() ? 0 : labels.size() / positions.size();
    }
  };

  Relation LoadView(size_t view_index, QueryContext* ctx);
  static Relation Join(const Relation& left, const Relation& right,
                       const tpq::TreePattern& query, HolisticStats* stats,
                       QueryContext* ctx);

  const xml::Document* doc_ = nullptr;
  const tpq::TreePattern* query_ = nullptr;
  std::vector<const storage::MaterializedView*> views_;
  std::vector<tpq::PatternMapping> mappings_;  // view node -> query node
  std::vector<xml::TagId> tags_;               // per query node
  storage::BufferPool* pool_ = nullptr;
  HolisticStats stats_;
};

}  // namespace viewjoin::algo

#endif  // VIEWJOIN_ALGO_INTER_JOIN_H_
