#ifndef VIEWJOIN_ALGO_MONOTONE_RESOLVER_H_
#define VIEWJOIN_ALGO_MONOTONE_RESOLVER_H_

#include <vector>

#include "util/check.h"
#include "xml/document.h"

namespace viewjoin::algo {

/// Resolves stored labels back to document nodes in amortized O(1): each
/// per-query-node stream of labels arrives in ascending start order (list
/// pushes, drain and extension are all monotone), so one forward pointer per
/// query node walks the document's tag list exactly once per evaluation.
class MonotoneResolver {
 public:
  MonotoneResolver(const xml::Document* doc, std::vector<xml::TagId> tags)
      : doc_(doc), tags_(std::move(tags)), pos_(tags_.size(), 0) {}

  /// Resolves the node of query node `q` whose label starts at `start`.
  /// `start` must be non-decreasing across calls with the same `q`.
  xml::NodeId Resolve(int q, uint32_t start) {
    const std::vector<xml::NodeId>& list =
        doc_->NodesOfTag(tags_[static_cast<size_t>(q)]);
    size_t& p = pos_[static_cast<size_t>(q)];
    while (p < list.size() && doc_->NodeLabel(list[p]).start < start) ++p;
    if (p < list.size() && doc_->NodeLabel(list[p]).start == start) {
      return list[p];
    }
    return xml::kInvalidNode;
  }

 private:
  const xml::Document* doc_;
  std::vector<xml::TagId> tags_;
  std::vector<size_t> pos_;
};

}  // namespace viewjoin::algo

#endif  // VIEWJOIN_ALGO_MONOTONE_RESOLVER_H_
