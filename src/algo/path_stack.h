#ifndef VIEWJOIN_ALGO_PATH_STACK_H_
#define VIEWJOIN_ALGO_PATH_STACK_H_

#include "algo/twig_stack.h"
#include "util/check.h"

namespace viewjoin::algo {

/// PathStack (Bruno et al., SIGMOD'02) — the chained-stack join for path
/// queries. On a branching-free query, TwigStack's getNext/stack machinery
/// *is* PathStack (paper Section VI-A: "TS for path queries is equivalent to
/// the PathStack algorithm"), so this type simply asserts the query shape
/// and delegates.
class PathStack : public TwigStack {
 public:
  PathStack(const QueryBinding* binding, storage::BufferPool* pool)
      : TwigStack(binding, pool) {
    VJ_CHECK(binding->query().IsPath())
        << "PathStack handles path queries only; use TwigStack";
  }
};

}  // namespace viewjoin::algo

#endif  // VIEWJOIN_ALGO_PATH_STACK_H_
