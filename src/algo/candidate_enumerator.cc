#include "algo/candidate_enumerator.h"

#include <algorithm>

#include "util/check.h"

namespace viewjoin::algo {

using tpq::Axis;
using tpq::PatternNode;
using tpq::TreePattern;
using xml::kInvalidNode;
using xml::Label;
using xml::NodeId;

namespace {

/// Stack-sweep semi-joins over the candidate label lists. Candidate lists
/// are in document order, so each query edge costs one linear merge with a
/// nesting stack — no hash maps or per-candidate ancestor walks on the
/// output path.
class SemiJoinFilter {
 public:
  SemiJoinFilter(const xml::Document& doc, const TreePattern& pattern,
                 const std::vector<std::vector<NodeId>>& candidates)
      : doc_(doc), pattern_(pattern), candidates_(candidates) {
    size_t nq = pattern.size();
    labels_.resize(nq);
    for (size_t q = 0; q < nq; ++q) {
      labels_[q].reserve(candidates[q].size());
      for (NodeId n : candidates[q]) labels_[q].push_back(doc.NodeLabel(n));
    }
  }

  /// Runs both passes; returns false if some list filtered to empty.
  bool Run() {
    size_t nq = pattern_.size();
    sub_.resize(nq);
    for (int q = static_cast<int>(nq) - 1; q >= 0; --q) {
      sub_[static_cast<size_t>(q)].assign(
          labels_[static_cast<size_t>(q)].size(), 1);
    }
    // Bottom-up: child lists are final before their parent is processed
    // (reverse preorder), so marking uses final sub flags of children.
    for (int q = static_cast<int>(nq) - 1; q >= 0; --q) {
      for (int c : pattern_.node(q).children) {
        MarkParentsWithChild(q, c);
      }
    }
    top_.resize(nq);
    top_[0].resize(labels_[0].size());
    for (size_t i = 0; i < labels_[0].size(); ++i) {
      bool ok = sub_[0][i] != 0;
      if (pattern_.node(0).incoming == Axis::kChild &&
          candidates_[0][i] != doc_.Root()) {
        ok = false;
      }
      top_[0][i] = ok;
    }
    for (size_t q = 1; q < nq; ++q) {
      MarkChildrenWithParent(static_cast<int>(q));
    }
    for (size_t q = 0; q < nq; ++q) {
      bool any = false;
      for (uint8_t f : top_[q]) any |= (f != 0);
      if (!any) return false;
    }
    return true;
  }

  bool Keep(size_t q, size_t i) const { return top_[q][i] != 0; }

 private:
  /// Bottom-up step for edge (q -> c): clear sub[q][i] unless candidate i
  /// has a sub-marked c child (pc) / descendant (ad).
  void MarkParentsWithChild(int q, int c) {
    const std::vector<Label>& pl = labels_[static_cast<size_t>(q)];
    const std::vector<Label>& cl = labels_[static_cast<size_t>(c)];
    std::vector<uint8_t> marked(pl.size(), 0);
    Axis axis = pattern_.node(c).incoming;
    std::vector<size_t> open;
    size_t i = 0;
    for (size_t j = 0; j < cl.size(); ++j) {
      if (!sub_[static_cast<size_t>(c)][j]) continue;
      const Label& child = cl[j];
      // Open every parent candidate starting before the child.
      while (i < pl.size() && pl[i].start < child.start) {
        while (!open.empty() && pl[open.back()].end < pl[i].start) {
          open.pop_back();
        }
        open.push_back(i);
        ++i;
      }
      while (!open.empty() && pl[open.back()].end < child.start) {
        open.pop_back();
      }
      if (open.empty()) continue;
      if (axis == Axis::kChild) {
        // The stack is a nesting chain; only its top can be the parent.
        size_t idx = open.back();
        if (pl[idx].level + 1 == child.level) marked[idx] = 1;
      } else {
        // Mark every open ancestor, innermost first; once a marked one is
        // hit, everything beneath it is already marked.
        for (size_t k = open.size(); k-- > 0;) {
          if (marked[open[k]]) break;
          marked[open[k]] = 1;
        }
      }
    }
    std::vector<uint8_t>& flags = sub_[static_cast<size_t>(q)];
    for (size_t k = 0; k < flags.size(); ++k) flags[k] &= marked[k];
  }

  /// Top-down step for node c with parent p: top[c][j] = sub[c][j] and c has
  /// a top-marked p ancestor (ad) / parent (pc).
  void MarkChildrenWithParent(int c) {
    int p = pattern_.node(c).parent;
    const std::vector<Label>& pl = labels_[static_cast<size_t>(p)];
    const std::vector<Label>& cl = labels_[static_cast<size_t>(c)];
    Axis axis = pattern_.node(c).incoming;
    top_[static_cast<size_t>(c)].assign(cl.size(), 0);
    std::vector<size_t> open;  // top-marked open parent candidates
    size_t i = 0;
    for (size_t j = 0; j < cl.size(); ++j) {
      if (!sub_[static_cast<size_t>(c)][j]) continue;
      const Label& child = cl[j];
      while (i < pl.size() && pl[i].start < child.start) {
        if (top_[static_cast<size_t>(p)][i]) {
          while (!open.empty() && pl[open.back()].end < pl[i].start) {
            open.pop_back();
          }
          open.push_back(i);
        }
        ++i;
      }
      while (!open.empty() && pl[open.back()].end < child.start) {
        open.pop_back();
      }
      if (open.empty()) continue;
      if (axis == Axis::kChild) {
        if (pl[open.back()].level + 1 == child.level) {
          top_[static_cast<size_t>(c)][j] = 1;
        }
      } else {
        top_[static_cast<size_t>(c)][j] = 1;
      }
    }
  }

  const xml::Document& doc_;
  const TreePattern& pattern_;
  const std::vector<std::vector<NodeId>>& candidates_;
  std::vector<std::vector<Label>> labels_;
  std::vector<std::vector<uint8_t>> sub_;
  std::vector<std::vector<uint8_t>> top_;
};

}  // namespace

CandidateEnumerator::CandidateEnumerator(const xml::Document& doc,
                                         const TreePattern& pattern)
    : doc_(doc), pattern_(pattern) {}

void CandidateEnumerator::Enumerate(
    const std::vector<std::vector<NodeId>>& candidates, tpq::MatchSink* sink,
    QueryContext* ctx) const {
  size_t nq = pattern_.size();
  VJ_CHECK_EQ(candidates.size(), nq);
  for (const auto& list : candidates) {
    if (list.empty()) return;
    VJ_DCHECK(std::is_sorted(list.begin(), list.end()));
  }

  SemiJoinFilter filter(doc_, pattern_, candidates);
  if (!filter.Run()) return;

  // Filtered per-node solution lists (ids + labels), document order.
  std::vector<std::vector<NodeId>> lists(nq);
  std::vector<std::vector<Label>> labels(nq);
  for (size_t q = 0; q < nq; ++q) {
    lists[q].reserve(candidates[q].size());
    labels[q].reserve(candidates[q].size());
    for (size_t i = 0; i < candidates[q].size(); ++i) {
      if (filter.Keep(q, i)) {
        lists[q].push_back(candidates[q][i]);
        labels[q].push_back(doc_.NodeLabel(candidates[q][i]));
      }
    }
    if (lists[q].empty()) return;
  }

  // Output-sensitive enumeration (every explored branch completes).
  tpq::Match match(nq, kInvalidNode);
  std::vector<Label> match_labels(nq);
  auto recurse = [&](auto&& self, size_t q) -> void {
    if (q == nq) {
      if (ctx != nullptr && ctx->Checkpoint()) return;
      sink->OnMatch(match);
      return;
    }
    const PatternNode& pn = pattern_.node(static_cast<int>(q));
    const Label& pl = match_labels[static_cast<size_t>(pn.parent)];
    const std::vector<Label>& ll = labels[q];
    size_t begin = static_cast<size_t>(
        std::lower_bound(ll.begin(), ll.end(), pl.start,
                         [](const Label& l, uint32_t s) {
                           return l.start < s;
                         }) -
        ll.begin());
    for (size_t i = begin; i < ll.size(); ++i) {
      if (ctx != nullptr && ctx->aborted()) return;
      if (ll[i].start > pl.end) break;
      if (pn.incoming == Axis::kChild && ll[i].level != pl.level + 1) continue;
      match[q] = lists[q][i];
      match_labels[q] = ll[i];
      self(self, q + 1);
    }
  };
  for (size_t i = 0; i < lists[0].size(); ++i) {
    if (ctx != nullptr && ctx->aborted()) return;
    match[0] = lists[0][i];
    match_labels[0] = labels[0][i];
    recurse(recurse, 1);
  }
}

}  // namespace viewjoin::algo
