#ifndef VIEWJOIN_ALGO_QUERY_CONTEXT_H_
#define VIEWJOIN_ALGO_QUERY_CONTEXT_H_

#include <atomic>
#include <chrono>
#include <cstdint>

namespace viewjoin::algo {

/// Why a governed query stopped early. First requested reason wins; later
/// requests (e.g. the watchdog firing after a budget abort) are ignored.
enum class AbortReason {
  kNone = 0,
  kDeadline,      // wall-clock deadline expired
  kCancelled,     // the caller flipped the cancellation token
  kMemoryBudget,  // buffered intermediate solutions exceeded the budget
  kDiskBudget,    // spilled intermediate solutions exceeded the budget
};

const char* AbortReasonName(AbortReason reason);

/// Per-query governance state threaded through every evaluation loop:
/// deadline, cooperative cancellation token, memory/disk budgets, and
/// progress counters. One context governs one query (across its engine-level
/// recovery and degradation attempts); the engine configures it before
/// evaluation and reads the abort verdict after.
///
/// Cost model: the hot path is Checkpoint(), one relaxed atomic load plus a
/// counter decrement per advance. The clock and the cancellation token are
/// only consulted every kCheckInterval advances, so governance overhead is
/// amortized to noise (the acceptance bar is < 3% on the paper's Fig. 5
/// paths). Evaluation loops additionally test aborted() in their conditions
/// so an abort requested by another thread (the batch watchdog) is observed
/// within one loop iteration.
///
/// Thread model: configuration and budget accounting belong to the owning
/// worker thread; RequestAbort() and DeadlineExpired() are safe from any
/// thread (the watchdog). A default-constructed context is ungoverned — no
/// deadline, no token, no budgets — and never aborts, so algorithms can run
/// against a local default instead of null-checking.
class QueryContext {
 public:
  /// Advances between two full (clock + token) checkpoint inspections.
  static constexpr uint32_t kCheckInterval = 2048;

  QueryContext() = default;
  QueryContext(const QueryContext&) = delete;
  QueryContext& operator=(const QueryContext&) = delete;

  // --- Configuration (owning thread, before evaluation) ---

  /// Arms (or re-arms) the deadline `ms` milliseconds from now. Stored as an
  /// atomic so the watchdog can poll DeadlineExpired() concurrently.
  void set_deadline_after_ms(double ms) {
    deadline_ns_.store(NowNanos() + static_cast<int64_t>(ms * 1e6),
                       std::memory_order_relaxed);
  }
  /// Disarms the deadline. ResetForRetry() deliberately keeps it (a retry of
  /// the same query runs under the same clock); a *session* reusing one
  /// context across unrelated queries must disarm between them or query N+1
  /// inherits query N's deadline.
  void clear_deadline() { deadline_ns_.store(0, std::memory_order_relaxed); }
  void set_cancel_token(const std::atomic<bool>* token) { cancel_ = token; }
  /// Budgets are in bytes; 0 means unlimited.
  void set_memory_budget(uint64_t bytes) { memory_budget_ = bytes; }
  void set_disk_budget(uint64_t bytes) { disk_budget_ = bytes; }

  // --- Hot path ---

  bool aborted() const { return aborted_.load(std::memory_order_relaxed); }

  /// Amortized governance check; call once per advance/emit. Returns true
  /// once the query must stop (deadline, cancel, budget, or watchdog).
  bool Checkpoint() {
    if (aborted()) return true;
    if (--until_check_ > 0) return false;
    return SlowCheckpoint();
  }

  /// Checkpoint charging `n` units of work at once — the batch analogue used
  /// by block-at-a-time skips, which pass whole pages per call instead of
  /// advancing entry by entry. Equivalent governance cadence to calling
  /// Checkpoint() n times, without the n loop iterations.
  bool CheckpointN(uint32_t n) {
    if (aborted()) return true;
    until_check_ -= static_cast<int32_t>(n < kCheckInterval ? n : kCheckInterval);
    if (until_check_ > 0) return false;
    return SlowCheckpoint();
  }

  // --- Budget accounting (owning thread) ---

  void ChargeMemory(uint64_t bytes) {
    memory_used_ += bytes;
    if (memory_used_ > peak_memory_) peak_memory_ = memory_used_;
    if (memory_budget_ != 0 && memory_used_ > memory_budget_) {
      RequestAbort(AbortReason::kMemoryBudget);
    }
  }
  void ReleaseMemory(uint64_t bytes) {
    memory_used_ = bytes < memory_used_ ? memory_used_ - bytes : 0;
  }
  void ChargeDisk(uint64_t bytes) {
    disk_used_ += bytes;
    if (disk_budget_ != 0 && disk_used_ > disk_budget_) {
      RequestAbort(AbortReason::kDiskBudget);
    }
  }

  // --- Cross-thread control (watchdog, callers) ---

  /// Requests a stop; the first reason wins. Safe from any thread.
  void RequestAbort(AbortReason reason) {
    int expected = 0;
    reason_.compare_exchange_strong(expected, static_cast<int>(reason),
                                    std::memory_order_relaxed);
    aborted_.store(true, std::memory_order_release);
  }
  /// True once an armed deadline lies in the past. Safe from any thread.
  bool DeadlineExpired() const {
    int64_t deadline = deadline_ns_.load(std::memory_order_relaxed);
    return deadline != 0 && NowNanos() >= deadline;
  }

  // --- Attempt lifecycle (owning thread) ---

  /// Clears the abort verdict and per-attempt budget accounting before a new
  /// evaluation attempt (the memory→disk downgrade or a batch retry). The
  /// deadline, token, budgets, peak and checkpoint counters persist.
  void ResetForRetry() {
    aborted_.store(false, std::memory_order_relaxed);
    reason_.store(0, std::memory_order_relaxed);
    memory_used_ = 0;
    disk_used_ = 0;
    until_check_ = kCheckInterval;
  }

  // --- Observation ---

  AbortReason reason() const {
    return static_cast<AbortReason>(reason_.load(std::memory_order_relaxed));
  }
  uint64_t memory_used() const { return memory_used_; }
  uint64_t peak_memory_bytes() const { return peak_memory_; }
  uint64_t disk_used() const { return disk_used_; }
  /// Number of slow (clock + token) checkpoint inspections performed.
  uint64_t checkpoints() const { return checkpoints_; }

 private:
  static int64_t NowNanos() {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
  }

  bool SlowCheckpoint();

  std::atomic<int64_t> deadline_ns_{0};  // 0 = no deadline armed
  const std::atomic<bool>* cancel_ = nullptr;
  uint64_t memory_budget_ = 0;
  uint64_t disk_budget_ = 0;
  uint64_t memory_used_ = 0;
  uint64_t peak_memory_ = 0;
  uint64_t disk_used_ = 0;
  uint64_t checkpoints_ = 0;
  int32_t until_check_ = kCheckInterval;
  std::atomic<int> reason_{0};
  std::atomic<bool> aborted_{false};
};

}  // namespace viewjoin::algo

#endif  // VIEWJOIN_ALGO_QUERY_CONTEXT_H_
