#include "algo/twig_stack.h"

#include <memory>

#include "algo/candidate_enumerator.h"
#include "algo/monotone_resolver.h"
#include "algo/spill_buffer.h"
#include "util/check.h"

namespace viewjoin::algo {

using storage::ListCursor;
using tpq::Axis;
using tpq::TreePattern;
using xml::Label;
using xml::NodeId;

namespace {

/// Sentinel head label for exhausted streams.
constexpr Label kEndLabel{0xFFFFFFFFu, 0xFFFFFFFFu, 0};

}  // namespace

class TwigStack::Impl {
 public:
  Impl(const QueryBinding& binding, storage::BufferPool* pool,
       tpq::MatchSink* sink, OutputMode mode, storage::Pager* spill,
       HolisticStats* stats, QueryContext* ctx)
      : binding_(binding),
        query_(binding.query()),
        sink_(sink),
        mode_(mode),
        stats_(stats),
        ctx_(ctx != nullptr ? ctx : &default_ctx_),
        enumerator_(binding.doc(), binding.query()),
        resolver_(&binding.doc(), [&binding] {
          std::vector<xml::TagId> tags;
          for (size_t q = 0; q < binding.query().size(); ++q) {
            tags.push_back(binding.binding(static_cast<int>(q)).tag);
          }
          return tags;
        }()) {
    size_t nq = query_.size();
    cursors_.resize(nq);
    stacks_.resize(nq);
    candidates_.resize(nq);
    max_buffered_end_.assign(nq, 0);
    heads_.resize(nq);
    for (size_t q = 0; q < nq; ++q) {
      const NodeBinding& nb = binding.binding(static_cast<int>(q));
      // Base bindings stream the document's own tag lists from memory,
      // except when the binding carries its own pool — then the list is a
      // document-store page list served by that pool (out-of-core path).
      cursors_[q] = nb.list != nullptr
                        ? ListCursor(nb.list,
                                     nb.pool != nullptr ? nb.pool : pool)
                        : ListCursor(nb.labels->data(),
                                     static_cast<uint32_t>(nb.labels->size()));
      RefreshHead(static_cast<int>(q));
    }
    if (mode_ == OutputMode::kDisk) {
      VJ_CHECK(spill != nullptr) << "disk output mode requires a spill pager";
      spill_ = std::make_unique<SpillBuffer>(spill, nq, ctx_);
    }
  }

  void Run() {
    while (!ctx_->aborted()) {
      int q = GetNext(0);
      if (ctx_->aborted()) break;
      Label nq = Head(q);
      if (nq.start == kEndLabel.start) break;
      int parent = query_.node(q).parent;
      if (parent >= 0) CleanStack(parent, nq);
      if (parent < 0 || !stacks_[static_cast<size_t>(parent)].empty()) {
        CleanStack(q, nq);
        // Memory mode buffers the entire solution (the paper's memory-based
        // approach); disk mode flushes closed groups once enough labels have
        // been spilled, bounding resident memory.
        if (q == 0 && stacks_[0].empty() && mode_ == OutputMode::kDisk &&
            buffered_ >= kFlushThreshold && CanFlush()) {
          Flush();
        }
        Push(q, nq);
      }
      Advance(q);
    }
    Drain();
    Flush();
  }

 private:
  const Label& Head(int q) const { return heads_[static_cast<size_t>(q)]; }

  void RefreshHead(int q) {
    ListCursor& cursor = cursors_[static_cast<size_t>(q)];
    heads_[static_cast<size_t>(q)] = cursor.AtEnd() ? kEndLabel
                                                    : cursor.LabelAt();
  }

  void Advance(int q) {
    ++stats_->entries_scanned;
    ctx_->Checkpoint();
    cursors_[static_cast<size_t>(q)].Next();
    RefreshHead(q);
  }

  /// Classic TwigStack getNext: returns the query node whose current head is
  /// guaranteed to have a subtree extension (treating pc-edges as ad).
  int GetNext(int q) {
    const tpq::PatternNode& pn = query_.node(q);
    if (pn.children.empty()) return q;
    int qmin = -1;
    int qmax = -1;
    for (int c : pn.children) {
      int n = GetNext(c);
      if (n != c) return n;
      Label head = Head(c);
      if (qmin < 0 || head.start < Head(qmin).start) qmin = c;
      if (qmax < 0 || head.start > Head(qmax).start) qmax = c;
    }
    uint32_t max_start = Head(qmax).start;
    if (Head(q).end < max_start) {
      // Skip entries whose region closed before the children's furthest
      // head — a forward scan, SIMD across decoded blocks.
      uint64_t scanned = 0;
      cursors_[static_cast<size_t>(q)].SkipEndsBelow(
          max_start, /*one_block=*/false, &scanned,
          [&](uint32_t n) { return ctx_->CheckpointN(n); });
      stats_->entries_scanned += scanned;
      RefreshHead(q);
    }
    if (Head(q).start < Head(qmin).start) return q;
    return qmin;
  }

  void CleanStack(int q, const Label& next) {
    auto& stack = stacks_[static_cast<size_t>(q)];
    while (!stack.empty() && stack.back().end < next.start) stack.pop_back();
  }

  void Push(int q, const Label& label) {
    stacks_[static_cast<size_t>(q)].push_back(label);
    Buffer(q, label);
  }

  void Buffer(int q, const Label& label) {
    ++stats_->candidates;
    ++buffered_;
    if (buffered_ > stats_->peak_buffered) stats_->peak_buffered = buffered_;
    if (label.end > max_buffered_end_[static_cast<size_t>(q)]) {
      max_buffered_end_[static_cast<size_t>(q)] = label.end;
    }
    if (mode_ == OutputMode::kDisk) {
      spill_->Append(static_cast<size_t>(q), label);
    } else {
      candidates_[static_cast<size_t>(q)].push_back(label);
      charged_memory_ += sizeof(Label);
      ctx_->ChargeMemory(sizeof(Label));
    }
  }

  /// A group flush is safe only once every buffered candidate's region is
  /// closed relative to every pending stream head: candidates are not
  /// necessarily buffered in global document order (a blocked branch can lag
  /// behind), so an open region could still acquire partners.
  bool CanFlush() {
    uint32_t max_end = 0;
    for (uint32_t end : max_buffered_end_) {
      if (end > max_end) max_end = end;
    }
    for (size_t q = 0; q < query_.size(); ++q) {
      Label head = Head(static_cast<int>(q));
      if (head.start != kEndLabel.start && head.start < max_end) return false;
    }
    return true;
  }

  /// Termination drain: when a stream exhausts, getNext stops returning
  /// useful nodes, but other lists may hold entries that join with already
  /// buffered ancestors (classic TwigStack emits those path solutions from
  /// live stacks; our deferred enumeration must buffer the entries instead).
  /// An entry can only matter if it starts inside a buffered region of its
  /// parent, so each list drains up to its parent's max buffered end.
  void Drain() {
    for (size_t q = 0; q < query_.size(); ++q) {
      int parent = query_.node(static_cast<int>(q)).parent;
      uint32_t bound = 0;
      if (parent < 0) {
        for (uint32_t end : max_buffered_end_) {
          if (end > bound) bound = end;
        }
      } else {
        bound = max_buffered_end_[static_cast<size_t>(parent)];
      }
      ListCursor& cursor = cursors_[q];
      while (!cursor.AtEnd() && cursor.LabelAt().start < bound) {
        if (ctx_->Checkpoint()) return;
        ++stats_->entries_scanned;
        Buffer(static_cast<int>(q), cursor.LabelAt());
        cursor.Next();
      }
    }
  }

  /// Enumerates and clears everything collected so far. Safe whenever the
  /// root stack is empty: every buffered candidate then lies under a closed
  /// root and can join only with other buffered candidates.
  void Flush() {
    // An aborted run's candidates are never resolved or enumerated (their
    // partial output would be discarded anyway); the buffers die with Impl.
    if (ctx_->aborted()) return;
    bool any = false;
    size_t nq = query_.size();
    std::vector<std::vector<NodeId>> resolved(nq);
    for (size_t q = 0; q < nq; ++q) {
      std::vector<Label> labels =
          mode_ == OutputMode::kDisk ? spill_->Drain(q)
                                     : std::move(candidates_[q]);
      candidates_[q].clear();
      resolved[q].reserve(labels.size());
      for (const Label& label : labels) {
        if (ctx_->Checkpoint()) return;
        NodeId n = resolver_.Resolve(static_cast<int>(q), label.start);
        VJ_DCHECK(n != xml::kInvalidNode);
        // A label that resolves to no document node can only come from a
        // corrupt or poisoned page; the engine will see the latched storage
        // error and discard this run — never emit the phantom node.
        if (n == xml::kInvalidNode) continue;
        resolved[q].push_back(n);
      }
      if (!resolved[q].empty()) any = true;
    }
    if (mode_ == OutputMode::kDisk) {
      stats_->spill_pages_written = spill_->pages_written();
      stats_->spill_pages_read = spill_->pages_read();
    }
    buffered_ = 0;
    std::fill(max_buffered_end_.begin(), max_buffered_end_.end(), 0);
    // The flushed candidates are freed; return their budget charge.
    ctx_->ReleaseMemory(charged_memory_);
    charged_memory_ = 0;
    if (!any) return;
    ++stats_->flushes;
    enumerator_.Enumerate(resolved, sink_, ctx_);
  }

  static constexpr uint64_t kFlushThreshold = 8192;

  const QueryBinding& binding_;
  const TreePattern& query_;
  tpq::MatchSink* sink_;
  OutputMode mode_;
  HolisticStats* stats_;
  QueryContext default_ctx_;  // ungoverned stand-in when the caller passes none
  QueryContext* ctx_;
  CandidateEnumerator enumerator_;
  MonotoneResolver resolver_;
  std::vector<ListCursor> cursors_;
  std::vector<Label> heads_;
  std::vector<std::vector<Label>> stacks_;
  std::vector<std::vector<Label>> candidates_;
  std::vector<uint32_t> max_buffered_end_;
  std::unique_ptr<SpillBuffer> spill_;
  uint64_t buffered_ = 0;
  uint64_t charged_memory_ = 0;
};

TwigStack::TwigStack(const QueryBinding* binding, storage::BufferPool* pool)
    : binding_(binding), pool_(pool) {}

void TwigStack::Evaluate(tpq::MatchSink* sink, OutputMode mode,
                         storage::Pager* spill, QueryContext* ctx) {
  stats_ = HolisticStats();
  Impl impl(*binding_, pool_, sink, mode, spill, &stats_, ctx);
  impl.Run();
}

}  // namespace viewjoin::algo
