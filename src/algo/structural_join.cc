#include "algo/structural_join.h"

#include "storage/simd_scan.h"

namespace viewjoin::algo {

using tpq::Axis;
using xml::Label;

void StackTreeDesc(const std::vector<Label>& ancestors,
                   const std::vector<Label>& descendants, Axis axis,
                   const std::function<void(size_t, size_t)>& emit,
                   QueryContext* ctx) {
  const size_t n = ancestors.size();
  // Struct-of-arrays shadow of the ancestor keys: the skip scans below read
  // long runs of starts/ends, which vectorize only over contiguous keys.
  std::vector<uint32_t> a_starts(n);
  std::vector<uint32_t> a_ends(n);
  for (size_t k = 0; k < n; ++k) {
    a_starts[k] = ancestors[k].start;
    a_ends[k] = ancestors[k].end;
  }
  std::vector<size_t> stack;
  size_t i = 0;
  for (size_t j = 0; j < descendants.size(); ++j) {
    if (ctx != nullptr && ctx->Checkpoint()) return;
    const Label& d = descendants[j];
    // Ancestor candidates that start before d (starts are sorted).
    const size_t limit =
        i + storage::simd::LowerBoundGe(a_starts.data() + i,
                                        static_cast<uint32_t>(n - i), d.start);
    while (i < limit) {
      if (stack.empty()) {
        // Dead run: with nothing stacked, every candidate that closes before
        // d opens is disjoint from d — and from all later descendants, whose
        // starts only grow. Vector-scan straight past the run instead of
        // pushing and popping each entry.
        size_t run = storage::simd::FirstGe(
            a_ends.data() + i, static_cast<uint32_t>(limit - i), d.start);
        if (ctx != nullptr && ctx->CheckpointN(static_cast<uint32_t>(run + 1))) {
          return;
        }
        i += run;
        if (i >= limit) break;
      }
      while (!stack.empty() && a_ends[stack.back()] < a_starts[i]) {
        stack.pop_back();
      }
      stack.push_back(i);
      ++i;
    }
    // Drop stacked candidates that ended before d.
    while (!stack.empty() && a_ends[stack.back()] < d.start) {
      stack.pop_back();
    }
    // Every remaining stacked candidate contains d (stack is a nesting chain).
    for (size_t k = 0; k < stack.size(); ++k) {
      if (ctx != nullptr && ctx->aborted()) return;
      const Label& a = ancestors[stack[k]];
      if (d.end > a.end) continue;  // partial overlap impossible in trees
      if (axis == Axis::kChild && a.level + 1 != d.level) continue;
      emit(stack[k], j);
    }
  }
}

}  // namespace viewjoin::algo
