#include "algo/structural_join.h"

namespace viewjoin::algo {

using tpq::Axis;
using xml::Label;

void StackTreeDesc(const std::vector<Label>& ancestors,
                   const std::vector<Label>& descendants, Axis axis,
                   const std::function<void(size_t, size_t)>& emit,
                   QueryContext* ctx) {
  std::vector<size_t> stack;
  size_t i = 0;
  for (size_t j = 0; j < descendants.size(); ++j) {
    if (ctx != nullptr && ctx->Checkpoint()) return;
    const Label& d = descendants[j];
    // Push every ancestor candidate that starts before d.
    while (i < ancestors.size() && ancestors[i].start < d.start) {
      while (!stack.empty() && ancestors[stack.back()].end < ancestors[i].start) {
        stack.pop_back();
      }
      stack.push_back(i);
      ++i;
    }
    // Drop stacked candidates that ended before d.
    while (!stack.empty() && ancestors[stack.back()].end < d.start) {
      stack.pop_back();
    }
    // Every remaining stacked candidate contains d (stack is a nesting chain).
    for (size_t k = 0; k < stack.size(); ++k) {
      if (ctx != nullptr && ctx->aborted()) return;
      const Label& a = ancestors[stack[k]];
      if (d.end > a.end) continue;  // partial overlap impossible in trees
      if (axis == Axis::kChild && a.level + 1 != d.level) continue;
      emit(stack[k], j);
    }
  }
}

}  // namespace viewjoin::algo
