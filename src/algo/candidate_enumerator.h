#ifndef VIEWJOIN_ALGO_CANDIDATE_ENUMERATOR_H_
#define VIEWJOIN_ALGO_CANDIDATE_ENUMERATOR_H_

#include <vector>

#include "algo/query_context.h"
#include "tpq/pattern.h"
#include "xml/document.h"

namespace viewjoin::algo {

/// Shared "merge" phase of the holistic algorithms: given per-query-node
/// candidate solution nodes (document order), enumerates every embedding of
/// `pattern` whose nodes all come from the candidate lists, and streams the
/// matches to a sink.
///
/// This plays the role of TwigStack's path-solution merge and of ViewJoin's
/// output pass over the DAG F: candidates may over-approximate the true
/// solution nodes (TwigStack with pc-edges pushes non-solutions; ViewJoin
/// defers pc-level checks to output time, paper Section IV-B), so the
/// enumerator first semi-join-filters the candidates bottom-up and top-down
/// (restricted to the candidate sets) and then enumerates output-sensitively.
///
/// Candidates must be sorted in document order; every emitted match is
/// correct and complete *relative to the candidate lists*.
class CandidateEnumerator {
 public:
  CandidateEnumerator(const xml::Document& doc,
                      const tpq::TreePattern& pattern);

  /// Enumerates all matches embedded in `candidates` (indexed by pattern
  /// node). Thread-compatible; reusable across calls. A non-null `ctx` is
  /// checkpointed inside the enumeration recursion so an output explosion
  /// cannot overshoot a deadline or cancellation by one giant call; an
  /// aborted enumeration stops mid-stream (the engine discards the run).
  void Enumerate(const std::vector<std::vector<xml::NodeId>>& candidates,
                 tpq::MatchSink* sink, QueryContext* ctx = nullptr) const;

 private:
  const xml::Document& doc_;
  tpq::TreePattern pattern_;  // owned copy: callers may pass temporaries
};

}  // namespace viewjoin::algo

#endif  // VIEWJOIN_ALGO_CANDIDATE_ENUMERATOR_H_
