#ifndef VIEWJOIN_ALGO_STRUCTURAL_JOIN_H_
#define VIEWJOIN_ALGO_STRUCTURAL_JOIN_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "algo/query_context.h"
#include "tpq/pattern.h"
#include "xml/label.h"

namespace viewjoin::algo {

/// Stack-based binary structural join (Al-Khalifa et al., ICDE'02) — the
/// primitive underlying both PathStack's ancestry checks and our InterJoin
/// implementation, exposed as a substrate API of its own.
///
/// `ancestors` and `descendants` must be sorted by start label. Invokes
/// `emit(i, j)` for every pair where ancestors[i] contains descendants[j]
/// (axis kChild additionally requires the parent level relation). Pairs are
/// emitted in descendant-major order (sorted by descendants[j].start).
///
/// Runs in O(|ancestors| + |descendants| + #output). A non-null `ctx` is
/// checkpointed per descendant and per emitted pair; once it aborts, the
/// join stops early (its partial output must then be discarded).
void StackTreeDesc(const std::vector<xml::Label>& ancestors,
                   const std::vector<xml::Label>& descendants, tpq::Axis axis,
                   const std::function<void(size_t, size_t)>& emit,
                   QueryContext* ctx = nullptr);

}  // namespace viewjoin::algo

#endif  // VIEWJOIN_ALGO_STRUCTURAL_JOIN_H_
