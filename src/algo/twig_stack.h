#ifndef VIEWJOIN_ALGO_TWIG_STACK_H_
#define VIEWJOIN_ALGO_TWIG_STACK_H_

#include <vector>

#include "algo/holistic_stats.h"
#include "algo/query_binding.h"
#include "algo/query_context.h"
#include "storage/buffer_pool.h"
#include "storage/pager.h"
#include "tpq/pattern.h"

namespace viewjoin::algo {

/// Holistic twig join of Bruno, Koudas & Srivastava (SIGMOD'02), operating
/// on the element lists of a covering view set (paper baseline "TS").
///
/// The algorithm is scheme-agnostic on the read side: it scans the per-node
/// lists of E, LE or LE_p views sequentially (pointers, when present, are
/// ignored — the paper's "extended TS" processes linked-element views as
/// plain streams, paying their wider records in I/O but using no jumps).
///
/// Phase 1 is the classic getNext/stack machinery that pushes candidate
/// solution nodes; phase 2 (the path-merge) is the shared
/// CandidateEnumerator, run at every root-boundary flush. For queries with
/// only ad-edges the pushed candidates are exactly the solution nodes; with
/// pc-edges they may over-approximate and the merge filters (TwigStack's
/// documented suboptimality).
///
/// On a path query this degenerates to PathStack [Bruno et al.]: a chain of
/// linked stacks — see path_stack.h.
class TwigStack {
 public:
  /// `pool` serves list page reads; `spill` is required for OutputMode::kDisk
  /// and receives intermediate solutions.
  TwigStack(const QueryBinding* binding, storage::BufferPool* pool);

  /// Runs the join, streaming every match to `sink`. A non-null `ctx`
  /// governs the run: evaluation loops checkpoint it (deadline, cancel,
  /// budgets) and stop early once it aborts — a stopped run's partial
  /// matches must be discarded by the caller.
  void Evaluate(tpq::MatchSink* sink, OutputMode mode = OutputMode::kMemory,
                storage::Pager* spill = nullptr, QueryContext* ctx = nullptr);

  const HolisticStats& stats() const { return stats_; }

 private:
  class Impl;

  const QueryBinding* binding_;
  storage::BufferPool* pool_;
  HolisticStats stats_;
};

}  // namespace viewjoin::algo

#endif  // VIEWJOIN_ALGO_TWIG_STACK_H_
