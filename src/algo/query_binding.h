#ifndef VIEWJOIN_ALGO_QUERY_BINDING_H_
#define VIEWJOIN_ALGO_QUERY_BINDING_H_

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "storage/materialized_view.h"
#include "tpq/pattern.h"

namespace viewjoin::storage {
class DocumentStore;
}  // namespace viewjoin::storage
#include "tpq/subpattern.h"
#include "xml/document.h"

namespace viewjoin::algo {

/// How one query node is served by the covering view set.
struct NodeBinding {
  /// Index of the covering view in the bound view vector (-1 in a base
  /// binding).
  int view = -1;
  /// Pattern node index within that view whose list L_q serves this node.
  int view_node = -1;
  /// The stored list (element or linked-element layout); null in a base
  /// binding, where `labels` serves the stream instead.
  const storage::StoredList* list = nullptr;
  /// In-memory label stream for base bindings (the document's own tag list).
  const std::vector<xml::Label>* labels = nullptr;
  /// Buffer pool that serves `list` when it lives outside the view catalog
  /// (document-store base bindings). Null for view lists — the operator's
  /// catalog pool serves those.
  storage::BufferPool* pool = nullptr;
  /// Resolved document tag (may be kInvalidTag when the tag is absent from
  /// the document; the list is then empty as well).
  xml::TagId tag = xml::kInvalidTag;
};

/// Binds a query to a covering set of materialized views: per query node the
/// serving list, plus the inter/intra-view structure every view-aware
/// algorithm needs.
///
/// Requirements checked at bind time (the paper's standing assumptions):
/// query and views have unique element types, the views are subpatterns of
/// the query, cover every query node, and do not overlap in element types.
class QueryBinding {
 public:
  /// Returns std::nullopt and fills *error when the views do not legally
  /// cover the query. All views must share one storage scheme family
  /// (element-list based: E/LE/LE_p — the tuple scheme binds in InterJoin
  /// only).
  static std::optional<QueryBinding> Bind(
      const xml::Document& doc, const tpq::TreePattern& query,
      std::vector<const storage::MaterializedView*> views,
      std::string* error = nullptr);

  /// Binds the query directly to the base document: every node's stream is
  /// the document's own tag list, with no view store behind it. This is the
  /// graceful-degradation path — TwigStack over a base binding answers the
  /// query without touching a single stored page. Only the sequential-scan
  /// algorithms (TwigStack) accept base bindings; pointer-based ones need
  /// stored lists.
  static std::optional<QueryBinding> BindBase(const xml::Document& doc,
                                              const tpq::TreePattern& query,
                                              std::string* error = nullptr);

  /// Base binding whose streams are the document store's paged tag lists
  /// instead of in-memory vectors: each node gets the store's StoredList and
  /// pool, so TwigStack scans pinned pages (out-of-core path). The in-memory
  /// document is still consulted for NodeId resolution (FindByStart), which
  /// is what makes disk-mode solutions identical to memory-mode ones by
  /// construction.
  static std::optional<QueryBinding> BindBase(
      const xml::Document& doc, const storage::DocumentStore& store,
      const tpq::TreePattern& query, std::string* error = nullptr);

  const xml::Document& doc() const { return *doc_; }
  const tpq::TreePattern& query() const { return *query_; }
  const std::vector<const storage::MaterializedView*>& views() const {
    return views_;
  }

  const NodeBinding& binding(int qnode) const {
    return bindings_[static_cast<size_t>(qnode)];
  }

  /// True iff the Q-edge into `qnode` (from its query parent) is intra-view:
  /// both endpoints covered by the same view. False for the query root.
  bool IsIntraViewEdge(int qnode) const {
    return intra_view_edge_[static_cast<size_t>(qnode)];
  }

  /// Number of inter-view edges incident to `qnode` (e_q in the paper's
  /// cost model and complexity bounds).
  int InterViewEdgeCount(int qnode) const;

  /// Child-pointer slot within the LE record of `qnode`'s list that points
  /// to the list of `child_qnode`, or -1 when (qnode, child_qnode) is not a
  /// view edge. Both nodes must be covered by the same view and be in a
  /// parent-child relation *within the view pattern*.
  int ChildSlot(int qnode, int child_qnode) const;

  /// Resolves a stored label back to the document node (for match output).
  xml::NodeId Resolve(int qnode, const xml::Label& label) const {
    return doc_->FindByStart(bindings_[static_cast<size_t>(qnode)].tag,
                             label.start);
  }

 private:
  QueryBinding() = default;

  const xml::Document* doc_ = nullptr;
  const tpq::TreePattern* query_ = nullptr;
  std::vector<const storage::MaterializedView*> views_;
  std::vector<NodeBinding> bindings_;
  std::vector<uint8_t> intra_view_edge_;
  /// query node index of each view node: per view, mapping[viewnode]=qnode.
  std::vector<tpq::PatternMapping> view_to_query_;
  /// Base-binding label streams (shared so copies of the binding keep the
  /// NodeBinding::labels pointers valid).
  std::shared_ptr<std::vector<std::vector<xml::Label>>> base_labels_;
};

}  // namespace viewjoin::algo

#endif  // VIEWJOIN_ALGO_QUERY_BINDING_H_
