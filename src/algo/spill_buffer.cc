#include "algo/spill_buffer.h"

#include <cstring>

#include "util/check.h"

namespace viewjoin::algo {

using storage::Pager;
using storage::PageId;
using xml::Label;

SpillBuffer::SpillBuffer(Pager* pager, size_t streams, QueryContext* ctx)
    : pager_(pager), ctx_(ctx) {
  streams_.resize(streams);
}

PageId SpillBuffer::TakePage() {
  if (!free_pages_.empty()) {
    PageId id = free_pages_.back();
    free_pages_.pop_back();
    return id;
  }
  util::StatusOr<PageId> id = pager_->AllocatePage();
  if (!id.ok()) return storage::kInvalidPage;
  if (ctx_ != nullptr) ctx_->ChargeDisk(Pager::kPageSize);
  return *id;
}

void SpillBuffer::Append(size_t stream, const Label& label) {
  Stream& s = streams_[stream];
  uint8_t rec[kLabelSize];
  std::memcpy(rec, &label.start, 4);
  std::memcpy(rec + 4, &label.end, 4);
  std::memcpy(rec + 8, &label.level, 4);
  s.buffer.insert(s.buffer.end(), rec, rec + kLabelSize);
  ++s.count;
  if (s.buffer.size() + kLabelSize > Pager::kPageSize) {
    s.buffer.resize(Pager::kPageSize, 0);
    PageId id = TakePage();
    // A failed spill write poisons the spool: labels are lost, so the run's
    // output can no longer be trusted. The pager latches the error; the
    // engine reads it back after the run and discards the result.
    if (id == storage::kInvalidPage ||
        !pager_->WritePage(id, s.buffer.data()).ok()) {
      failed_ = true;
      if (id != storage::kInvalidPage) free_pages_.push_back(id);
    } else {
      ++pages_written_;
      s.pages.push_back(id);
    }
    s.buffer.clear();
  }
}

std::vector<Label> SpillBuffer::Drain(size_t stream) {
  Stream& s = streams_[stream];
  std::vector<Label> labels;
  labels.reserve(s.count);
  std::vector<uint8_t> page(Pager::kPageSize);
  uint64_t remaining = s.count;
  auto decode = [&](const uint8_t* data, size_t n) {
    for (size_t i = 0; i < n; ++i) {
      Label label;
      std::memcpy(&label.start, data + i * kLabelSize, 4);
      std::memcpy(&label.end, data + i * kLabelSize + 4, 4);
      std::memcpy(&label.level, data + i * kLabelSize + 8, 4);
      labels.push_back(label);
    }
  };
  for (PageId id : s.pages) {
    size_t n = static_cast<size_t>(
        remaining < kLabelsPerPage ? remaining : kLabelsPerPage);
    if (pager_->ReadPage(id, page.data()).ok()) {
      decode(page.data(), n);
    } else {
      failed_ = true;  // labels lost; the engine discards the run
    }
    ++pages_read_;
    remaining -= n;
    free_pages_.push_back(id);
  }
  decode(s.buffer.data(), s.buffer.size() / kLabelSize);
  s.pages.clear();
  s.buffer.clear();
  s.count = 0;
  VJ_CHECK(failed_ || labels.size() == labels.capacity());
  return labels;
}

}  // namespace viewjoin::algo
