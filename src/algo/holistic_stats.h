#ifndef VIEWJOIN_ALGO_HOLISTIC_STATS_H_
#define VIEWJOIN_ALGO_HOLISTIC_STATS_H_

#include <cstdint>

namespace viewjoin::algo {

/// Runtime counters shared by the holistic algorithms (TwigStack, ViewJoin).
struct HolisticStats {
  /// List entries examined (cursor head reads that advanced processing).
  uint64_t entries_scanned = 0;
  /// Entries skipped without examination via materialized pointers.
  uint64_t entries_skipped = 0;
  /// Pointer dereferences (following/child jumps).
  uint64_t pointer_jumps = 0;
  /// Candidate solution nodes collected (stack pushes / F insertions).
  uint64_t candidates = 0;
  /// Output flushes (per-root enumeration rounds).
  uint64_t flushes = 0;
  /// Peak number of buffered candidate nodes (memory-mode footprint proxy).
  uint64_t peak_buffered = 0;
  /// Pages written + read through the spill file (disk output mode).
  uint64_t spill_pages_written = 0;
  uint64_t spill_pages_read = 0;
  /// Time spent in the output pass (ExtendRemoved + enumeration), and the
  /// work done there — the planner's "extension walk" plan step reports these
  /// separately from the segment-evaluation counters above.
  double output_pass_ms = 0.0;
  uint64_t output_entries_scanned = 0;
  uint64_t output_pointer_jumps = 0;

  HolisticStats& operator+=(const HolisticStats& other) {
    entries_scanned += other.entries_scanned;
    entries_skipped += other.entries_skipped;
    pointer_jumps += other.pointer_jumps;
    candidates += other.candidates;
    flushes += other.flushes;
    if (other.peak_buffered > peak_buffered) {
      peak_buffered = other.peak_buffered;
    }
    spill_pages_written += other.spill_pages_written;
    spill_pages_read += other.spill_pages_read;
    output_pass_ms += other.output_pass_ms;
    output_entries_scanned += other.output_entries_scanned;
    output_pointer_jumps += other.output_pointer_jumps;
    return *this;
  }
};

/// How query solutions are buffered before the output pass (paper Section IV
/// "Variations of the ViewJoin algorithm" and Section VI-E).
enum class OutputMode {
  kMemory,  // keep all intermediate solutions in memory ("TS-M"/"VJ-M")
  kDisk,    // spill intermediate solutions, re-read to emit ("TS-D"/"VJ-D")
};

}  // namespace viewjoin::algo

#endif  // VIEWJOIN_ALGO_HOLISTIC_STATS_H_
