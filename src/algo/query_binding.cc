#include "algo/query_binding.h"

#include <sstream>

#include "storage/document_store.h"
#include "util/check.h"

namespace viewjoin::algo {

using storage::MaterializedView;
using storage::Scheme;
using tpq::TreePattern;

std::optional<QueryBinding> QueryBinding::Bind(
    const xml::Document& doc, const TreePattern& query,
    std::vector<const MaterializedView*> views, std::string* error) {
  auto fail = [error](const std::string& message) -> std::optional<QueryBinding> {
    if (error != nullptr) *error = message;
    return std::nullopt;
  };
  if (!query.HasUniqueTags()) {
    return fail("query has duplicate element types: " + query.ToString());
  }
  std::vector<TreePattern> patterns;
  patterns.reserve(views.size());
  for (const MaterializedView* v : views) {
    if (v->scheme() == Scheme::kTuple) {
      return fail("tuple-scheme views bind only through InterJoin");
    }
    patterns.push_back(v->pattern());
  }
  tpq::CoveringInfo covering = tpq::AnalyzeCovering(query, patterns);
  if (covering.overlapping) {
    return fail("views overlap in element types (violates the paper's view "
                "model)");
  }
  if (!covering.covers) {
    return fail("views do not cover the query " + query.ToString());
  }

  QueryBinding binding;
  binding.doc_ = &doc;
  binding.query_ = &query;
  binding.views_ = std::move(views);
  binding.bindings_.resize(query.size());
  binding.intra_view_edge_.assign(query.size(), 0);
  binding.view_to_query_.resize(binding.views_.size());

  for (size_t vi = 0; vi < binding.views_.size(); ++vi) {
    const tpq::PatternMapping& mapping = *covering.mappings[vi];
    binding.view_to_query_[vi] = mapping;
    for (size_t vnode = 0; vnode < mapping.size(); ++vnode) {
      int qnode = mapping[vnode];
      NodeBinding& nb = binding.bindings_[static_cast<size_t>(qnode)];
      nb.view = static_cast<int>(vi);
      nb.view_node = static_cast<int>(vnode);
      nb.list = &binding.views_[vi]->list(static_cast<int>(vnode));
      nb.tag = doc.FindTag(query.node(qnode).tag);
    }
  }

  for (size_t q = 1; q < query.size(); ++q) {
    int parent = query.node(static_cast<int>(q)).parent;
    binding.intra_view_edge_[q] =
        binding.bindings_[q].view ==
        binding.bindings_[static_cast<size_t>(parent)].view;
  }
  return binding;
}

std::optional<QueryBinding> QueryBinding::BindBase(const xml::Document& doc,
                                                   const TreePattern& query,
                                                   std::string* error) {
  if (!query.HasUniqueTags()) {
    if (error != nullptr) {
      *error = "query has duplicate element types: " + query.ToString();
    }
    return std::nullopt;
  }
  QueryBinding binding;
  binding.doc_ = &doc;
  binding.query_ = &query;
  binding.bindings_.resize(query.size());
  binding.intra_view_edge_.assign(query.size(), 0);
  binding.base_labels_ =
      std::make_shared<std::vector<std::vector<xml::Label>>>(query.size());
  for (size_t q = 0; q < query.size(); ++q) {
    NodeBinding& nb = binding.bindings_[q];
    nb.tag = doc.FindTag(query.node(static_cast<int>(q)).tag);
    std::vector<xml::Label>& labels = (*binding.base_labels_)[q];
    if (nb.tag != xml::kInvalidTag) {
      const std::vector<xml::NodeId>& nodes = doc.NodesOfTag(nb.tag);
      labels.reserve(nodes.size());
      for (xml::NodeId n : nodes) labels.push_back(doc.NodeLabel(n));
    }
    nb.labels = &labels;
  }
  return binding;
}

std::optional<QueryBinding> QueryBinding::BindBase(
    const xml::Document& doc, const storage::DocumentStore& store,
    const TreePattern& query, std::string* error) {
  if (!query.HasUniqueTags()) {
    if (error != nullptr) {
      *error = "query has duplicate element types: " + query.ToString();
    }
    return std::nullopt;
  }
  QueryBinding binding;
  binding.doc_ = &doc;
  binding.query_ = &query;
  binding.bindings_.resize(query.size());
  binding.intra_view_edge_.assign(query.size(), 0);
  for (size_t q = 0; q < query.size(); ++q) {
    NodeBinding& nb = binding.bindings_[q];
    const std::string& tag_name = query.node(static_cast<int>(q)).tag;
    // The in-memory tag id drives Resolve (FindByStart); the store's own
    // (identically interned) tag id selects the paged list. An absent tag
    // binds the store's shared empty list.
    nb.tag = doc.FindTag(tag_name);
    nb.list = store.ListOfTag(store.FindTag(tag_name));
    nb.pool = store.pool();
  }
  return binding;
}

int QueryBinding::InterViewEdgeCount(int qnode) const {
  int count = 0;
  const tpq::PatternNode& qn = query_->node(qnode);
  if (qn.parent >= 0 && !IsIntraViewEdge(qnode)) ++count;
  for (int c : qn.children) {
    if (!IsIntraViewEdge(c)) ++count;
  }
  return count;
}

int QueryBinding::ChildSlot(int qnode, int child_qnode) const {
  const NodeBinding& nb = bindings_[static_cast<size_t>(qnode)];
  const NodeBinding& cb = bindings_[static_cast<size_t>(child_qnode)];
  if (nb.view != cb.view || nb.view < 0) return -1;
  const TreePattern& vp = views_[static_cast<size_t>(nb.view)]->pattern();
  const tpq::PatternNode& vn = vp.node(nb.view_node);
  for (size_t k = 0; k < vn.children.size(); ++k) {
    if (vn.children[k] == cb.view_node) return static_cast<int>(k);
  }
  return -1;
}

}  // namespace viewjoin::algo
