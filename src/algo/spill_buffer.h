#ifndef VIEWJOIN_ALGO_SPILL_BUFFER_H_
#define VIEWJOIN_ALGO_SPILL_BUFFER_H_

#include <cstdint>
#include <vector>

#include "algo/query_context.h"
#include "storage/pager.h"
#include "xml/label.h"

namespace viewjoin::algo {

/// Disk spool for intermediate solutions (the disk-based output variant of
/// TwigStack and ViewJoin, paper Section VI-E): labels are appended per
/// stream into pager-backed pages and read back at flush time, so only one
/// partially-filled page per stream stays in memory between flushes.
///
/// Freed pages are recycled, bounding the spill file to the largest flush.
class SpillBuffer {
 public:
  /// `streams` is the number of independent append streams (one per query
  /// node). A non-null `ctx` is charged one page of disk budget per page the
  /// spill file grows by (recycled pages are free — the budget tracks file
  /// size, not write volume).
  SpillBuffer(storage::Pager* pager, size_t streams,
              QueryContext* ctx = nullptr);

  SpillBuffer(const SpillBuffer&) = delete;
  SpillBuffer& operator=(const SpillBuffer&) = delete;

  /// Appends one label to `stream`.
  void Append(size_t stream, const xml::Label& label);

  /// Number of labels currently spooled in `stream`.
  uint64_t Count(size_t stream) const { return streams_[stream].count; }

  /// Reads back all labels of `stream` in append order (page reads are
  /// counted by the pager) and resets the stream.
  std::vector<xml::Label> Drain(size_t stream);

  uint64_t pages_written() const { return pages_written_; }
  uint64_t pages_read() const { return pages_read_; }

  /// True once any spill write or read-back failed; the spooled labels are
  /// then incomplete and the run's output must be discarded (the pager's
  /// last_error() carries the underlying Status).
  bool failed() const { return failed_; }

 private:
  static constexpr size_t kLabelSize = 12;
  static constexpr size_t kLabelsPerPage =
      storage::Pager::kPageSize / kLabelSize;

  struct Stream {
    std::vector<storage::PageId> pages;  // full pages already written
    std::vector<uint8_t> buffer;         // current partial page
    uint64_t count = 0;
  };

  storage::PageId TakePage();

  storage::Pager* pager_;
  QueryContext* ctx_;
  std::vector<Stream> streams_;
  std::vector<storage::PageId> free_pages_;
  uint64_t pages_written_ = 0;
  uint64_t pages_read_ = 0;
  bool failed_ = false;
};

}  // namespace viewjoin::algo

#endif  // VIEWJOIN_ALGO_SPILL_BUFFER_H_
