#include "algo/inter_join.h"

#include <algorithm>

#include "algo/structural_join.h"
#include "storage/stored_list.h"
#include "tpq/subpattern.h"
#include "util/check.h"

namespace viewjoin::algo {

using storage::ListCursor;
using storage::MaterializedView;
using storage::Scheme;
using tpq::Axis;
using tpq::TreePattern;
using xml::Label;
using xml::NodeId;

namespace {

/// Structural predicate between adjacent covered positions p < q of a path
/// query: direct edge (q == p+1) uses the edge's axis; positions bridging a
/// gap still require a proper ancestor-descendant relationship.
bool PositionsSatisfied(const TreePattern& query, int p, int q,
                        const Label& lp, const Label& lq) {
  if (!(lp.start < lq.start && lq.end < lp.end)) return false;
  if (q == p + 1 && query.node(q).incoming == Axis::kChild) {
    return lp.level + 1 == lq.level;
  }
  return true;
}

}  // namespace

std::optional<InterJoin> InterJoin::Bind(
    const xml::Document& doc, const TreePattern& query,
    std::vector<const MaterializedView*> views, storage::BufferPool* pool,
    std::string* error) {
  auto fail = [error](const std::string& message) -> std::optional<InterJoin> {
    if (error != nullptr) *error = message;
    return std::nullopt;
  };
  if (!query.IsPath()) {
    return fail("InterJoin handles path queries only: " + query.ToString());
  }
  std::vector<TreePattern> patterns;
  for (const MaterializedView* v : views) {
    if (v->scheme() != Scheme::kTuple) {
      return fail("InterJoin requires tuple-scheme views");
    }
    if (!v->pattern().IsPath()) {
      return fail("InterJoin requires path views: " + v->pattern().ToString());
    }
    patterns.push_back(v->pattern());
  }
  tpq::CoveringInfo covering = tpq::AnalyzeCovering(query, patterns);
  if (covering.overlapping) return fail("views overlap in element types");
  if (!covering.covers) {
    return fail("views do not cover the query " + query.ToString());
  }
  InterJoin join;
  join.doc_ = &doc;
  join.query_ = &query;
  join.views_ = std::move(views);
  join.pool_ = pool;
  for (size_t vi = 0; vi < join.views_.size(); ++vi) {
    join.mappings_.push_back(*covering.mappings[vi]);
  }
  for (size_t q = 0; q < query.size(); ++q) {
    join.tags_.push_back(doc.FindTag(query.node(static_cast<int>(q)).tag));
  }
  return join;
}

InterJoin::Relation InterJoin::LoadView(size_t view_index, QueryContext* ctx) {
  const MaterializedView* view = views_[view_index];
  const tpq::PatternMapping& mapping = mappings_[view_index];
  Relation rel;
  rel.positions.assign(mapping.begin(), mapping.end());
  // A path view's preorder equals its root-to-leaf order, and a subpattern
  // of a path query maps monotonically into query positions.
  VJ_DCHECK(std::is_sorted(rel.positions.begin(), rel.positions.end()));
  ListCursor cursor(&view->tuple_list(), pool_);
  size_t arity = rel.arity();
  rel.labels.reserve(static_cast<size_t>(view->tuple_list().count) * arity);
  cursor.Reset();
  if (cursor.block_capable()) {
    // Block path: copy each decoded page's SoA spans in one pass instead of
    // re-entering the cursor per entry and per tuple slot.
    while (!cursor.AtEnd()) {
      storage::BlockView block = cursor.CurrentBlock();
      uint32_t values = block.count * static_cast<uint32_t>(arity);
      for (uint32_t v = 0; v < values; ++v) {
        rel.labels.push_back({block.starts[v], block.ends[v], block.levels[v]});
      }
      ctx->ChargeMemory(static_cast<uint64_t>(values) * sizeof(Label));
      stats_.entries_scanned += block.count;
      cursor.Seek(block.first + block.count);
      if (ctx->CheckpointN(block.count)) break;
    }
    return rel;
  }
  for (; !cursor.AtEnd(); cursor.Next()) {
    if (ctx->Checkpoint()) break;
    for (size_t k = 0; k < arity; ++k) {
      rel.labels.push_back(cursor.LabelAt(static_cast<uint32_t>(k)));
    }
    ctx->ChargeMemory(arity * sizeof(Label));
    ++stats_.entries_scanned;
  }
  return rel;
}

InterJoin::Relation InterJoin::Join(const Relation& left, const Relation& right,
                                    const TreePattern& query,
                                    HolisticStats* stats, QueryContext* ctx) {
  // Anchor pair: deepest left position above the right relation's top
  // position; the query path makes it an ancestor in every final match.
  int rtop = right.positions.front();
  int anchor = -1;
  size_t anchor_slot = 0;
  for (size_t k = 0; k < left.positions.size(); ++k) {
    if (left.positions[k] < rtop) {
      anchor = left.positions[k];
      anchor_slot = k;
    }
  }
  VJ_CHECK(anchor >= 0) << "join inputs must nest under the left relation";
  Axis axis = (rtop == anchor + 1 && query.node(rtop).incoming == Axis::kChild)
                  ? Axis::kChild
                  : Axis::kDescendant;

  // The stack join needs both sides sorted on their anchor labels.
  size_t la = left.arity();
  size_t ra = right.arity();
  std::vector<size_t> lorder(left.size());
  for (size_t i = 0; i < lorder.size(); ++i) lorder[i] = i;
  std::sort(lorder.begin(), lorder.end(), [&](size_t a, size_t b) {
    return left.labels[a * la + anchor_slot].start <
           left.labels[b * la + anchor_slot].start;
  });
  std::vector<Label> anc(lorder.size());
  for (size_t i = 0; i < lorder.size(); ++i) {
    anc[i] = left.labels[lorder[i] * la + anchor_slot];
  }
  std::vector<Label> desc(right.size());
  for (size_t j = 0; j < desc.size(); ++j) desc[j] = right.labels[j * ra];

  Relation out;
  out.positions = left.positions;
  out.positions.insert(out.positions.end(), right.positions.begin(),
                       right.positions.end());
  std::vector<size_t> perm(out.positions.size());
  for (size_t i = 0; i < perm.size(); ++i) perm[i] = i;
  std::sort(perm.begin(), perm.end(), [&](size_t a, size_t b) {
    return out.positions[a] < out.positions[b];
  });
  std::vector<int> sorted_positions(perm.size());
  for (size_t i = 0; i < perm.size(); ++i) {
    sorted_positions[i] = out.positions[perm[i]];
  }

  std::vector<Label> combined(perm.size());
  StackTreeDesc(anc, desc, axis, [&](size_t i, size_t j) {
    // Assemble the merged tuple in ascending query-position order.
    for (size_t k = 0; k < perm.size(); ++k) {
      size_t src = perm[k];
      combined[k] = src < la ? left.labels[lorder[i] * la + src]
                             : right.labels[j * ra + (src - la)];
    }
    // Verify every adjacent covered pair (the "interleaved" constraints the
    // anchor join did not check).
    for (size_t k = 0; k + 1 < perm.size(); ++k) {
      if (!PositionsSatisfied(query, sorted_positions[k],
                              sorted_positions[k + 1], combined[k],
                              combined[k + 1])) {
        return;
      }
    }
    out.labels.insert(out.labels.end(), combined.begin(), combined.end());
    ctx->ChargeMemory(combined.size() * sizeof(Label));
    ++stats->candidates;
  }, ctx);
  out.positions = sorted_positions;
  return out;
}

void InterJoin::Evaluate(tpq::MatchSink* sink, QueryContext* ctx) {
  stats_ = HolisticStats();
  QueryContext ungoverned;
  if (ctx == nullptr) ctx = &ungoverned;
  // Left-deep join order by top covered position: start from the view
  // covering the query root.
  std::vector<size_t> order(views_.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    return mappings_[a].front() < mappings_[b].front();
  });
  VJ_CHECK(!order.empty());

  Relation acc = LoadView(order[0], ctx);
  VJ_CHECK_EQ(acc.positions.front(), 0);
  for (size_t step = 1;
       step < order.size() && !acc.labels.empty() && !ctx->aborted(); ++step) {
    Relation next = LoadView(order[step], ctx);
    if (ctx->aborted()) break;
    uint64_t input_bytes =
        (acc.labels.size() + next.labels.size()) * sizeof(Label);
    acc = Join(acc, next, *query_, &stats_, ctx);
    // The join inputs are freed here; only the output stays charged.
    ctx->ReleaseMemory(input_bytes);
  }
  if (ctx->aborted()) return;
  if (views_.size() == 1) {
    // Single covering view: tuples may still violate pc-edges that the view
    // stored as ad-edges; verify before emitting.
    Relation verified;
    verified.positions = acc.positions;
    size_t arity = acc.arity();
    for (size_t t = 0; t < acc.size(); ++t) {
      if (ctx->Checkpoint()) return;
      bool ok = true;
      for (size_t k = 0; k + 1 < arity && ok; ++k) {
        ok = PositionsSatisfied(*query_, acc.positions[k], acc.positions[k + 1],
                                acc.labels[t * arity + k],
                                acc.labels[t * arity + k + 1]);
      }
      if (ok) {
        verified.labels.insert(verified.labels.end(),
                               acc.labels.begin() + t * arity,
                               acc.labels.begin() + (t + 1) * arity);
      }
    }
    acc = std::move(verified);
  }

  // Emit in document order of the full tuple.
  if (acc.labels.empty()) return;
  size_t arity = acc.arity();
  VJ_CHECK_EQ(arity, query_->size());
  std::vector<size_t> emit_order(acc.size());
  for (size_t i = 0; i < emit_order.size(); ++i) emit_order[i] = i;
  std::sort(emit_order.begin(), emit_order.end(), [&](size_t a, size_t b) {
    for (size_t k = 0; k < arity; ++k) {
      uint32_t sa = acc.labels[a * arity + k].start;
      uint32_t sb = acc.labels[b * arity + k].start;
      if (sa != sb) return sa < sb;
    }
    return false;
  });
  tpq::Match match(arity, xml::kInvalidNode);
  for (size_t t : emit_order) {
    if (ctx->Checkpoint()) return;
    for (size_t k = 0; k < arity; ++k) {
      match[k] = doc_->FindByStart(tags_[k], acc.labels[t * arity + k].start);
      VJ_DCHECK(match[k] != xml::kInvalidNode);
    }
    sink->OnMatch(match);
  }
}

}  // namespace viewjoin::algo
