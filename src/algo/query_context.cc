#include "algo/query_context.h"

namespace viewjoin::algo {

const char* AbortReasonName(AbortReason reason) {
  switch (reason) {
    case AbortReason::kNone:
      return "none";
    case AbortReason::kDeadline:
      return "deadline";
    case AbortReason::kCancelled:
      return "cancelled";
    case AbortReason::kMemoryBudget:
      return "memory-budget";
    case AbortReason::kDiskBudget:
      return "disk-budget";
  }
  return "?";
}

bool QueryContext::SlowCheckpoint() {
  until_check_ = kCheckInterval;
  ++checkpoints_;
  if (cancel_ != nullptr && cancel_->load(std::memory_order_relaxed)) {
    RequestAbort(AbortReason::kCancelled);
    return true;
  }
  if (DeadlineExpired()) {
    RequestAbort(AbortReason::kDeadline);
    return true;
  }
  return aborted();
}

}  // namespace viewjoin::algo
