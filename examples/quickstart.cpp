// Quickstart: parse a small XML document, materialize two linked-element
// views, and answer a tree pattern query with ViewJoin.
//
//   $ ./build/examples/quickstart

#include <cstdio>
#include <string>

#include "core/engine.h"
#include "tpq/evaluator.h"
#include "tpq/pattern.h"
#include "xml/parser.h"

using viewjoin::core::Algorithm;
using viewjoin::core::Engine;
using viewjoin::core::RunOptions;
using viewjoin::core::RunResult;
using viewjoin::storage::Scheme;

int main() {
  // A region-labelled document: a tiny library catalogue.
  const char* xml =
      "<library>"
      "  <shelf>"
      "    <book><title>t1</title><author><name>n1</name></author></book>"
      "    <book><title>t2</title><author><name>n2</name>"
      "      <award>a1</award></author></book>"
      "  </shelf>"
      "  <shelf>"
      "    <book><author><name>n3</name></author><title>t3</title></book>"
      "  </shelf>"
      "</library>";
  viewjoin::xml::ParseResult parsed = viewjoin::xml::ParseDocument(xml);
  if (!parsed.ok()) {
    std::fprintf(stderr, "parse error: %s\n", parsed.error.c_str());
    return 1;
  }
  const viewjoin::xml::Document& doc = *parsed.document;
  std::printf("parsed %zu elements\n", doc.NodeCount());

  // The engine owns the materialized-view store (a paged file).
  Engine engine(&doc, "/tmp/viewjoin_quickstart.db");

  // Materialize a covering view set in the linked-element scheme: one view
  // precomputes the shelf//book join, the other covers author//name.
  const auto* v1 = engine.AddView("//shelf//book", Scheme::kLinkedElement);
  const auto* v2 = engine.AddView("//author/name", Scheme::kLinkedElement);
  std::printf("materialized %s (%llu B) and %s (%llu B)\n",
              v1->pattern().ToString().c_str(),
              static_cast<unsigned long long>(v1->SizeBytes()),
              v2->pattern().ToString().c_str(),
              static_cast<unsigned long long>(v2->SizeBytes()));

  // Every query node is an output node: the answer is the set of
  // (shelf, book, author, name) tree-pattern instances.
  auto query = viewjoin::tpq::TreePattern::Parse("//shelf//book[//author/name]");
  if (!query.has_value()) return 1;

  viewjoin::tpq::CollectingSink matches;
  RunOptions run;
  run.algorithm = Algorithm::kViewJoin;
  RunResult result = engine.Execute(*query, {v1, v2}, run, &matches);
  if (!result.ok) {
    std::fprintf(stderr, "execution error: %s\n", result.error.c_str());
    return 1;
  }

  std::printf("query %s -> %llu matches in %.3f ms (%llu page reads)\n",
              query->ToString().c_str(),
              static_cast<unsigned long long>(result.match_count),
              result.total_ms,
              static_cast<unsigned long long>(result.io.pages_read));
  for (const viewjoin::tpq::Match& match : matches.matches()) {
    std::printf("  match:");
    for (size_t q = 0; q < query->size(); ++q) {
      const auto& label = doc.NodeLabel(match[q]);
      std::printf(" %s=[%u,%u]", query->node(static_cast<int>(q)).tag.c_str(),
                  label.start, label.end);
    }
    std::printf("\n");
  }

  // Sanity: the naive evaluator agrees.
  std::printf("oracle count: %llu\n",
              static_cast<unsigned long long>(
                  viewjoin::tpq::NaiveEvaluator(doc, *query).Count()));
  return 0;
}
