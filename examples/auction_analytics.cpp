// Auction-site analytics: the scenario from the paper's introduction — an
// XML store (the XMark auction site) answers recurring analytical tree
// pattern queries from a set of materialized views, comparing the evaluation
// algorithm and storage-scheme combinations.
//
//   $ ./build/examples/auction_analytics [xmark-scale]

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "core/engine.h"
#include "data/xmark_generator.h"
#include "storage/materialized_view.h"
#include "tpq/pattern.h"
#include "util/table_printer.h"

using viewjoin::core::Algorithm;
using viewjoin::core::Engine;
using viewjoin::core::RunOptions;
using viewjoin::core::RunResult;
using viewjoin::storage::MaterializedView;
using viewjoin::storage::Scheme;
using viewjoin::tpq::TreePattern;

namespace {

struct Workload {
  const char* name;
  const char* query;
  std::vector<const char*> views;
};

}  // namespace

int main(int argc, char** argv) {
  double scale = argc > 1 ? std::atof(argv[1]) : 1.0;
  viewjoin::xml::Document doc =
      viewjoin::data::GenerateXmark({.scale = scale, .seed = 42});
  std::printf("generated XMark-shaped site with %zu elements (scale %.2f)\n\n",
              doc.NodeCount(), scale);
  Engine engine(&doc, "/tmp/viewjoin_auctions.db");

  const Workload workloads[] = {
      {"bidders per auction",
       "//open_auctions//open_auction//bidder//personref",
       {"//open_auctions//open_auction", "//bidder//personref"}},
      {"described items with keywords",
       "//item[//incategory]//description//text//keyword",
       {"//item//incategory", "//description//text", "//keyword"}},
      {"educated sellers",
       "//people//person[//profile//education]//emailaddress",
       {"//people//person", "//profile//education", "//emailaddress"}},
  };

  for (const Workload& w : workloads) {
    auto query = TreePattern::Parse(w.query);
    if (!query.has_value()) return 1;
    std::printf("== %s: %s ==\n", w.name, w.query);
    viewjoin::util::TablePrinter table(
        {"combo", "matches", "time (ms)", "pages read", "entries skipped"});
    for (Scheme scheme : {Scheme::kElement, Scheme::kLinkedElement,
                          Scheme::kLinkedElementPartial}) {
      std::vector<const MaterializedView*> views;
      for (const char* v : w.views) views.push_back(engine.AddView(v, scheme));
      for (Algorithm algorithm :
           {Algorithm::kTwigStack, Algorithm::kViewJoin}) {
        RunOptions run;
        run.algorithm = algorithm;
        RunResult result = engine.Execute(*query, views, run);
        if (!result.ok) {
          std::fprintf(stderr, "error: %s\n", result.error.c_str());
          return 1;
        }
        table.AddRow({std::string(AlgorithmName(algorithm)) + "+" +
                          SchemeName(scheme),
                      std::to_string(result.match_count),
                      viewjoin::util::FormatDouble(result.total_ms, 2),
                      std::to_string(result.io.pages_read),
                      std::to_string(result.stats.entries_skipped)});
      }
    }
    table.Print();
    std::printf("\n");
  }
  return 0;
}
