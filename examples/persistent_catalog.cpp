// Materialize once, query many times: build a persistent view catalog, save
// its manifest, then reopen it in a fresh process state and answer queries
// without re-materializing anything.
//
//   $ ./build/examples/persistent_catalog [xmark-scale]

#include <cstdio>
#include <cstdlib>
#include <memory>

#include "algo/query_binding.h"
#include "algo/twig_stack.h"
#include "core/view_join.h"
#include "core/segmented_query.h"
#include "data/xmark_generator.h"
#include "storage/dag_walker.h"
#include "storage/materialized_view.h"
#include "tpq/pattern.h"
#include "util/timer.h"

using viewjoin::storage::Scheme;
using viewjoin::storage::ViewCatalog;

int main(int argc, char** argv) {
  double scale = argc > 1 ? std::atof(argv[1]) : 1.0;
  viewjoin::xml::Document doc =
      viewjoin::data::GenerateXmark({.scale = scale, .seed = 42});
  const char* path = "/tmp/viewjoin_persistent.db";

  // Phase 1: materialize and persist.
  {
    viewjoin::util::Timer timer;
    ViewCatalog catalog(path, 256, /*persistent=*/true);
    catalog.Materialize(doc, *viewjoin::tpq::TreePattern::Parse(
                                 "//open_auctions//open_auction"),
                        Scheme::kLinkedElement);
    catalog.Materialize(doc,
                        *viewjoin::tpq::TreePattern::Parse("//bidder//increase"),
                        Scheme::kLinkedElement);
    catalog.Materialize(doc, *viewjoin::tpq::TreePattern::Parse("//initial"),
                        Scheme::kLinkedElement);
    catalog.SaveManifest();
    std::printf("materialized 3 views in %.2f ms; catalog saved to %s\n",
                timer.ElapsedMillis(), path);
  }

  // Phase 2: reopen and query — no re-materialization.
  auto opened = ViewCatalog::Open(path, 256);
  if (!opened.ok()) {
    std::fprintf(stderr, "reopen failed: %s\n",
                 opened.status().ToString().c_str());
    return 1;
  }
  std::unique_ptr<ViewCatalog> catalog = std::move(*opened);
  std::printf("reopened catalog with %zu views\n", catalog->views().size());

  auto query = viewjoin::tpq::TreePattern::Parse(
      "//open_auctions//open_auction[//bidder//increase]//initial");
  std::vector<const viewjoin::storage::MaterializedView*> views;
  for (const auto& v : catalog->views()) views.push_back(v.get());
  auto binding = viewjoin::algo::QueryBinding::Bind(doc, *query, views);
  if (!binding.has_value()) return 1;
  viewjoin::core::SegmentedQuery sq =
      viewjoin::core::BuildSegmentedQuery(*binding);
  viewjoin::core::ViewJoin join(&*binding, &sq, catalog->pool());
  viewjoin::tpq::CountingSink sink;
  viewjoin::util::Timer timer;
  join.Evaluate(&sink);
  std::printf("ViewJoin over the reopened views: %llu matches in %.2f ms\n",
              static_cast<unsigned long long>(sink.count()),
              timer.ElapsedMillis());

  // Bonus: walk one view's DAG to regenerate its own matches (the LE scheme
  // subsumes the tuple scheme).
  viewjoin::storage::DagWalker walker(views[0], catalog->pool());
  std::printf("view %s holds %llu precomputed matches\n",
              views[0]->pattern().ToString().c_str(),
              static_cast<unsigned long long>(walker.CountMatches()));
  std::remove(path);
  std::remove((std::string(path) + ".manifest").c_str());
  return 0;
}
