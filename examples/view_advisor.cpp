// View advisor: given a workload query over a NASA-like astronomy catalogue
// and a pool of candidate materialized views, run the paper's cost-based
// greedy selection (Section V) against the size-only baseline, then evaluate
// the query with both selected sets to show the difference (Example 5.1).
//
//   $ ./build/examples/view_advisor [datasets]

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "core/engine.h"
#include "data/nasa_generator.h"
#include "tpq/pattern.h"
#include "util/table_printer.h"
#include "view/selection.h"

using viewjoin::core::Algorithm;
using viewjoin::core::Engine;
using viewjoin::core::RunOptions;
using viewjoin::core::RunResult;
using viewjoin::storage::Scheme;
using viewjoin::tpq::TreePattern;
using viewjoin::view::SelectionHeuristic;
using viewjoin::view::SelectionOptions;
using viewjoin::view::SelectionResult;

int main(int argc, char** argv) {
  int64_t datasets = argc > 1 ? std::atol(argv[1]) : 600;
  viewjoin::xml::Document doc =
      viewjoin::data::GenerateNasa({.datasets = datasets, .seed = 7});
  std::printf("generated NASA-like catalogue with %zu elements\n\n",
              doc.NodeCount());
  Engine engine(&doc, "/tmp/viewjoin_advisor.db");

  const std::string query_path =
      "//dataset//tableHead[//tableLink//title]//field//definition//para";
  auto query = TreePattern::Parse(query_path);
  if (!query.has_value()) return 1;

  const std::vector<std::string> candidate_paths = {
      "//dataset//definition",      "//dataset//tableHead",
      "//field//para",              "//definition",
      "//tableLink//title",         "//field//definition//para",
      "//tableHead//field",         "//para",
  };
  std::vector<TreePattern> candidates;
  for (const std::string& p : candidate_paths) {
    candidates.push_back(*TreePattern::Parse(p));
  }

  std::printf("workload query: %s\n\ncandidate views:\n", query_path.c_str());
  SelectionOptions cost_options;  // λ = 1
  SelectionResult by_cost =
      viewjoin::view::SelectViews(doc, *query, candidates, cost_options);
  SelectionOptions size_options;
  size_options.heuristic = SelectionHeuristic::kSizeOnly;
  SelectionResult by_size =
      viewjoin::view::SelectViews(doc, *query, candidates, size_options);

  viewjoin::util::TablePrinter table({"view", "pattern", "Σ|L_q|", "c(v,Q)"});
  for (size_t i = 0; i < candidates.size(); ++i) {
    table.AddRow({"v" + std::to_string(i + 1), candidate_paths[i],
                  std::to_string(by_cost.sizes[i]),
                  std::isnan(by_cost.costs[i])
                      ? "not a subpattern"
                      : viewjoin::util::FormatDouble(by_cost.costs[i], 0)});
  }
  table.Print();

  auto describe = [&](const SelectionResult& sel) {
    std::string out;
    for (size_t i : sel.selected) {
      if (!out.empty()) out += ", ";
      out += "v" + std::to_string(i + 1);
    }
    return out;
  };
  std::printf("\ncost-based pick : {%s}\n", describe(by_cost).c_str());
  std::printf("size-only pick  : {%s}\n", describe(by_size).c_str());
  if (!by_cost.covers || !by_size.covers) {
    std::fprintf(stderr, "a heuristic failed to cover the query\n");
    return 1;
  }

  auto evaluate = [&](const SelectionResult& sel) {
    std::vector<const viewjoin::storage::MaterializedView*> views;
    for (size_t i : sel.selected) {
      views.push_back(engine.AddView(candidates[i], Scheme::kLinkedElementPartial));
    }
    RunOptions run;
    run.algorithm = Algorithm::kViewJoin;
    return engine.Execute(*query, views, run);
  };
  RunResult cost_run = evaluate(by_cost);
  RunResult size_run = evaluate(by_size);
  if (!cost_run.ok || !size_run.ok) {
    std::fprintf(stderr, "%s%s\n", cost_run.error.c_str(),
                 size_run.error.c_str());
    return 1;
  }
  std::printf("\nVJ+LE_p with cost-based set: %.2f ms (%llu matches)\n",
              cost_run.total_ms,
              static_cast<unsigned long long>(cost_run.match_count));
  std::printf("VJ+LE_p with size-only set : %.2f ms\n", size_run.total_ms);
  std::printf("cost-based speedup         : %.2fx\n",
              size_run.total_ms / cost_run.total_ms);
  return 0;
}
