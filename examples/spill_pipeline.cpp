// Bounded-memory evaluation: the disk-based output variant (paper Section
// VI-E) spills intermediate solutions to a spool file and re-reads them at
// group boundaries, trading I/O for a bounded resident footprint — the mode
// to use when a query's full answer does not fit in memory.
//
//   $ ./build/examples/spill_pipeline [xmark-scale]

#include <cstdio>
#include <cstdlib>
#include <vector>

#include "core/engine.h"
#include "data/xmark_generator.h"
#include "tpq/pattern.h"
#include "util/table_printer.h"

using viewjoin::algo::OutputMode;
using viewjoin::core::Algorithm;
using viewjoin::core::Engine;
using viewjoin::core::RunOptions;
using viewjoin::core::RunResult;
using viewjoin::storage::Scheme;
using viewjoin::tpq::TreePattern;

int main(int argc, char** argv) {
  double scale = argc > 1 ? std::atof(argv[1]) : 2.0;
  viewjoin::xml::Document doc =
      viewjoin::data::GenerateXmark({.scale = scale, .seed = 42});
  std::printf("XMark document: %zu elements\n\n", doc.NodeCount());
  Engine engine(&doc, "/tmp/viewjoin_spill.db");

  auto query = TreePattern::Parse(
      "//open_auctions//open_auction[//bidder//increase]//initial");
  std::vector<const viewjoin::storage::MaterializedView*> views = {
      engine.AddView("//open_auctions//open_auction", Scheme::kLinkedElement),
      engine.AddView("//bidder//increase", Scheme::kLinkedElement),
      engine.AddView("//initial", Scheme::kLinkedElement),
  };

  viewjoin::util::TablePrinter table(
      {"mode", "matches", "time (ms)", "I/O (ms)", "peak buffered entries",
       "spill pages (w/r)"});
  for (OutputMode mode : {OutputMode::kMemory, OutputMode::kDisk}) {
    RunOptions run;
    run.algorithm = Algorithm::kViewJoin;
    run.output_mode = mode;
    RunResult r = engine.Execute(*query, views, run);
    if (!r.ok) {
      std::fprintf(stderr, "error: %s\n", r.error.c_str());
      return 1;
    }
    table.AddRow({mode == OutputMode::kMemory ? "memory (VJ-M)" : "disk (VJ-D)",
                  std::to_string(r.match_count),
                  viewjoin::util::FormatDouble(r.total_ms, 2),
                  viewjoin::util::FormatDouble(r.io_ms, 2),
                  std::to_string(r.stats.peak_buffered),
                  std::to_string(r.stats.spill_pages_written) + "/" +
                      std::to_string(r.stats.spill_pages_read)});
  }
  table.Print();
  std::printf(
      "\nThe disk mode keeps only extension anchors resident; everything\n"
      "else streams through the spill file in 4 KiB pages.\n");
  return 0;
}
