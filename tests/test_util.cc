#include "tests/test_util.h"

#include <algorithm>
#include <cctype>

namespace viewjoin::testing {

using tpq::Axis;
using tpq::Match;
using tpq::TreePattern;
using xml::Document;
using xml::NodeId;

Document MakeDoc(const std::string& spec) {
  Document doc;
  size_t pos = 0;
  auto skip_space = [&] {
    while (pos < spec.size() && std::isspace(static_cast<unsigned char>(spec[pos]))) {
      ++pos;
    }
  };
  int depth = 0;
  while (true) {
    skip_space();
    if (pos >= spec.size()) break;
    char c = spec[pos];
    if (c == '(') {
      ++pos;  // children of the element just opened: nothing to do, the
              // element stays open until ')'
      continue;
    }
    if (c == ')') {
      ++pos;
      doc.EndElement();
      --depth;
      continue;
    }
    size_t begin = pos;
    while (pos < spec.size() &&
           (std::isalnum(static_cast<unsigned char>(spec[pos])) ||
            spec[pos] == '_')) {
      ++pos;
    }
    VJ_CHECK(pos > begin) << "bad doc spec near offset " << begin;
    doc.StartElement(spec.substr(begin, pos - begin));
    ++depth;
    skip_space();
    if (pos < spec.size() && spec[pos] == '(') {
      // children follow; keep open.
    } else {
      doc.EndElement();
      --depth;
    }
  }
  VJ_CHECK(doc.IsComplete()) << "unbalanced doc spec";
  return doc;
}

TreePattern MustParse(const std::string& xpath) {
  std::string error;
  std::optional<TreePattern> pattern = TreePattern::Parse(xpath, &error);
  VJ_CHECK(pattern.has_value()) << xpath << ": " << error;
  return *pattern;
}

std::vector<Match> BruteForceMatches(const Document& doc,
                                     const TreePattern& query) {
  size_t nq = query.size();
  std::vector<std::vector<NodeId>> candidates(nq);
  for (size_t q = 0; q < nq; ++q) {
    xml::TagId tag = doc.FindTag(query.node(static_cast<int>(q)).tag);
    if (tag == xml::kInvalidTag) return {};
    candidates[q] = doc.NodesOfTag(tag);
    if (candidates[q].empty()) return {};
  }
  std::vector<Match> result;
  Match match(nq);
  auto verify = [&](size_t q) {
    const tpq::PatternNode& pn = query.node(static_cast<int>(q));
    if (pn.parent < 0) {
      return pn.incoming != Axis::kChild || match[q] == doc.Root();
    }
    const xml::Label& pl = doc.NodeLabel(match[static_cast<size_t>(pn.parent)]);
    const xml::Label& dl = doc.NodeLabel(match[q]);
    if (!(pl.start < dl.start && dl.end < pl.end)) return false;
    if (pn.incoming == Axis::kChild && pl.level + 1 != dl.level) return false;
    return true;
  };
  // Full cartesian product with per-level verification.
  auto recurse = [&](auto&& self, size_t q) -> void {
    if (q == nq) {
      result.push_back(match);
      return;
    }
    for (NodeId n : candidates[q]) {
      match[q] = n;
      if (verify(q)) self(self, q + 1);
    }
  };
  recurse(recurse, 0);
  std::sort(result.begin(), result.end());
  return result;
}

Document RandomDoc(util::Rng* rng, int node_budget,
                   const std::vector<std::string>& tags, int max_fanout) {
  Document doc;
  int remaining = node_budget;
  auto subtree = [&](auto&& self, int depth) -> void {
    doc.StartElement(tags[rng->Uniform(tags.size())]);
    --remaining;
    if (depth < 10) {
      int64_t fanout = rng->UniformRange(0, max_fanout);
      for (int64_t i = 0; i < fanout && remaining > 0; ++i) {
        self(self, depth + 1);
      }
    }
    doc.EndElement();
  };
  // A fixed synthetic root keeps specs single-rooted.
  doc.StartElement("root0");
  while (remaining > 0) subtree(subtree, 1);
  doc.EndElement();
  return doc;
}

TreePattern RandomQuery(util::Rng* rng, int num_nodes,
                        const std::vector<std::string>& tags) {
  VJ_CHECK_LE(static_cast<size_t>(num_nodes), tags.size());
  // Sample distinct tags.
  std::vector<std::string> pool = tags;
  for (size_t i = 0; i < pool.size(); ++i) {
    std::swap(pool[i], pool[i + rng->Uniform(pool.size() - i)]);
  }
  TreePattern query;
  query.AddNode(pool[0], -1, Axis::kDescendant);
  for (int i = 1; i < num_nodes; ++i) {
    int parent = static_cast<int>(rng->Uniform(static_cast<uint64_t>(i)));
    Axis axis = rng->Bernoulli(0.3) ? Axis::kChild : Axis::kDescendant;
    query.AddNode(pool[static_cast<size_t>(i)], parent, axis);
  }
  return query;
}

std::vector<TreePattern> RandomViewPartition(util::Rng* rng,
                                             const TreePattern& query,
                                             int max_views) {
  size_t nq = query.size();
  int num_views = 1 + static_cast<int>(rng->Uniform(
                          static_cast<uint64_t>(std::min<size_t>(
                              static_cast<size_t>(max_views), nq))));
  // Assign each query node to a group; group of node 0 is 0.
  std::vector<int> group(nq);
  for (size_t q = 0; q < nq; ++q) {
    group[q] = static_cast<int>(rng->Uniform(static_cast<uint64_t>(num_views)));
  }
  // Build one view per non-empty group. Process query nodes in preorder so
  // view parents exist before children.
  std::vector<TreePattern> views(static_cast<size_t>(num_views));
  std::vector<int> view_node_of(nq, -1);
  for (size_t q = 0; q < nq; ++q) {
    int g = group[q];
    TreePattern& view = views[static_cast<size_t>(g)];
    // Find the nearest query ancestor in the same group.
    int anc = query.node(static_cast<int>(q)).parent;
    while (anc >= 0 && group[static_cast<size_t>(anc)] != g) {
      anc = query.node(anc).parent;
    }
    if (anc < 0) {
      if (!view.empty()) {
        // Second root within a group: views must be trees, so move this
        // node (and implicitly its group-descendants) to a fresh group.
        views.emplace_back();
        g = static_cast<int>(views.size()) - 1;
        group[q] = g;
      }
      view_node_of[q] = views[static_cast<size_t>(g)].AddNode(
          query.node(static_cast<int>(q)).tag, -1, Axis::kDescendant);
      continue;
    }
    // Direct query edge survives with its axis; bridged edges become ad.
    bool direct = query.node(static_cast<int>(q)).parent == anc;
    Axis axis = direct ? query.node(static_cast<int>(q)).incoming
                       : Axis::kDescendant;
    view_node_of[q] = view.AddNode(query.node(static_cast<int>(q)).tag,
                                   view_node_of[static_cast<size_t>(anc)],
                                   axis);
  }
  // Drop empty groups.
  std::vector<TreePattern> result;
  for (TreePattern& view : views) {
    if (!view.empty()) result.push_back(std::move(view));
  }
  return result;
}

}  // namespace viewjoin::testing
