// Heavier randomized differential suites than property_test: deeper
// recursion, pc-heavy queries, tiny buffer pools (constant eviction), disk
// output with a small flush threshold, and generator-based documents with
// the benchmark queries. Everything is validated against the oracle.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/engine.h"
#include "data/nasa_generator.h"
#include "storage/buffer_pool.h"
#include "storage/pager.h"
#include "data/xmark_generator.h"
#include "tests/test_util.h"
#include "tpq/evaluator.h"
#include "util/rng.h"

namespace viewjoin {
namespace {

using algo::OutputMode;
using core::Algorithm;
using core::Engine;
using core::EngineOptions;
using core::RunOptions;
using core::RunResult;
using storage::MaterializedView;
using storage::Scheme;
using tpq::TreePattern;

std::string TempPath(const std::string& name) {
  return std::string(::testing::TempDir()) + name;
}

struct Expected {
  uint64_t count;
  uint64_t hash;
};

Expected Oracle(const xml::Document& doc, const TreePattern& query) {
  tpq::HashingSink sink;
  tpq::NaiveEvaluator(doc, query).Evaluate(&sink);
  return {sink.count(), sink.hash()};
}

void ExpectAllCombosAgree(Engine* engine, const TreePattern& query,
                          const std::vector<TreePattern>& view_patterns,
                          const Expected& expected,
                          const std::string& context) {
  for (Scheme scheme : {Scheme::kElement, Scheme::kLinkedElement,
                        Scheme::kLinkedElementPartial}) {
    std::vector<const MaterializedView*> views;
    for (const TreePattern& v : view_patterns) {
      views.push_back(engine->AddView(v, scheme));
    }
    for (Algorithm algorithm : {Algorithm::kTwigStack, Algorithm::kViewJoin}) {
      for (OutputMode mode : {OutputMode::kMemory, OutputMode::kDisk}) {
        RunOptions run;
        run.algorithm = algorithm;
        run.output_mode = mode;
        RunResult result = engine->Execute(query, views, run);
        ASSERT_TRUE(result.ok) << result.error;
        EXPECT_EQ(result.match_count, expected.count)
            << context << " " << core::AlgorithmName(algorithm) << "+"
            << storage::SchemeName(scheme)
            << (mode == OutputMode::kDisk ? " disk" : " mem");
        EXPECT_EQ(result.result_hash, expected.hash)
            << context << " " << core::AlgorithmName(algorithm) << "+"
            << storage::SchemeName(scheme);
      }
    }
  }
}

/// Deep-recursion documents: few tags, high nesting — the regime where
/// stacks grow, following pointers jump far, and flush guards matter.
class DeepRecursionTest : public ::testing::TestWithParam<int> {};

TEST_P(DeepRecursionTest, AllCombosMatchOracle) {
  uint64_t seed = 40000 + static_cast<uint64_t>(GetParam());
  util::Rng rng(seed);
  std::vector<std::string> tags = {"a", "b", "c"};
  xml::Document doc = testing::RandomDoc(&rng, 220, tags, /*max_fanout=*/2);
  TreePattern query = testing::RandomQuery(
      &rng, 2 + static_cast<int>(rng.Uniform(2)), tags);
  std::vector<TreePattern> views =
      testing::RandomViewPartition(&rng, query, 2);
  Expected expected = Oracle(doc, query);
  EngineOptions options;
  options.pool_pages = 2;  // constant eviction pressure
  Engine engine(&doc, TempPath("deep_" + std::to_string(seed) + ".db"),
                options);
  ExpectAllCombosAgree(&engine, query, views, expected,
                       "deep " + query.ToString());
}

INSTANTIATE_TEST_SUITE_P(Seeds, DeepRecursionTest, ::testing::Range(0, 60));

/// pc-edge-heavy random queries: the regime where phase-1 candidates
/// over-approximate and the output pass must filter (paper: TwigStack's
/// suboptimality for pc-edges; ViewJoin checks pc at output time).
class PcHeavyTest : public ::testing::TestWithParam<int> {};

TEST_P(PcHeavyTest, AllCombosMatchOracle) {
  uint64_t seed = 50000 + static_cast<uint64_t>(GetParam());
  util::Rng rng(seed);
  std::vector<std::string> tags = {"a", "b", "c", "d", "e", "f"};
  xml::Document doc = testing::RandomDoc(&rng, 150, tags);
  // Build a query whose edges are mostly pc.
  int len = 2 + static_cast<int>(rng.Uniform(4));
  std::vector<std::string> pool = tags;
  for (size_t i = 0; i < pool.size(); ++i) {
    std::swap(pool[i], pool[i + rng.Uniform(pool.size() - i)]);
  }
  TreePattern query;
  query.AddNode(pool[0], -1, tpq::Axis::kDescendant);
  for (int i = 1; i < len; ++i) {
    int parent = static_cast<int>(rng.Uniform(static_cast<uint64_t>(i)));
    tpq::Axis axis =
        rng.Bernoulli(0.8) ? tpq::Axis::kChild : tpq::Axis::kDescendant;
    query.AddNode(pool[static_cast<size_t>(i)], parent, axis);
  }
  std::vector<TreePattern> views =
      testing::RandomViewPartition(&rng, query, 3);
  Expected expected = Oracle(doc, query);
  Engine engine(&doc, TempPath("pc_" + std::to_string(seed) + ".db"));
  ExpectAllCombosAgree(&engine, query, views, expected,
                       "pc " + query.ToString());
}

INSTANTIATE_TEST_SUITE_P(Seeds, PcHeavyTest, ::testing::Range(0, 60));

/// Benchmark-query differential tests on the real generators: every XMark
/// and NASA benchmark query, evaluated from its depth-split views and from
/// single-element views, must match the oracle.
class GeneratorQueryTest
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(GeneratorQueryTest, BenchmarkQueriesMatchOracle) {
  auto [dataset, query_index] = GetParam();
  xml::Document doc;
  std::vector<std::string> queries;
  if (dataset == 0) {
    doc = data::GenerateXmark({.scale = 0.15, .seed = 11});
    queries = {
        "//people//person//name",
        "//open_auctions//open_auction//bidder//increase",
        "//open_auctions//open_auction[//bidder//personref]//initial",
        "//people//person[//profile//interest]//name",
        "//person[//watches//watch]//emailaddress",
        "//regions//item[//incategory]//description//parlist//listitem",
        "//item[//mailbox//mail]//description//text//keyword",
        "//regions//item[//location]//mailbox//mail",
    };
  } else {
    doc = data::GenerateNasa({.datasets = 60, .seed = 11});
    queries = {
        "//field//footnote//para",
        "//dataset//definition//footnote",
        "//revision/creator/lastname",
        "//reference//journal//date//year",
        "//dataset[//definition/footnote]//history//revision//para",
        "//journal[//suffix][title]/date/year",
        "//dataset[//field//footnote]//journal[//bibcode]//lastname",
        "//descriptions[//observatory]/description//para",
    };
  }
  const std::string& xpath = queries[static_cast<size_t>(query_index)];
  TreePattern query = testing::MustParse(xpath);
  Expected expected = Oracle(doc, query);
  Engine engine(&doc, TempPath("gen_" + std::to_string(dataset) + "_" +
                               std::to_string(query_index) + ".db"));
  // Single-element views: every query node its own view ("raw streams").
  std::vector<TreePattern> singles;
  for (size_t q = 0; q < query.size(); ++q) {
    TreePattern v;
    v.AddNode(query.node(static_cast<int>(q)).tag, -1, tpq::Axis::kDescendant);
    singles.push_back(std::move(v));
  }
  ExpectAllCombosAgree(&engine, query, singles, expected, "singles " + xpath);
  // A two-way partition: root half and leaf half.
  util::Rng rng(1234);
  std::vector<TreePattern> halves =
      testing::RandomViewPartition(&rng, query, 2);
  ExpectAllCombosAgree(&engine, query, halves, expected, "halves " + xpath);
}

INSTANTIATE_TEST_SUITE_P(Queries, GeneratorQueryTest,
                         ::testing::Combine(::testing::Values(0, 1),
                                            ::testing::Range(0, 8)));

/// InterJoin on generator-based path queries (tuple views, interleaved and
/// contiguous partitions).
class GeneratorInterJoinTest : public ::testing::TestWithParam<int> {};

TEST_P(GeneratorInterJoinTest, PathQueriesMatchOracle) {
  xml::Document doc = data::GenerateNasa({.datasets = 60, .seed = 11});
  const std::vector<std::pair<std::string, std::vector<std::string>>> cases = {
      {"//field//footnote//para", {"//field//para", "//footnote"}},
      {"//field//footnote//para", {"//field", "//footnote//para"}},
      {"//dataset//definition//footnote",
       {"//dataset//footnote", "//definition"}},
      {"//reference//journal//date//year",
       {"//reference//date", "//journal//year"}},
      {"//revision/creator/lastname", {"//revision", "//creator/lastname"}},
  };
  const auto& [xpath, view_paths] = cases[static_cast<size_t>(GetParam())];
  TreePattern query = testing::MustParse(xpath);
  Expected expected = Oracle(doc, query);
  Engine engine(&doc,
                TempPath("genij_" + std::to_string(GetParam()) + ".db"));
  std::vector<const MaterializedView*> views;
  for (const std::string& v : view_paths) {
    views.push_back(engine.AddView(v, Scheme::kTuple));
  }
  RunOptions run;
  run.algorithm = Algorithm::kInterJoin;
  RunResult result = engine.Execute(query, views, run);
  ASSERT_TRUE(result.ok) << result.error;
  EXPECT_EQ(result.match_count, expected.count) << xpath;
  EXPECT_EQ(result.result_hash, expected.hash) << xpath;
}

INSTANTIATE_TEST_SUITE_P(Cases, GeneratorInterJoinTest, ::testing::Range(0, 5));

/// Governed runs are a pure control-plane overlay: with generous limits the
/// answer hash must be identical to the ungoverned run, and with punishing
/// budgets the engine must either degrade to the exact answer or fail with a
/// typed RESOURCE_EXHAUSTED — it must never return a wrong match set.
class GovernedStressTest : public ::testing::TestWithParam<int> {};

TEST_P(GovernedStressTest, TinyBudgetsNeverProduceWrongAnswers) {
  uint64_t seed = 60000 + static_cast<uint64_t>(GetParam());
  util::Rng rng(seed);
  std::vector<std::string> tags = {"a", "b", "c", "d"};
  xml::Document doc = testing::RandomDoc(&rng, 300, tags);
  TreePattern query = testing::RandomQuery(
      &rng, 2 + static_cast<int>(rng.Uniform(3)), tags);
  std::vector<TreePattern> view_patterns =
      testing::RandomViewPartition(&rng, query, 2);
  Expected expected = Oracle(doc, query);
  Engine engine(&doc, TempPath("gov_stress_" + std::to_string(seed) + ".db"));
  std::vector<const MaterializedView*> views;
  for (const TreePattern& v : view_patterns) {
    views.push_back(engine.AddView(v, Scheme::kLinkedElement));
  }
  for (Algorithm algorithm : {Algorithm::kTwigStack, Algorithm::kViewJoin}) {
    // Generous governance: nothing may change versus the clean run.
    RunOptions roomy;
    roomy.algorithm = algorithm;
    roomy.deadline_ms = 60000;
    roomy.memory_budget_bytes = 1ull << 30;
    roomy.disk_budget_bytes = 1ull << 30;
    RunResult r = engine.Execute(query, views, roomy);
    ASSERT_TRUE(r.ok) << r.error;
    EXPECT_FALSE(r.degraded);
    EXPECT_EQ(r.match_count, expected.count) << query.ToString();
    EXPECT_EQ(r.result_hash, expected.hash) << query.ToString();

    // Punishing memory budget: the disk-mode downgrade must still be exact.
    RunOptions tight;
    tight.algorithm = algorithm;
    tight.memory_budget_bytes = 256;
    RunResult t = engine.Execute(query, views, tight);
    if (t.ok) {
      EXPECT_EQ(t.match_count, expected.count) << query.ToString();
      EXPECT_EQ(t.result_hash, expected.hash) << query.ToString();
    } else {
      EXPECT_NE(t.error.find("RESOURCE_EXHAUSTED"), std::string::npos)
          << t.error;
    }

    // Punishing both budgets: same contract, exhaustion is typed.
    RunOptions starved = tight;
    starved.disk_budget_bytes = storage::Pager::kPageSize;
    RunResult s = engine.Execute(query, views, starved);
    if (s.ok) {
      EXPECT_EQ(s.result_hash, expected.hash) << query.ToString();
    } else {
      EXPECT_NE(s.error.find("RESOURCE_EXHAUSTED"), std::string::npos)
          << s.error;
    }
    EXPECT_EQ(engine.catalog()->pool()->pinned_frames(), 0u);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, GovernedStressTest, ::testing::Range(0, 30));

}  // namespace
}  // namespace viewjoin
