// End-to-end tests mirroring the paper's running example (Figures 1-4):
// a document with recursive nesting, the query Q = //a[//f]//b[//c]//d//e,
// and the covering views v1 = //a[//e]//f, v2 = //b[//c]//d. They pin down
// the materialized DAG structure (child/descendant/following pointers), the
// view-segmented query, and the complete ViewJoin pipeline against the
// oracle on this exact shape.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "algo/query_binding.h"
#include "core/engine.h"
#include "core/segmented_query.h"
#include "core/view_join.h"
#include "storage/materialized_view.h"
#include "tests/test_util.h"
#include "tpq/evaluator.h"

namespace viewjoin {
namespace {

using algo::QueryBinding;
using core::BuildSegmentedQuery;
using core::SegmentedQuery;
using storage::EntryIndex;
using storage::kNullEntry;
using storage::ListCursor;
using storage::MaterializedView;
using storage::Scheme;
using storage::ViewCatalog;
using testing::MakeDoc;
using testing::MustParse;
using tpq::Match;
using tpq::TreePattern;

std::string TempPath(const char* name) {
  return std::string(::testing::TempDir()) + name;
}

/// A document in the spirit of the paper's Fig. 1(a): recursive a-nesting,
/// interleaved e/f occurrences, and b//c/d twigs at varying depths.
class PaperExampleTest : public ::testing::Test {
 protected:
  PaperExampleTest()
      : doc_(MakeDoc("r("
                     "  a( e b(c d(e)) )"           // a1: no f => non-solution
                     "  a( f b(c d(e e)) "          // a2: full match
                     "     a( b(x(c) d(e)) f ) )"   // a3 nested in a2
                     "  f(b(c d(e)))"               // twig without a-ancestor
                     ")")),
        catalog_(TempPath("paper_ex.db"), 64),
        query_(MustParse("//a[//f]//b[//c]//d//e")) {}

  std::vector<const MaterializedView*> Materialize(Scheme scheme) {
    return {catalog_.Materialize(doc_, MustParse("//a[//e]//f"), scheme),
            catalog_.Materialize(doc_, MustParse("//b[//c]//d"), scheme)};
  }

  xml::Document doc_;
  ViewCatalog catalog_;
  TreePattern query_;
};

TEST_F(PaperExampleTest, MaterializedViewHoldsOnlySolutionNodes) {
  std::vector<const MaterializedView*> views = Materialize(Scheme::kElement);
  // v1 = //a[//e]//f: a1 has an e but no f; the standalone twig has no a.
  // Solutions: a2 and a3 (both contain e and f descendants).
  EXPECT_EQ(views[0]->ListLength(0), 2u);   // a-list: a2, a3
  // e-list: every e below a2/a3 qualifies.
  EXPECT_GT(views[0]->ListLength(1), 0u);
  EXPECT_EQ(views[0]->ListLength(2), 2u);   // f-list: the two f's under a2
  // v2 = //b[//c]//d: four full b-c-d twigs (one outside any a — views are
  // materialized independently of the query).
  EXPECT_EQ(views[1]->ListLength(0), 4u);
}

TEST_F(PaperExampleTest, DagPointersFollowTheConstruction) {
  std::vector<const MaterializedView*> views =
      Materialize(Scheme::kLinkedElement);
  const MaterializedView* v1 = views[0];
  ListCursor a_cursor(&v1->list(0), catalog_.pool());
  // a2 (entry 0) nests a3 (entry 1): descendant pointer 0 -> 1, and a2 has
  // no following same-type solution, so its following pointer is null.
  a_cursor.Seek(0);
  EXPECT_EQ(a_cursor.Descendant(), 1u);
  EXPECT_EQ(a_cursor.Following(), kNullEntry);
  a_cursor.Seek(1);
  EXPECT_EQ(a_cursor.Descendant(), kNullEntry);
  EXPECT_EQ(a_cursor.Following(), kNullEntry);
  // Child pointers of a2: slot 0 = first e under a2, slot 1 = first f.
  a_cursor.Seek(0);
  EntryIndex e_target = a_cursor.Child(0);
  EntryIndex f_target = a_cursor.Child(1);
  ListCursor e_cursor(&v1->list(1), catalog_.pool());
  ListCursor f_cursor(&v1->list(2), catalog_.pool());
  e_cursor.Seek(e_target);
  f_cursor.Seek(f_target);
  a_cursor.Seek(0);
  EXPECT_TRUE(xml::IsAncestor(a_cursor.LabelAt(), e_cursor.LabelAt()));
  EXPECT_TRUE(xml::IsAncestor(a_cursor.LabelAt(), f_cursor.LabelAt()));
  EXPECT_EQ(f_target, 0u);  // first f in document order
}

TEST_F(PaperExampleTest, SegmentationMatchesFig3) {
  std::vector<const MaterializedView*> views =
      Materialize(Scheme::kLinkedElement);
  auto binding = QueryBinding::Bind(doc_, query_, views);
  ASSERT_TRUE(binding.has_value());
  SegmentedQuery sq = BuildSegmentedQuery(*binding);
  // Q edges: (a,f) intra-v1, (a,b) inter, (b,c) intra-v2, (b,d) intra-v2,
  // (d,e) inter. Fig. 3 analogue: segments {a} {b d} {e}; f and c removed.
  EXPECT_EQ(sq.inter_view_edges, 2);
  EXPECT_EQ(sq.ToString(query_), "{a} {b d} {e}");
  ASSERT_EQ(sq.removed.size(), 2u);
  EXPECT_EQ(query_.node(sq.removed[0]).tag, "f");
  EXPECT_EQ(query_.node(sq.removed[1]).tag, "c");
  // f anchors at a (its view parent), c at b.
  EXPECT_EQ(query_.node(sq.removed_anchor[0]).tag, "a");
  EXPECT_EQ(query_.node(sq.removed_anchor[1]).tag, "b");
}

TEST_F(PaperExampleTest, ViewJoinMatchesOracleOnEveryScheme) {
  std::vector<Match> expected = tpq::NaiveEvaluator(doc_, query_).Collect();
  tpq::SortMatches(&expected);
  ASSERT_FALSE(expected.empty());
  for (Scheme scheme : {Scheme::kElement, Scheme::kLinkedElement,
                        Scheme::kLinkedElementPartial}) {
    std::vector<const MaterializedView*> views = Materialize(scheme);
    auto binding = QueryBinding::Bind(doc_, query_, views);
    ASSERT_TRUE(binding.has_value());
    SegmentedQuery sq = BuildSegmentedQuery(*binding);
    core::ViewJoin join(&*binding, &sq, catalog_.pool());
    tpq::CollectingSink sink;
    join.Evaluate(&sink);
    std::vector<Match> actual = sink.matches();
    tpq::SortMatches(&actual);
    EXPECT_EQ(actual, expected) << SchemeName(scheme);
  }
}

TEST_F(PaperExampleTest, SkippingStatsAreExposed) {
  std::vector<const MaterializedView*> views =
      Materialize(Scheme::kLinkedElement);
  auto binding = QueryBinding::Bind(doc_, query_, views);
  ASSERT_TRUE(binding.has_value());
  SegmentedQuery sq = BuildSegmentedQuery(*binding);
  core::ViewJoin join(&*binding, &sq, catalog_.pool());
  tpq::CountingSink sink;
  join.Evaluate(&sink);
  // Every list entry is either examined or skipped; nothing is unaccounted.
  uint64_t total_entries = 0;
  for (const MaterializedView* v : views) {
    for (size_t q = 0; q < v->pattern().size(); ++q) {
      total_entries += v->ListLength(static_cast<int>(q));
    }
  }
  const algo::HolisticStats& stats = join.stats();
  EXPECT_LE(stats.candidates, total_entries);
  EXPECT_GT(stats.entries_scanned, 0u);
}

TEST_F(PaperExampleTest, ResultStoredAsViewAnswersTheQueryAgain) {
  xml::Document doc = MakeDoc("r("
                              "  a( e b(c d(e)) )"
                              "  a( f b(c d(e e)) a( b(x(c) d(e)) f ) )"
                              "  f(b(c d(e)))"
                              ")");
  core::Engine engine(&doc, TempPath("paper_ex_engine.db"));
  auto* v1 = engine.AddView("//a[//e]//f", Scheme::kLinkedElement);
  auto* v2 = engine.AddView("//b[//c]//d", Scheme::kLinkedElement);
  const MaterializedView* stored = nullptr;
  core::RunResult first =
      engine.ExecuteToView(query_, {v1, v2}, Scheme::kLinkedElement, &stored);
  ASSERT_TRUE(first.ok) << first.error;
  ASSERT_NE(stored, nullptr);
  // The stored view is a covering view of the query by itself; answering
  // from it must reproduce the exact same match set.
  core::RunResult second = engine.Execute(query_, {stored});
  ASSERT_TRUE(second.ok) << second.error;
  EXPECT_EQ(second.match_count, first.match_count);
  EXPECT_EQ(second.result_hash, first.result_hash);
  // The stored lists are exactly the distinct solution nodes.
  tpq::NaiveEvaluator oracle(doc, query_);
  std::vector<std::vector<xml::NodeId>> lists = oracle.SolutionNodes();
  for (size_t q = 0; q < query_.size(); ++q) {
    EXPECT_EQ(stored->ListLength(static_cast<int>(q)), lists[q].size());
  }
}

}  // namespace
}  // namespace viewjoin
