#ifndef VIEWJOIN_TESTS_TEST_UTIL_H_
#define VIEWJOIN_TESTS_TEST_UTIL_H_

#include <optional>
#include <string>
#include <vector>

#include "tpq/pattern.h"
#include "util/check.h"
#include "util/rng.h"
#include "xml/document.h"

namespace viewjoin::testing {

/// Builds a document from a compact spec: "a(b(c)d)" is an `a` root with
/// children `b` (containing `c`) and `d`. Whitespace is ignored.
xml::Document MakeDoc(const std::string& spec);

/// Parses an XPath or dies (test convenience).
tpq::TreePattern MustParse(const std::string& xpath);

/// Completely independent brute-force TPQ evaluator (O(n^|Q|) candidate
/// product with full verification) used to validate the NaiveEvaluator
/// oracle itself on small documents.
std::vector<tpq::Match> BruteForceMatches(const xml::Document& doc,
                                          const tpq::TreePattern& query);

/// Random element tree over `tags` with recursive same-tag nesting allowed —
/// the structure that stresses stacks and pointer skipping.
xml::Document RandomDoc(util::Rng* rng, int node_budget,
                        const std::vector<std::string>& tags, int max_fanout = 4);

/// Random TPQ over a subset of `tags` (each tag used at most once), with
/// random pc/ad edges and branching.
tpq::TreePattern RandomQuery(util::Rng* rng, int num_nodes,
                             const std::vector<std::string>& tags);

/// Random partition of `query`'s nodes into covering, type-disjoint views.
/// Each view is the subpattern induced by a node group: a group node's view
/// parent is its nearest group ancestor (pc edges survive only when the
/// query edge itself is in the group).
std::vector<tpq::TreePattern> RandomViewPartition(util::Rng* rng,
                                                  const tpq::TreePattern& query,
                                                  int max_views);

}  // namespace viewjoin::testing

#endif  // VIEWJOIN_TESTS_TEST_UTIL_H_
