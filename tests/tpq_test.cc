#include <gtest/gtest.h>

#include <set>

#include "tests/test_util.h"
#include "tpq/evaluator.h"
#include "tpq/pattern.h"
#include "tpq/subpattern.h"
#include "util/rng.h"

namespace viewjoin {
namespace {

using testing::BruteForceMatches;
using testing::MakeDoc;
using testing::MustParse;
using tpq::Axis;
using tpq::Match;
using tpq::TreePattern;

TEST(PatternParseTest, SimplePath) {
  TreePattern q = MustParse("//a//b/c");
  ASSERT_EQ(q.size(), 3u);
  EXPECT_EQ(q.node(0).tag, "a");
  EXPECT_EQ(q.node(0).incoming, Axis::kDescendant);
  EXPECT_EQ(q.node(1).parent, 0);
  EXPECT_EQ(q.node(1).incoming, Axis::kDescendant);
  EXPECT_EQ(q.node(2).parent, 1);
  EXPECT_EQ(q.node(2).incoming, Axis::kChild);
  EXPECT_TRUE(q.IsPath());
}

TEST(PatternParseTest, PredicatesAndBareChildSteps) {
  // N6 from the paper.
  TreePattern q = MustParse("//journal[//suffix][title]/date/year");
  ASSERT_EQ(q.size(), 5u);
  EXPECT_EQ(q.node(0).tag, "journal");
  int suffix = q.FindByTag("suffix");
  int title = q.FindByTag("title");
  int date = q.FindByTag("date");
  int year = q.FindByTag("year");
  EXPECT_EQ(q.node(suffix).parent, 0);
  EXPECT_EQ(q.node(suffix).incoming, Axis::kDescendant);
  EXPECT_EQ(q.node(title).parent, 0);
  EXPECT_EQ(q.node(title).incoming, Axis::kChild);
  EXPECT_EQ(q.node(date).parent, 0);
  EXPECT_EQ(q.node(date).incoming, Axis::kChild);
  EXPECT_EQ(q.node(year).parent, date);
  EXPECT_FALSE(q.IsPath());
}

TEST(PatternParseTest, NestedPredicates) {
  TreePattern q = MustParse("//a[//b[//c]/d]//e");
  ASSERT_EQ(q.size(), 5u);
  int b = q.FindByTag("b");
  int c = q.FindByTag("c");
  int d = q.FindByTag("d");
  int e = q.FindByTag("e");
  EXPECT_EQ(q.node(b).parent, 0);
  EXPECT_EQ(q.node(c).parent, b);
  EXPECT_EQ(q.node(d).parent, b);
  EXPECT_EQ(q.node(d).incoming, Axis::kChild);
  EXPECT_EQ(q.node(e).parent, 0);
}

TEST(PatternParseTest, RejectsMalformed) {
  std::string error;
  EXPECT_FALSE(TreePattern::Parse("", &error).has_value());
  EXPECT_FALSE(TreePattern::Parse("a//b", &error).has_value());
  EXPECT_FALSE(TreePattern::Parse("//a[", &error).has_value());
  EXPECT_FALSE(TreePattern::Parse("//a[]", &error).has_value());
  EXPECT_FALSE(TreePattern::Parse("//a]b", &error).has_value());
  EXPECT_FALSE(TreePattern::Parse("///a", &error).has_value());
  EXPECT_FALSE(TreePattern::Parse("//a[//b]extra", &error).has_value());
}

TEST(PatternParseTest, ToStringRoundTrips) {
  for (const char* xpath :
       {"//a", "//a//b/c", "//a[//b/d]//e", "//journal[//suffix][/title]/date",
        "//dataset//tableHead[//tableLink//title]//field//definition//para"}) {
    TreePattern q = MustParse(xpath);
    TreePattern q2 = MustParse(q.ToString());
    EXPECT_EQ(q.ToString(), q2.ToString()) << xpath;
    EXPECT_EQ(q.size(), q2.size());
  }
}

TEST(PatternTest, UniqueTags) {
  EXPECT_TRUE(MustParse("//a//b[//c]").HasUniqueTags());
  EXPECT_FALSE(MustParse("//a//b//a").HasUniqueTags());
}

TEST(EvaluatorTest, SingleNode) {
  xml::Document doc = MakeDoc("a(b b(b))");
  tpq::NaiveEvaluator eval(doc, MustParse("//b"));
  EXPECT_EQ(eval.Count(), 3u);
}

TEST(EvaluatorTest, AdPath) {
  // a(b(c) b) — //a//b//c has exactly one match.
  xml::Document doc = MakeDoc("a(b(c) b)");
  tpq::NaiveEvaluator eval(doc, MustParse("//a//b//c"));
  std::vector<Match> matches = eval.Collect();
  ASSERT_EQ(matches.size(), 1u);
  EXPECT_EQ(matches[0], (Match{0, 1, 2}));
}

TEST(EvaluatorTest, PcVersusAd) {
  // c is a grandchild of a via x.
  xml::Document doc = MakeDoc("a(x(c))");
  EXPECT_EQ(tpq::NaiveEvaluator(doc, MustParse("//a//c")).Count(), 1u);
  EXPECT_EQ(tpq::NaiveEvaluator(doc, MustParse("//a/c")).Count(), 0u);
  EXPECT_EQ(tpq::NaiveEvaluator(doc, MustParse("//a/x/c")).Count(), 1u);
}

TEST(EvaluatorTest, RecursiveNestingMultiplicity) {
  // a(a(b)) — //a//b matches twice (both a's).
  xml::Document doc = MakeDoc("a(a(b))");
  EXPECT_EQ(tpq::NaiveEvaluator(doc, MustParse("//a//b")).Count(), 2u);
}

TEST(EvaluatorTest, AbsoluteRootStep) {
  xml::Document doc = MakeDoc("a(a(b))");
  // '/a//b' anchors at the document root: only the outer a qualifies.
  EXPECT_EQ(tpq::NaiveEvaluator(doc, MustParse("/a//b")).Count(), 1u);
}

TEST(EvaluatorTest, MissingTagYieldsEmpty) {
  xml::Document doc = MakeDoc("a(b)");
  EXPECT_EQ(tpq::NaiveEvaluator(doc, MustParse("//a//zzz")).Count(), 0u);
  EXPECT_TRUE(tpq::NaiveEvaluator(doc, MustParse("//zzz")).Collect().empty());
}

TEST(EvaluatorTest, TwigSemantics) {
  xml::Document doc = MakeDoc("a(b(c d) b(c) e)");
  // //a[//b//c]... every (a,b,c,e) embedding.
  tpq::NaiveEvaluator eval(doc, MustParse("//a[//b//c]//e"));
  EXPECT_EQ(eval.Count(), 2u);  // two b's with c, one e
}

TEST(EvaluatorTest, SolutionNodesAreExactlyMatchParticipants) {
  xml::Document doc = MakeDoc("a(b(c) b d(b(c)))");
  TreePattern q = MustParse("//a//b//c");
  tpq::NaiveEvaluator eval(doc, q);
  std::vector<std::vector<xml::NodeId>> lists = eval.SolutionNodes();
  std::vector<Match> matches = eval.Collect();
  for (size_t qn = 0; qn < q.size(); ++qn) {
    std::set<xml::NodeId> from_matches;
    for (const Match& m : matches) from_matches.insert(m[qn]);
    std::set<xml::NodeId> from_lists(lists[qn].begin(), lists[qn].end());
    EXPECT_EQ(from_matches, from_lists) << "node " << qn;
  }
}

TEST(EvaluatorTest, AgreesWithBruteForceOnRandomInputs) {
  std::vector<std::string> tags = {"a", "b", "c", "d", "e"};
  util::Rng rng(2024);
  for (int trial = 0; trial < 60; ++trial) {
    xml::Document doc = testing::RandomDoc(&rng, 40, tags);
    TreePattern query = testing::RandomQuery(
        &rng, 1 + static_cast<int>(rng.Uniform(4)), tags);
    std::vector<Match> expected = BruteForceMatches(doc, query);
    std::vector<Match> actual = tpq::NaiveEvaluator(doc, query).Collect();
    tpq::SortMatches(&actual);
    EXPECT_EQ(expected, actual) << "trial " << trial << " query "
                                << query.ToString();
  }
}

TEST(SubpatternTest, TypeAndEdgePreservation) {
  TreePattern q = MustParse("//a//b[/c]//d");
  EXPECT_TRUE(IsSubpattern(MustParse("//a//b"), q));
  EXPECT_TRUE(IsSubpattern(MustParse("//a//d"), q));   // via path a-b-d
  EXPECT_TRUE(IsSubpattern(MustParse("//b/c"), q));    // pc preserved
  EXPECT_TRUE(IsSubpattern(MustParse("//b//c"), q));   // ad weaker than pc? no:
  // ad-edge maps to ancestor-descendant, and b is c's ancestor — allowed.
  EXPECT_FALSE(IsSubpattern(MustParse("//a/b"), q));   // pc does not hold in q
  EXPECT_FALSE(IsSubpattern(MustParse("//d//a"), q));  // wrong direction
  EXPECT_FALSE(IsSubpattern(MustParse("//a//x"), q));  // missing type
}

TEST(SubpatternTest, ConnectedSubpattern) {
  TreePattern q = MustParse("//a//b[/c]//d");
  EXPECT_TRUE(IsConnectedSubpattern(MustParse("//a//b"), q));
  EXPECT_TRUE(IsConnectedSubpattern(MustParse("//b/c"), q));
  EXPECT_TRUE(IsConnectedSubpattern(MustParse("//b//c"), q));
  // a-d is not a direct edge of q.
  EXPECT_FALSE(IsConnectedSubpattern(MustParse("//a//d"), q));
  EXPECT_TRUE(IsSubpattern(MustParse("//a//d"), q));
}

TEST(CoveringTest, CoveringAndMinimality) {
  TreePattern q = MustParse("//a//b[//c/d]//e");
  std::vector<TreePattern> covering = {MustParse("//a"),
                                       MustParse("//b[//c/d]"),
                                       MustParse("//e")};
  EXPECT_TRUE(IsCoveringSet(q, covering));
  EXPECT_TRUE(IsMinimalCoveringSet(q, covering));

  std::vector<TreePattern> redundant = covering;
  redundant.push_back(MustParse("//c/d"));
  EXPECT_TRUE(IsCoveringSet(q, redundant));
  // {//a, //b[//c/d], //e} still covers without //c/d → not minimal...
  // and also //c/d overlaps; AnalyzeCovering reports the overlap.
  EXPECT_FALSE(IsMinimalCoveringSet(q, redundant));
  EXPECT_TRUE(tpq::AnalyzeCovering(q, redundant).overlapping);

  std::vector<TreePattern> incomplete = {MustParse("//a"), MustParse("//e")};
  EXPECT_FALSE(IsCoveringSet(q, incomplete));
}

TEST(CoveringTest, NonSubpatternViewIsUnusable) {
  TreePattern q = MustParse("//a//b");
  // //b//a is not a subpattern (wrong direction): cannot cover anything.
  std::vector<TreePattern> views = {MustParse("//b//a")};
  tpq::CoveringInfo info = tpq::AnalyzeCovering(q, views);
  EXPECT_FALSE(info.covers);
  EXPECT_FALSE(info.mappings[0].has_value());
}

TEST(MatchSinkTest, HashingSinkIsOrderIndependent) {
  tpq::HashingSink h1, h2;
  Match a{1, 2, 3};
  Match b{4, 5, 6};
  h1.OnMatch(a);
  h1.OnMatch(b);
  h2.OnMatch(b);
  h2.OnMatch(a);
  EXPECT_EQ(h1.hash(), h2.hash());
  EXPECT_EQ(h1.count(), 2u);
  tpq::HashingSink h3;
  h3.OnMatch(a);
  EXPECT_NE(h1.hash(), h3.hash());
}

}  // namespace
}  // namespace viewjoin
