// Crash safety of the view store. The crash matrix simulates kill -9 at
// every instant of the shadow-materialization install protocol (shadow
// written / shadow sealed / data synced / journal record torn), reopens the
// store, and asserts recovery leaves exactly the committed catalog: no
// orphan shadow files, no uncommitted pages, identical query answers, and
// the interrupted view re-queued for rebuilding. Around the matrix: manifest
// journal torn-tail vs. bit-rot handling, legacy manifest conversion, the
// integrity scrubber (detect + heal, alone and under concurrent batch
// queries), close-time flush surfacing, and the offline fsck/repair pipeline.

#include <dirent.h>
#include <gtest/gtest.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "algo/query_binding.h"
#include "algo/twig_stack.h"
#include "core/engine.h"
#include "storage/fsck.h"
#include "storage/manifest.h"
#include "storage/materialized_view.h"
#include "storage/pager.h"
#include "storage/scrubber.h"
#include "tests/test_util.h"
#include "tpq/evaluator.h"
#include "util/check.h"
#include "util/fault_injection.h"
#include "util/status.h"

namespace viewjoin {
namespace {

using core::Engine;
using storage::FsckCatalog;
using storage::FsckCatalogReport;
using storage::ManifestJournal;
using storage::MaterializedView;
using storage::Pager;
using storage::RecoveryReport;
using storage::RepairCatalog;
using storage::Scheme;
using storage::Scrubber;
using storage::ViewCatalog;
using testing::MakeDoc;
using testing::MustParse;
using tpq::TreePattern;
using util::CrashPoint;
using util::CrashPointName;
using util::ScopedFaultInjection;
using util::StatusCode;
using util::WriteFault;

std::string TempPath(const std::string& name) {
  return std::string(::testing::TempDir()) + name;
}

/// Removes the store's files plus any shadow leftovers a previous (failed)
/// test run may have parked in the shared temp directory.
void CleanupStore(const std::string& path) {
  std::remove(path.c_str());
  std::remove((path + ".manifest").c_str());
  std::remove((path + ".manifest.tmp").c_str());
  std::string dir = ".";
  std::string base = path;
  size_t slash = path.rfind('/');
  if (slash != std::string::npos) {
    dir = path.substr(0, slash);
    base = path.substr(slash + 1);
  }
  DIR* d = ::opendir(dir.c_str());
  if (d == nullptr) return;
  const std::string prefix = base + ".shadow.";
  while (struct dirent* entry = ::readdir(d)) {
    std::string name = entry->d_name;
    if (name.rfind(prefix, 0) == 0) std::remove((dir + "/" + name).c_str());
  }
  ::closedir(d);
}

int CountShadowFiles(const std::string& path) {
  std::string dir = ".";
  std::string base = path;
  size_t slash = path.rfind('/');
  if (slash != std::string::npos) {
    dir = path.substr(0, slash);
    base = path.substr(slash + 1);
  }
  int count = 0;
  DIR* d = ::opendir(dir.c_str());
  if (d == nullptr) return 0;
  const std::string prefix = base + ".shadow.";
  while (struct dirent* entry = ::readdir(d)) {
    if (std::string(entry->d_name).rfind(prefix, 0) == 0) ++count;
  }
  ::closedir(d);
  return count;
}

/// Fingerprints the answer of `query` evaluated over `views` in `catalog`.
uint64_t QueryHash(const xml::Document& doc, ViewCatalog* catalog,
                   const TreePattern& query,
                   const std::vector<const MaterializedView*>& views) {
  auto binding = algo::QueryBinding::Bind(doc, query, views);
  VJ_CHECK(binding.has_value());
  algo::TwigStack ts(&*binding, catalog->pool());
  tpq::HashingSink sink;
  ts.Evaluate(&sink);
  return sink.hash();
}

xml::Document CrashDoc() {
  return MakeDoc("r(a(b(c) a(b(c c)) b) a(x(b(c))) b(c))");
}

// ---- Crash matrix ----------------------------------------------------------

struct CrashCase {
  CrashPoint point;
  Scheme scheme;
};

std::string CrashCaseName(const ::testing::TestParamInfo<CrashCase>& info) {
  std::string point = CrashPointName(info.param.point);
  for (char& c : point) {
    if (c == '-') c = '_';
  }
  return point + "_" + storage::SchemeName(info.param.scheme);
}

class CrashMatrixTest : public ::testing::TestWithParam<CrashCase> {};

TEST_P(CrashMatrixTest, ReopenAfterCrashMatchesCleanRun) {
  const CrashCase param = GetParam();
  xml::Document doc = CrashDoc();
  const TreePattern base_query = MustParse("//c");
  const std::string target = "//a//b";

  // Reference run, no faults: the target view's metadata and the base
  // query's answer over a store where both installs committed.
  const std::string clean_path =
      TempPath(std::string("crash_clean_") + CrashCaseName({param, 0}) + ".db");
  CleanupStore(clean_path);
  uint64_t ref_match = 0, ref_size = 0, ref_hash = 0;
  {
    ViewCatalog clean(clean_path, 64, /*persistent=*/true);
    const MaterializedView* base =
        clean.Materialize(doc, base_query, Scheme::kLinkedElement);
    const MaterializedView* built =
        clean.Materialize(doc, MustParse(target), param.scheme);
    ref_match = built->MatchCount();
    ref_size = built->SizeBytes();
    ref_hash = QueryHash(doc, &clean, base_query, {base});
  }

  const std::string path =
      TempPath(std::string("crash_") + CrashCaseName({param, 0}) + ".db");
  CleanupStore(path);

  // The victim store: one committed view, then a crash mid-way through
  // installing the second. kCrashMidJournal arms the *second* journal append
  // (the install commit record) — tearing the Begin instead would roll the
  // whole operation back before it left any trace.
  {
    ViewCatalog victim(path, 64, /*persistent=*/true);
    victim.Materialize(doc, base_query, Scheme::kLinkedElement);
    ScopedFaultInjection fi;
    fi->ArmCrashPoint(param.point,
                      param.point == CrashPoint::kCrashMidJournal ? 2 : 1);
    auto failed = victim.TryMaterialize(doc, MustParse(target), param.scheme);
    ASSERT_FALSE(failed.ok()) << CrashPointName(param.point);
    EXPECT_NE(failed.status().message().find("injected crash"),
              std::string::npos)
        << failed.status().ToString();
    EXPECT_EQ(fi->injected_crashes(), 1u);
    // The catalog object goes out of scope with the on-disk mid-flight state
    // a real crash would leave; recovery gets no help from this process.
  }

  // Reopen: recovery rolls the store back to the last committed state.
  auto reopened = ViewCatalog::Open(path, 64);
  ASSERT_TRUE(reopened.ok()) << CrashPointName(param.point) << ": "
                             << reopened.status().ToString();
  ViewCatalog& catalog = **reopened;

  EXPECT_EQ(CountShadowFiles(path), 0) << CrashPointName(param.point);
  const RecoveryReport& recovery = catalog.recovery_report();
  ASSERT_EQ(recovery.pending_rebuild.size(), 1u) << CrashPointName(param.point);
  EXPECT_EQ(recovery.pending_rebuild[0].first, target);
  EXPECT_EQ(recovery.pending_rebuild[0].second, param.scheme);
  if (param.point == CrashPoint::kCrashAfterDataSync) {
    // Data reached the file but the commit record did not: the uncommitted
    // pages are rolled back, not adopted.
    EXPECT_GT(recovery.orphan_pages_truncated, 0u);
  }
  if (param.point == CrashPoint::kCrashAfterRename) {
    EXPECT_GT(recovery.orphan_shadows_removed, 0);  // the sealed shadow
  }

  // Only the committed view survived, and it still answers identically.
  ASSERT_EQ(catalog.views().size(), 1u) << CrashPointName(param.point);
  const MaterializedView* base = catalog.views()[0].get();
  EXPECT_EQ(base->pattern().ToString(), "//c");
  EXPECT_TRUE(catalog.VerifyView(base).ok());
  EXPECT_EQ(QueryHash(doc, &catalog, base_query, {base}), ref_hash);

  // Re-materializing the rolled-back view converges to the clean run.
  auto rebuilt = catalog.TryMaterialize(doc, MustParse(target), param.scheme);
  ASSERT_TRUE(rebuilt.ok()) << rebuilt.status().ToString();
  EXPECT_EQ((*rebuilt)->MatchCount(), ref_match);
  EXPECT_EQ((*rebuilt)->SizeBytes(), ref_size);
  EXPECT_TRUE(catalog.VerifyView(*rebuilt).ok());
  EXPECT_TRUE(catalog.Close().ok());

  // The rebuild itself committed: a second reopen sees both views.
  auto again = ViewCatalog::Open(path, 64);
  ASSERT_TRUE(again.ok()) << again.status().ToString();
  EXPECT_EQ((*again)->views().size(), 2u);
  EXPECT_TRUE((*again)->recovery_report().pending_rebuild.empty());
}

INSTANTIATE_TEST_SUITE_P(
    AllPointsAllSchemes, CrashMatrixTest,
    ::testing::Values(
        CrashCase{CrashPoint::kCrashBeforeRename, Scheme::kElement},
        CrashCase{CrashPoint::kCrashBeforeRename, Scheme::kLinkedElement},
        CrashCase{CrashPoint::kCrashBeforeRename,
                  Scheme::kLinkedElementPartial},
        CrashCase{CrashPoint::kCrashBeforeRename, Scheme::kTuple},
        CrashCase{CrashPoint::kCrashAfterRename, Scheme::kElement},
        CrashCase{CrashPoint::kCrashAfterRename, Scheme::kLinkedElement},
        CrashCase{CrashPoint::kCrashAfterRename, Scheme::kLinkedElementPartial},
        CrashCase{CrashPoint::kCrashAfterRename, Scheme::kTuple},
        CrashCase{CrashPoint::kCrashAfterDataSync, Scheme::kElement},
        CrashCase{CrashPoint::kCrashAfterDataSync, Scheme::kLinkedElement},
        CrashCase{CrashPoint::kCrashAfterDataSync,
                  Scheme::kLinkedElementPartial},
        CrashCase{CrashPoint::kCrashAfterDataSync, Scheme::kTuple},
        CrashCase{CrashPoint::kCrashMidJournal, Scheme::kElement},
        CrashCase{CrashPoint::kCrashMidJournal, Scheme::kLinkedElement},
        CrashCase{CrashPoint::kCrashMidJournal, Scheme::kLinkedElementPartial},
        CrashCase{CrashPoint::kCrashMidJournal, Scheme::kTuple}),
    CrashCaseName);

// ---- Manifest journal edge cases -------------------------------------------

TEST(ManifestJournalTest, TornTailIsRecoveredNotFatal) {
  xml::Document doc = CrashDoc();
  std::string path = TempPath("torn_tail.db");
  CleanupStore(path);
  {
    ViewCatalog catalog(path, 64, /*persistent=*/true);
    catalog.Materialize(doc, MustParse("//a//b"), Scheme::kLinkedElement);
    catalog.Materialize(doc, MustParse("//c"), Scheme::kElement);
  }
  // A crash mid-append: a length prefix promising more bytes than exist.
  {
    std::FILE* f = std::fopen((path + ".manifest").c_str(), "ab");
    ASSERT_NE(f, nullptr);
    const uint32_t length = 100;
    std::fwrite(&length, sizeof(length), 1, f);
    const uint8_t type = 2;
    std::fwrite(&type, 1, 1, f);
    std::fwrite("partial", 1, 7, f);
    std::fclose(f);
  }
  auto opened = ViewCatalog::Open(path, 64);
  ASSERT_TRUE(opened.ok()) << opened.status().ToString();
  EXPECT_TRUE((*opened)->recovery_report().journal_tail_truncated);
  EXPECT_EQ((*opened)->views().size(), 2u);
  EXPECT_TRUE((*opened)->recovery_report().pending_rebuild.empty());
  EXPECT_TRUE((*opened)->Close().ok());
  // The tail was truncated away on the first open: the second is clean.
  auto again = ViewCatalog::Open(path, 64);
  ASSERT_TRUE(again.ok()) << again.status().ToString();
  EXPECT_FALSE((*again)->recovery_report().journal_tail_truncated);
}

TEST(ManifestJournalTest, MidFileCorruptionIsFatal) {
  xml::Document doc = CrashDoc();
  std::string path = TempPath("journal_rot.db");
  CleanupStore(path);
  {
    ViewCatalog catalog(path, 64, /*persistent=*/true);
    catalog.Materialize(doc, MustParse("//a//b"), Scheme::kLinkedElement);
    catalog.Materialize(doc, MustParse("//c"), Scheme::kElement);
  }
  // Flip one byte inside the first record's payload (past the 16-byte
  // journal header and the record's own length/type prefix). A *complete*
  // record failing its CRC is bit rot, not a crash: replay must refuse.
  {
    std::FILE* f = std::fopen((path + ".manifest").c_str(), "r+b");
    ASSERT_NE(f, nullptr);
    ASSERT_EQ(std::fseek(f, 16 + 5 + 2, SEEK_SET), 0);
    int byte = std::fgetc(f);
    ASSERT_NE(byte, EOF);
    ASSERT_EQ(std::fseek(f, 16 + 5 + 2, SEEK_SET), 0);
    std::fputc(byte ^ 0x40, f);
    std::fclose(f);
  }
  auto opened = ViewCatalog::Open(path, 64);
  ASSERT_FALSE(opened.ok());
  EXPECT_EQ(opened.status().code(), StatusCode::kCorruption);
}

TEST(ManifestJournalTest, LegacyTextManifestIsConverted) {
  xml::Document doc = CrashDoc();
  std::string path = TempPath("legacy.db");
  CleanupStore(path);
  uint64_t match_count = 0, size_bytes = 0;
  std::string legacy_text;
  {
    ViewCatalog catalog(path, 64, /*persistent=*/true);
    const MaterializedView* view =
        catalog.Materialize(doc, MustParse("//a//b"), Scheme::kElement);
    match_count = view->MatchCount();
    size_bytes = view->SizeBytes();
    // Render the store's manifest the way the pre-journal code did, from the
    // live view's real stored-list coordinates.
    char buf[512];
    legacy_text = "VIEWJOINCAT 1 1\n";
    std::snprintf(buf, sizeof(buf), "V %d %s\n",
                  static_cast<int>(view->scheme()),
                  view->pattern().ToString().c_str());
    legacy_text += buf;
    std::snprintf(buf, sizeof(buf), "M %llu %llu %llu\nG",
                  static_cast<unsigned long long>(view->MatchCount()),
                  static_cast<unsigned long long>(view->SizeBytes()),
                  static_cast<unsigned long long>(view->PointerCount()));
    legacy_text += buf;
    for (size_t q = 0; q < view->pattern().size(); ++q) {
      std::snprintf(buf, sizeof(buf), " %u",
                    view->ListLength(static_cast<int>(q)));
      legacy_text += buf;
    }
    std::snprintf(buf, sizeof(buf), "\nL %zu\n", view->lists().size());
    legacy_text += buf;
    auto list_line = [&](const storage::StoredList& list) {
      std::snprintf(buf, sizeof(buf), "%u %u %u %u %u\n", list.first_page,
                    list.count, list.layout.label_count,
                    list.layout.has_pointers ? 1 : 0, list.layout.child_count);
      legacy_text += buf;
    };
    for (const storage::StoredList& list : view->lists()) list_line(list);
    list_line(view->tuple_list());
  }
  {
    std::FILE* f = std::fopen((path + ".manifest").c_str(), "w");
    ASSERT_NE(f, nullptr);
    std::fputs(legacy_text.c_str(), f);
    std::fclose(f);
  }
  auto opened = ViewCatalog::Open(path, 64);
  ASSERT_TRUE(opened.ok()) << opened.status().ToString();
  EXPECT_TRUE((*opened)->recovery_report().legacy_manifest_converted);
  ASSERT_EQ((*opened)->views().size(), 1u);
  const MaterializedView* view = (*opened)->views()[0].get();
  EXPECT_EQ(view->MatchCount(), match_count);
  EXPECT_EQ(view->SizeBytes(), size_bytes);
  EXPECT_TRUE((*opened)->VerifyView(view).ok());
  EXPECT_TRUE((*opened)->Close().ok());
  // The conversion rewrote the file in journal format: a second open takes
  // the binary path.
  auto again = ViewCatalog::Open(path, 64);
  ASSERT_TRUE(again.ok()) << again.status().ToString();
  EXPECT_FALSE((*again)->recovery_report().legacy_manifest_converted);
  EXPECT_EQ((*again)->views().size(), 1u);
}

TEST(ManifestJournalTest, CheckpointSurvivesHeaderShortWrite) {
  xml::Document doc = CrashDoc();
  std::string path = TempPath("ckpt_short.db");
  CleanupStore(path);
  ViewCatalog catalog(path, 64, /*persistent=*/true);
  catalog.Materialize(doc, MustParse("//a//b"), Scheme::kLinkedElement);
  {
    ScopedFaultInjection fi;
    fi->ArmHeaderWriteFault(WriteFault::kShortWrite, 1);
    util::Status checkpointed = catalog.Checkpoint();
    EXPECT_FALSE(checkpointed.ok());
  }
  // The failed checkpoint must not have replaced the live journal: the store
  // reopens with the view intact (and no stray checkpoint tmp file).
  EXPECT_TRUE(catalog.Close().ok());
  struct stat st;
  EXPECT_NE(::stat((path + ".manifest.tmp").c_str(), &st), 0);
  auto opened = ViewCatalog::Open(path, 64);
  ASSERT_TRUE(opened.ok()) << opened.status().ToString();
  EXPECT_EQ((*opened)->views().size(), 1u);
}

TEST(ManifestJournalTest, EpochResumesAcrossReopen) {
  xml::Document doc = CrashDoc();
  std::string path = TempPath("epoch_resume.db");
  CleanupStore(path);
  uint64_t epoch_before = 0;
  {
    ViewCatalog catalog(path, 64, /*persistent=*/true);
    catalog.Materialize(doc, MustParse("//a//b"), Scheme::kLinkedElement);
    catalog.Materialize(doc, MustParse("//c"), Scheme::kElement);
    epoch_before = catalog.epoch();
    EXPECT_GE(epoch_before, 2u);
  }
  auto opened = ViewCatalog::Open(path, 64);
  ASSERT_TRUE(opened.ok());
  // Plan-cache keys stay monotone across the restart: the epoch counter
  // resumes at (not below) the last journaled epoch, and new installs
  // advance it further.
  EXPECT_EQ((*opened)->epoch(), epoch_before);
  auto added =
      (*opened)->TryMaterialize(doc, MustParse("//b//c"), Scheme::kElement);
  ASSERT_TRUE(added.ok());
  EXPECT_GT((*opened)->epoch(), epoch_before);
  EXPECT_EQ((*added)->epoch(), (*opened)->epoch());
}

// ---- Close-time flush surfacing --------------------------------------------

TEST(CloseTest, FlushFailureSurfacesThroughCatalogClose) {
  xml::Document doc = CrashDoc();
  std::string path = TempPath("close_flush.db");
  CleanupStore(path);
  ViewCatalog catalog(path, 64, /*persistent=*/true);
  catalog.Materialize(doc, MustParse("//a//b"), Scheme::kLinkedElement);
  ScopedFaultInjection fi;
  fi->ArmFlushFault(1);
  util::Status closed = catalog.Close();
  ASSERT_FALSE(closed.ok());
  EXPECT_NE(closed.message().find("flush"), std::string::npos)
      << closed.ToString();
  // The verdict is latched, not swallowed: repeat closes and the pager's own
  // accessor keep reporting it.
  EXPECT_FALSE(catalog.Close().ok());
  EXPECT_FALSE(catalog.pager()->LastFlushStatus().ok());
}

// ---- Scrubber ---------------------------------------------------------------

TEST(ScrubberTest, DetectsQuarantinesAndHealsCorruptView) {
  xml::Document doc = CrashDoc();
  std::string path = TempPath("scrub_heal.db");
  Engine engine(&doc, path);
  const MaterializedView* ab =
      engine.AddView("//a//b", Scheme::kLinkedElement);
  const MaterializedView* c = engine.AddView("//c", Scheme::kLinkedElement);
  TreePattern query = MustParse("//a//b//c");
  core::RunResult clean = engine.Execute(query, {ab, c});
  ASSERT_TRUE(clean.ok) << clean.error;

  // Rot one of ab's pages behind the pool's back (checksum made stale by an
  // injected bit flip), then drop caches so nothing shields the disk state.
  {
    ScopedFaultInjection fi;
    fi->ArmWriteFault(WriteFault::kBitFlip, 1);
    std::vector<uint8_t> zeros(Pager::kPageSize, 0);
    ASSERT_TRUE(engine.catalog()
                    ->pager()
                    ->WritePage(ab->list(0).first_page, zeros.data())
                    .ok());
  }
  engine.catalog()->DropCaches();

  // One synchronous full pass: the scrubber (not a query) finds the rot,
  // quarantines the view and heals it through the engine's healer.
  uint32_t scanned = engine.scrubber()->Step(100000);
  EXPECT_GT(scanned, 0u);
  storage::ScrubStats stats = engine.scrubber()->stats();
  EXPECT_GE(stats.corrupt_pages, 1u);
  EXPECT_EQ(stats.views_quarantined, 1u);
  EXPECT_EQ(stats.views_healed, 1u);
  EXPECT_EQ(stats.heal_failures, 0u);
  EXPECT_TRUE(engine.catalog()->IsQuarantined(ab));
  ASSERT_NE(engine.catalog()->ReplacementFor(ab), nullptr);

  // Queries arriving after the proactive heal never see the bad pages: the
  // planner redirects to the replacement and the run is NOT degraded.
  core::RunResult result = engine.Execute(query, {ab, c});
  ASSERT_TRUE(result.ok) << result.error;
  EXPECT_EQ(result.result_hash, clean.result_hash);
  EXPECT_EQ(result.match_count, clean.match_count);
  EXPECT_FALSE(result.degraded);
  EXPECT_TRUE(result.quarantined_views.empty());
  // Scrub counters ride along in the result for --explain.
  EXPECT_EQ(result.scrub.views_healed, 1u);
  EXPECT_GE(result.scrub.pages_scanned, static_cast<uint64_t>(scanned));
}

TEST(ScrubberTest, StepResumesAcrossBudgetedCalls) {
  xml::Document doc = CrashDoc();
  std::string path = TempPath("scrub_budget.db");
  Engine engine(&doc, path);
  engine.AddView("//a//b", Scheme::kLinkedElement);
  engine.AddView("//c", Scheme::kLinkedElement);
  engine.AddView("//a//b//c", Scheme::kTuple);

  // Tiny budget: many steps per pass, with the cursor carrying across calls.
  uint64_t passes_before = engine.scrubber()->stats().full_passes;
  uint32_t total = 0;
  for (int i = 0; i < 1000 && engine.scrubber()->stats().full_passes ==
                                  passes_before;
       ++i) {
    total += engine.scrubber()->Step(1);
  }
  EXPECT_GT(total, 0u);
  EXPECT_EQ(engine.scrubber()->stats().full_passes, passes_before + 1);
  EXPECT_EQ(engine.scrubber()->stats().corrupt_pages, 0u);
}

TEST(ScrubberTest, BackgroundScrubWithConcurrentBatchQueries) {
  xml::Document doc = CrashDoc();
  std::string path = TempPath("scrub_batch.db");
  core::EngineOptions options;
  Engine engine(&doc, path, options);
  const MaterializedView* ab =
      engine.AddView("//a//b", Scheme::kLinkedElement);
  const MaterializedView* c = engine.AddView("//c", Scheme::kLinkedElement);
  TreePattern query = MustParse("//a//b//c");
  core::RunResult clean = engine.Execute(query, {ab, c});
  ASSERT_TRUE(clean.ok);

  // A fast background scrubber races real batch traffic over healthy views:
  // every query must stay clean and bit-identical (this is the tsan target
  // for scrubber-vs-query interleavings).
  engine.scrubber()->Start(std::chrono::milliseconds(1), 16);
  EXPECT_TRUE(engine.scrubber()->running());
  for (int round = 0; round < 5; ++round) {
    std::vector<core::BatchQuery> batch(8);
    for (core::BatchQuery& q : batch) {
      q.query = &query;
      q.views = {ab, c};
    }
    core::BatchOptions batch_options;
    batch_options.threads = 4;
    std::vector<core::RunResult> results =
        engine.ExecuteBatch(batch, batch_options);
    for (const core::RunResult& r : results) {
      ASSERT_TRUE(r.ok) << r.error;
      EXPECT_EQ(r.result_hash, clean.result_hash);
    }
  }
  engine.scrubber()->Stop();
  EXPECT_FALSE(engine.scrubber()->running());
  EXPECT_EQ(engine.scrubber()->stats().views_quarantined, 0u);
}

// ---- fsck / repair ----------------------------------------------------------

TEST(FsckCatalogTest, CleanStoreReportsClean) {
  xml::Document doc = CrashDoc();
  std::string path = TempPath("fsck_clean.db");
  CleanupStore(path);
  {
    ViewCatalog catalog(path, 64, /*persistent=*/true);
    catalog.Materialize(doc, MustParse("//a//b"), Scheme::kLinkedElement);
    catalog.Materialize(doc, MustParse("//c"), Scheme::kElement);
  }
  FsckCatalogReport report = FsckCatalog(path);
  EXPECT_TRUE(report.clean()) << report.manifest_status.ToString();
  EXPECT_FALSE(report.corrupt());
  EXPECT_FALSE(report.repair_needed());
  EXPECT_EQ(report.view_count, 2u);
  EXPECT_EQ(report.quarantined_count, 0u);
  EXPECT_GE(report.last_epoch, 2u);
  EXPECT_GT(report.durable_page_count, 0u);
}

TEST(FsckCatalogTest, CrashArtifactsAreFlaggedAndRepaired) {
  xml::Document doc = CrashDoc();
  std::string path = TempPath("fsck_repair.db");
  CleanupStore(path);
  {
    ViewCatalog catalog(path, 64, /*persistent=*/true);
    catalog.Materialize(doc, MustParse("//c"), Scheme::kLinkedElement);
    ScopedFaultInjection fi;
    fi->ArmCrashPoint(CrashPoint::kCrashAfterDataSync);
    auto failed =
        catalog.TryMaterialize(doc, MustParse("//a//b"), Scheme::kElement);
    ASSERT_FALSE(failed.ok());
  }
  FsckCatalogReport before = FsckCatalog(path);
  EXPECT_FALSE(before.clean());
  EXPECT_FALSE(before.corrupt());
  EXPECT_TRUE(before.repair_needed());
  EXPECT_GT(before.orphan_pages, 0u);
  EXPECT_FALSE(before.orphan_shadows.empty());
  EXPECT_EQ(before.pending_rebuild, 1u);
  EXPECT_EQ(before.corrupt_durable_pages, 0u);

  auto repaired = RepairCatalog(path);
  ASSERT_TRUE(repaired.ok()) << repaired.status().ToString();
  EXPECT_GT(repaired->orphan_pages_truncated, 0u);
  EXPECT_GT(repaired->orphan_shadows_removed, 0);
  ASSERT_EQ(repaired->pending_rebuild.size(), 1u);
  EXPECT_EQ(repaired->pending_rebuild[0].first, "//a//b");

  FsckCatalogReport after = FsckCatalog(path);
  EXPECT_TRUE(after.clean()) << after.manifest_status.ToString();
  EXPECT_EQ(after.view_count, 1u);
}

TEST(FsckCatalogTest, RottenDurablePageIsCorruptNotRepairable) {
  xml::Document doc = CrashDoc();
  std::string path = TempPath("fsck_rot.db");
  CleanupStore(path);
  storage::PageId victim_page = 0;
  {
    ViewCatalog catalog(path, 64, /*persistent=*/true);
    const MaterializedView* view =
        catalog.Materialize(doc, MustParse("//a//b"), Scheme::kLinkedElement);
    victim_page = view->list(0).first_page;
    ScopedFaultInjection fi;
    fi->ArmWriteFault(WriteFault::kBitFlip, 1);
    std::vector<uint8_t> zeros(Pager::kPageSize, 0);
    ASSERT_TRUE(catalog.pager()->WritePage(victim_page, zeros.data()).ok());
  }
  FsckCatalogReport report = FsckCatalog(path);
  EXPECT_TRUE(report.corrupt());
  EXPECT_GE(report.corrupt_durable_pages, 1u);
  EXPECT_FALSE(report.clean());
}

// ---- Machine-readable fsck (vj_fsck --json) --------------------------------

TEST(FsckJsonTest, CatalogVerdictsTrackTheReport) {
  xml::Document doc = CrashDoc();
  std::string path = TempPath("fsck_json.db");
  CleanupStore(path);
  {
    ViewCatalog catalog(path, 64, /*persistent=*/true);
    catalog.Materialize(doc, MustParse("//a//b"), Scheme::kLinkedElement);
    ASSERT_TRUE(catalog.Close().ok());
  }
  std::string json = storage::ToJson(FsckCatalog(path));
  EXPECT_NE(json.find("\"clean\": true"), std::string::npos) << json;
  EXPECT_NE(json.find("\"corrupt\": false"), std::string::npos);
  EXPECT_NE(json.find("\"repair_needed\": false"), std::string::npos);
  EXPECT_NE(json.find("\"view_count\": 1"), std::string::npos);

  // Tear the journal tail (crash artifact): the verdicts must flip to
  // repairable, and the specific finding must be named.
  {
    std::FILE* f = std::fopen((path + ".manifest").c_str(), "ab");
    ASSERT_NE(f, nullptr);
    const uint32_t length = 100;
    std::fwrite(&length, sizeof(length), 1, f);
    std::fclose(f);
  }
  json = storage::ToJson(FsckCatalog(path));
  EXPECT_NE(json.find("\"clean\": false"), std::string::npos) << json;
  EXPECT_NE(json.find("\"corrupt\": false"), std::string::npos);
  EXPECT_NE(json.find("\"repair_needed\": true"), std::string::npos);
  EXPECT_NE(json.find("\"journal_tail_torn\": true"), std::string::npos);
}

TEST(FsckJsonTest, BarePagerReportEscapesStringsAndListsBadPages) {
  storage::FsckReport report;
  report.file_status = util::Status::Ok();
  report.page_count = 3;
  report.bad_pages.push_back(
      {1, util::Status::Corruption("bad \"footer\"\n")});
  std::string json = storage::ToJson(report);
  EXPECT_NE(json.find("\"clean\": false"), std::string::npos) << json;
  EXPECT_NE(json.find("\"page_count\": 3"), std::string::npos);
  EXPECT_NE(json.find("{\"page\": 1, \"error\": "), std::string::npos);
  // Quotes and newlines inside statuses arrive escaped, not raw.
  EXPECT_NE(json.find("\\\"footer\\\"\\n"), std::string::npos) << json;
}

}  // namespace
}  // namespace viewjoin
