// Differential out-of-core tests: an engine whose base document lives in the
// paged DocumentStore (doc_mode = disk) must produce bit-identical solutions
// to the in-memory engine for every Fig. 5 workload query, across every
// algorithm × storage-scheme combination — cold caches, tiny doc pools,
// async read-ahead, and injected page-read faults included. Disk placement
// changes where label scans come from, never what they return.

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "bench/harness.h"
#include "bench/workloads.h"
#include "core/engine.h"
#include "data/xmark_generator.h"
#include "storage/materialized_view.h"
#include "tests/test_util.h"
#include "tpq/pattern.h"
#include "util/fault_injection.h"

namespace viewjoin {
namespace {

using bench::Combo;
using bench::ParseQuery;
using bench::QuerySpec;
using core::Algorithm;
using core::DocMode;
using core::Engine;
using core::EngineOptions;
using core::RunOptions;
using core::RunResult;
using storage::MaterializedView;
using storage::Scheme;
using tpq::TreePattern;

std::string TempPath(const std::string& name) {
  return std::string(::testing::TempDir()) + name;
}

/// The four list/tuple schemes a view can be materialized under.
constexpr Scheme kAllSchemes[] = {Scheme::kElement, Scheme::kTuple,
                                  Scheme::kLinkedElement,
                                  Scheme::kLinkedElementPartial};

/// Memory-mode and disk-mode engines over the SAME document, with per-scheme
/// view caches so each workload query materializes its covering set once.
class TwinEngines {
 public:
  explicit TwinEngines(double xmark_scale)
      : doc_(data::GenerateXmark({.scale = xmark_scale})),
        memory_(&doc_, TempPath("ooc_memory.db")) {
    EngineOptions disk_options;
    disk_options.doc_mode = DocMode::kDisk;
    // A pool far smaller than the store forces real page traffic (the
    // out-of-core regime), and read-ahead keeps its background thread in
    // the loop for every scan.
    disk_options.doc_pool_pages = 32;
    disk_options.readahead_pages = 4;
    disk_ = std::make_unique<Engine>(&doc_, TempPath("ooc_disk.db"),
                                     disk_options);
  }

  const xml::Document& doc() const { return doc_; }
  Engine& memory() { return memory_; }
  Engine& disk() { return *disk_; }

  std::vector<const MaterializedView*> Views(
      Engine& engine, const std::vector<TreePattern>& patterns,
      Scheme scheme) {
    std::vector<const MaterializedView*> views;
    for (const TreePattern& pattern : patterns) {
      views.push_back(engine.AddView(pattern, scheme));
    }
    return views;
  }

 private:
  xml::Document doc_;
  Engine memory_;
  std::unique_ptr<Engine> disk_;
};

TEST(OutOfCoreDifferentialTest, DiskModeMatchesMemoryOnEveryXmarkCombo) {
  TwinEngines twins(/*xmark_scale=*/0.25);
  ASSERT_NE(twins.disk().doc_store(), nullptr)
      << twins.disk().doc_store_status().ToString();
  ASSERT_EQ(twins.disk().doc_store()->node_count(), twins.doc().NodeCount());

  for (const QuerySpec& spec : bench::XmarkQueries()) {
    TreePattern query = ParseQuery(spec.xpath);
    std::vector<TreePattern> split = bench::PairViews(query);
    // IJ only binds path queries over tuple path views.
    const std::vector<Combo> combos =
        spec.is_path ? bench::AllCombos() : bench::ListCombos();
    for (const Combo& combo : combos) {
      RunOptions run;
      run.algorithm = combo.algorithm;
      run.cold_cache = true;
      RunResult reference = twins.memory().Execute(
          query, twins.Views(twins.memory(), split, combo.scheme), run);
      ASSERT_TRUE(reference.ok)
          << spec.name << " " << combo.Label() << ": " << reference.error;
      RunResult disk = twins.disk().Execute(
          query, twins.Views(twins.disk(), split, combo.scheme), run);
      ASSERT_TRUE(disk.ok)
          << spec.name << " " << combo.Label() << ": " << disk.error;
      EXPECT_EQ(disk.match_count, reference.match_count)
          << spec.name << " " << combo.Label();
      EXPECT_EQ(disk.result_hash, reference.result_hash)
          << spec.name << " " << combo.Label();
    }
  }
}

TEST(OutOfCoreDifferentialTest, DiskModeSurvivesInjectedPageFaults) {
  TwinEngines twins(/*xmark_scale=*/0.2);
  ASSERT_NE(twins.disk().doc_store(), nullptr)
      << twins.disk().doc_store_status().ToString();

  // One path and one twig query, under bursts of failing physical reads at
  // varying offsets. The quarantine -> re-materialize -> base-fallback
  // ladder (and read retries below it) must absorb every burst without
  // changing a single solution.
  const char* queries[] = {"//site//people//person//name",
                           "//item[//description//keyword]//mailbox//mail"};
  for (const char* xpath : queries) {
    TreePattern query = ParseQuery(xpath);
    std::vector<TreePattern> split = bench::PairViews(query);
    for (Scheme scheme : {Scheme::kLinkedElement, Scheme::kElement}) {
      RunOptions run;
      run.algorithm = Algorithm::kViewJoin;
      run.cold_cache = true;
      RunResult reference = twins.memory().Execute(
          query, twins.Views(twins.memory(), split, scheme), run);
      ASSERT_TRUE(reference.ok) << xpath << ": " << reference.error;
      std::vector<const MaterializedView*> disk_views =
          twins.Views(twins.disk(), split, scheme);
      for (uint64_t nth : {1, 3, 9}) {
        util::ScopedFaultInjection faults;
        faults->ArmReadFault(nth, /*count=*/4);
        RunResult faulted = twins.disk().Execute(query, disk_views, run);
        ASSERT_TRUE(faulted.ok)
            << xpath << " nth=" << nth << ": " << faulted.error;
        EXPECT_EQ(faulted.match_count, reference.match_count)
            << xpath << " nth=" << nth;
        EXPECT_EQ(faulted.result_hash, reference.result_hash)
            << xpath << " nth=" << nth;
      }
      // Faults cleared: the stores must have healed back to clean runs.
      RunResult after = twins.disk().Execute(query, disk_views, run);
      ASSERT_TRUE(after.ok) << after.error;
      EXPECT_EQ(after.result_hash, reference.result_hash);
    }
  }
}

TEST(OutOfCoreDifferentialTest, ReadAheadCountersSurfaceOnColdScans) {
  // Scale 1.0 pushes the hot tag lists (keyword: ~6 pages, bidder: 2) past a
  // single page — below that, read-ahead correctly has nothing to issue.
  TwinEngines twins(/*xmark_scale=*/1.0);
  TreePattern query = ParseQuery("//item[//description//keyword]//mailbox//mail");
  std::vector<TreePattern> split = bench::PairViews(query);
  RunOptions run;
  run.algorithm = Algorithm::kTwigStack;
  run.cold_cache = true;  // every list page is a miss -> read-ahead territory
  RunResult result = twins.disk().Execute(
      query, twins.Views(twins.disk(), split, Scheme::kLinkedElement), run);
  ASSERT_TRUE(result.ok) << result.error;
  EXPECT_GT(result.io.prefetch_issued, 0u);
  EXPECT_GE(result.io.prefetch_issued,
            result.io.prefetch_hits + result.io.prefetch_wasted);
  // The memory engine never speculates: no read-ahead configured.
  RunResult memory = twins.memory().Execute(
      query, twins.Views(twins.memory(), split, Scheme::kLinkedElement), run);
  ASSERT_TRUE(memory.ok) << memory.error;
  EXPECT_EQ(memory.io.prefetch_issued, 0u);
  EXPECT_EQ(memory.result_hash, result.result_hash);
}

}  // namespace
}  // namespace viewjoin
