// Online hot backup, verified restore, and ENOSPC hardening. The flagship
// test takes a backup of an XMark engine WHILE an updater thread applies
// batches and a session thread queries, restores the image into a fresh
// directory, and asserts every Fig. 5 query x algorithm x scheme hashes
// identically to the pinned-epoch source. Around it: the offline
// create/verify/restore round trip, tamper detection, the
// crash-mid-backup-copy matrix point (source store byte-identical, torn
// image detectable), the ENOSPC write-site matrix (every injected kNoSpace
// surfaces as typed ResourceExhausted with no orphans — fsck-verified),
// the checkpoint-compaction ENOSPC regression (old journal intact and
// replayable), and the server-side idempotency token (a retried tokened
// update applies exactly once) plus the backup admin frame.

#include <gtest/gtest.h>
#include <sys/stat.h>

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench/harness.h"
#include "bench/workloads.h"
#include "core/engine.h"
#include "data/xmark_generator.h"
#include "plan/operator.h"
#include "server/client.h"
#include "server/server.h"
#include "server/wire.h"
#include "storage/backup.h"
#include "storage/fsck.h"
#include "storage/manifest.h"
#include "storage/materialized_view.h"
#include "storage/pager.h"
#include "tests/test_util.h"
#include "tpq/pattern.h"
#include "util/fault_injection.h"
#include "util/status.h"
#include "xml/document.h"

namespace viewjoin {
namespace {

using bench::Combo;
using bench::ParseQuery;
using bench::QuerySpec;
using core::Engine;
using core::EngineOptions;
using core::RunOptions;
using core::RunResult;
using core::UpdateOp;
using storage::BackupReport;
using storage::ManifestJournal;
using storage::MaterializedView;
using storage::Pager;
using storage::Scheme;
using storage::ViewCatalog;
using testing::MakeDoc;
using testing::MustParse;
using tpq::TreePattern;
using util::CrashPoint;
using util::ScopedFaultInjection;
using util::StatusCode;

std::string TempPath(const std::string& name) {
  return std::string(::testing::TempDir()) + name;
}

bool FileExists(const std::string& path) {
  struct stat st;
  return ::stat(path.c_str(), &st) == 0;
}

/// Removes a store's files (pager, manifest, sidecars) plus leftovers.
void CleanupStore(const std::string& path) {
  for (const char* suffix : {"", ".manifest", ".manifest.tmp", ".doc",
                             ".doc.manifest", ".updatedelta", ".spill"}) {
    std::remove((path + suffix).c_str());
  }
}

/// Removes a backup image directory and everything in it.
void RemoveTree(const std::string& dir) {
  std::error_code ec;
  std::filesystem::remove_all(dir, ec);
}

/// Whole-file read, for byte-identity assertions on the source store.
std::string FileBytes(const std::string& path) {
  std::string bytes;
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return bytes;
  char buf[4096];
  size_t got;
  while ((got = std::fread(buf, 1, sizeof(buf), f)) > 0) {
    bytes.append(buf, got);
  }
  std::fclose(f);
  return bytes;
}

/// Evaluates `query` over `views` through the plan layer's operator for
/// `algorithm`, against `catalog`'s pages. This is how a restored store is
/// queried without an Engine: the operator machinery is the same code the
/// engine interprets, so a hash match proves the restored pages serve every
/// algorithm, not just the one that wrote them.
RunResult EvaluateOnCatalog(const xml::Document& doc, ViewCatalog* catalog,
                            const TreePattern& query,
                            const std::vector<const MaterializedView*>& views,
                            core::Algorithm algorithm) {
  RunResult out;
  plan::Operator::Config config;
  config.doc = &doc;
  config.query = &query;
  config.views = views;
  config.pool = catalog->pool();
  std::unique_ptr<plan::Operator> op = plan::MakeOperator(algorithm, config);
  util::Status opened = op->Open();
  if (!opened.ok()) {
    out.error = opened.ToString();
    return out;
  }
  tpq::HashingSink sink;
  algo::QueryContext gov;
  op->Evaluate(&sink, &gov);
  op->Close();
  out.ok = true;
  out.match_count = sink.count();
  out.result_hash = sink.hash();
  return out;
}

// ---- Offline round trip ----------------------------------------------------

TEST(BackupRoundTripTest, CreateVerifyRestoreAndRefusals) {
  const std::string src = TempPath("bk_roundtrip.db");
  const std::string img = TempPath("bk_roundtrip_img");
  const std::string restored = TempPath("bk_roundtrip_restored.db");
  CleanupStore(src);
  CleanupStore(restored);
  RemoveTree(img);

  xml::Document doc = MakeDoc("r(a(b(c) a(b(c c)) b) a(x(b(c))) b(c))");
  EngineOptions options;
  options.persistent = true;
  Engine engine(&doc, src, options);
  const MaterializedView* v1 = engine.AddView("//a//b", Scheme::kLinkedElement);
  const MaterializedView* v2 = engine.AddView("//c", Scheme::kLinkedElement);
  const TreePattern query = MustParse("//a//b//c");
  RunResult reference = engine.Execute(query, {v1, v2});
  ASSERT_TRUE(reference.ok) << reference.error;

  util::StatusOr<BackupReport> report = engine.CreateBackup(img);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_GT(report->epoch, 0u);
  EXPECT_GT(report->view_page_count, 0u);
  EXPECT_GT(report->bytes_copied, 0u);
  EXPECT_FALSE(report->has_doc_store);  // memory doc-mode
  EXPECT_GE(report->files.size(), 2u);  // store + store.manifest
  EXPECT_TRUE(storage::IsBackupImageDir(img));
  EXPECT_FALSE(report->ToJson().empty());

  util::StatusOr<BackupReport> verified = storage::VerifyBackupImage(img);
  ASSERT_TRUE(verified.ok()) << verified.status().ToString();
  EXPECT_EQ(verified->epoch, report->epoch);
  EXPECT_EQ(verified->view_page_count, report->view_page_count);

  // A second backup into the same directory is refused, not overwritten.
  util::StatusOr<BackupReport> again = engine.CreateBackup(img);
  ASSERT_FALSE(again.ok());
  EXPECT_EQ(again.status().code(), StatusCode::kInvalidArgument);

  util::StatusOr<BackupReport> restored_report =
      storage::RestoreBackup(img, restored);
  ASSERT_TRUE(restored_report.ok()) << restored_report.status().ToString();

  // Restore refuses to clobber an existing destination.
  util::StatusOr<BackupReport> clobber = storage::RestoreBackup(img, restored);
  ASSERT_FALSE(clobber.ok());
  EXPECT_EQ(clobber.status().code(), StatusCode::kInvalidArgument);

  // The restored store recovers cleanly and answers from the restored pages.
  storage::FsckCatalogReport fsck = storage::FsckCatalog(restored);
  EXPECT_FALSE(fsck.corrupt());
  EXPECT_FALSE(fsck.repair_needed());
  auto opened = ViewCatalog::Open(restored, 64);
  ASSERT_TRUE(opened.ok()) << opened.status().ToString();
  EXPECT_EQ((*opened)->epoch(), report->epoch);
  const MaterializedView* r1 =
      (*opened)->FindView(MustParse("//a//b").ToString(),
                          Scheme::kLinkedElement);
  const MaterializedView* r2 =
      (*opened)->FindView(MustParse("//c").ToString(),
                          Scheme::kLinkedElement);
  ASSERT_NE(r1, nullptr);
  ASSERT_NE(r2, nullptr);
  RunResult answer = EvaluateOnCatalog(doc, opened->get(), query, {r1, r2},
                                       core::Algorithm::kViewJoin);
  ASSERT_TRUE(answer.ok) << answer.error;
  EXPECT_EQ(answer.match_count, reference.match_count);
  EXPECT_EQ(answer.result_hash, reference.result_hash);
}

TEST(BackupRoundTripTest, VerifyDetectsTamperAndMissingMeta) {
  const std::string src = TempPath("bk_tamper.db");
  const std::string img = TempPath("bk_tamper_img");
  CleanupStore(src);
  RemoveTree(img);

  xml::Document doc = MakeDoc("r(a(b(c)) a(b(c)))");
  EngineOptions options;
  options.persistent = true;
  Engine engine(&doc, src, options);
  engine.AddView("//a//b", Scheme::kElement);
  util::StatusOr<BackupReport> report = engine.CreateBackup(img);
  ASSERT_TRUE(report.ok()) << report.status().ToString();

  // Flip one payload byte of the copied store: the image must fail both the
  // recorded-CRC check and restore, as corruption (not a crash artifact).
  const std::string store = img + "/" + storage::kBackupStoreName;
  {
    std::FILE* f = std::fopen(store.c_str(), "rb+");
    ASSERT_NE(f, nullptr);
    ASSERT_EQ(std::fseek(f, Pager::kHeaderSize + 100, SEEK_SET), 0);
    int c = std::fgetc(f);
    ASSERT_NE(c, EOF);
    ASSERT_EQ(std::fseek(f, Pager::kHeaderSize + 100, SEEK_SET), 0);
    std::fputc(c ^ 0x40, f);
    std::fclose(f);
  }
  util::StatusOr<BackupReport> verified = storage::VerifyBackupImage(img);
  ASSERT_FALSE(verified.ok());
  EXPECT_EQ(verified.status().code(), StatusCode::kCorruption);
  util::StatusOr<BackupReport> restored =
      storage::RestoreBackup(img, TempPath("bk_tamper_restored.db"));
  ASSERT_FALSE(restored.ok());
  EXPECT_EQ(restored.status().code(), StatusCode::kCorruption);

  // Without backup.meta the directory is not an image at all (that is the
  // commit point a mid-backup crash never reaches).
  std::remove((img + "/" + storage::kBackupMetaName).c_str());
  EXPECT_FALSE(storage::IsBackupImageDir(img));
  util::StatusOr<BackupReport> headless = storage::VerifyBackupImage(img);
  ASSERT_FALSE(headless.ok());
  EXPECT_EQ(headless.status().code(), StatusCode::kNotFound);
}

// ---- Hot backup under concurrent load: the Fig. 5 differential -------------

// The backup races live update batches and session queries. The updater
// grafts subtrees of a tag ("zzz") that appears in no workload query or
// view, and never triggers a relabel — so the Fig. 5 match sets are
// invariant across every epoch the snapshot could pin, and the restored
// store must hash identically to the pre-update reference no matter which
// batch boundary the backup caught.
TEST(BackupDifferentialTest, HotBackupUnderLoadMatchesPinnedEpochOnFig5) {
  const std::string src = TempPath("bk_fig5.db");
  const std::string img = TempPath("bk_fig5_img");
  const std::string restored = TempPath("bk_fig5_restored.db");
  CleanupStore(src);
  CleanupStore(restored);
  RemoveTree(img);

  xml::Document doc = data::GenerateXmark({.scale = 0.08});
  ASSERT_TRUE(doc.RelabelWithGap(64).ok());
  EngineOptions options;
  options.persistent = true;
  Engine engine(&doc, src, options);

  struct Expected {
    std::string name;
    std::string label;
    TreePattern query;
    std::vector<std::string> view_patterns;
    Scheme scheme;
    core::Algorithm algorithm;
    uint64_t match_count = 0;
    uint64_t result_hash = 0;
  };
  std::vector<Expected> expectations;
  for (const QuerySpec& spec : bench::XmarkQueries()) {
    TreePattern query = ParseQuery(spec.xpath);
    std::vector<TreePattern> split = bench::PairViews(query);
    const std::vector<Combo> combos =
        spec.is_path ? bench::AllCombos() : bench::ListCombos();
    for (const Combo& combo : combos) {
      Expected e;
      e.name = spec.name;
      e.label = combo.Label();
      e.query = query;
      e.scheme = combo.scheme;
      e.algorithm = combo.algorithm;
      std::vector<const MaterializedView*> views;
      for (const TreePattern& pattern : split) {
        e.view_patterns.push_back(pattern.ToString());
        views.push_back(engine.AddView(pattern, combo.scheme));
      }
      RunOptions run;
      run.algorithm = combo.algorithm;
      run.cold_cache = false;
      RunResult reference = engine.Execute(query, views, run);
      ASSERT_TRUE(reference.ok)
          << spec.name << " " << combo.Label() << ": " << reference.error;
      e.match_count = reference.match_count;
      e.result_hash = reference.result_hash;
      expectations.push_back(std::move(e));
    }
  }
  const uint64_t epoch_before = engine.catalog()->epoch();

  // Concurrent load: an updater applying foreign-tag batches and a session
  // hammering the first workload query, both racing the backup copy.
  xml::Document fragment = MakeDoc("zzz(zzz)");
  const xml::SubtreeSpec frag_spec = xml::SpecFromDocument(fragment);
  const std::string root_tag = doc.TagName(doc.NodeTag(doc.Root()));
  const uint32_t root_start = doc.NodeLabel(doc.Root()).start;

  // Each batch grafts under a *distinct* parent so every parent's label gap
  // is consumed once: repeated first-child inserts under one node would
  // exhaust its gap and force a relabel, which rebuilds every view with new
  // labels and breaks the epoch-invariance this test depends on.
  struct Parent {
    std::string tag;
    uint32_t start;
  };
  std::vector<Parent> parents;
  parents.push_back({root_tag, root_start});
  for (const char* tag : {"people", "regions", "catgraph", "categories"}) {
    if (parents.size() >= 4) break;
    const xml::TagId id = doc.FindTag(tag);
    if (id == xml::kInvalidTag) continue;
    const auto& nodes = doc.NodesOfTag(id);
    if (nodes.empty()) continue;
    parents.push_back({tag, doc.NodeLabel(nodes.front()).start});
  }
  ASSERT_GE(parents.size(), 2u);

  std::atomic<bool> stop{false};
  std::vector<std::string> update_failures;
  std::thread updater([&] {
    for (size_t batch = 0; batch < parents.size(); ++batch) {
      UpdateOp op;
      op.kind = UpdateOp::Kind::kInsertSubtree;
      op.target_tag = parents[batch].tag;
      op.target_start = parents[batch].start;
      op.subtree = frag_spec;
      auto result = engine.ApplyUpdates({op});
      if (!result.ok()) {
        update_failures.push_back(result.status().ToString());
        return;
      }
      if (result->relabeled) {
        update_failures.push_back("batch triggered a relabel");
        return;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
  });
  std::vector<std::string> query_failures;
  std::thread querier([&] {
    Engine::Session session(&engine, 1);
    const Expected& e = expectations.front();
    std::vector<const MaterializedView*> views;
    for (const std::string& pattern : e.view_patterns) {
      views.push_back(engine.catalog()->FindView(pattern, e.scheme));
    }
    RunOptions run;
    run.algorithm = e.algorithm;
    run.cold_cache = false;
    int iterations = 0;
    while (!stop.load(std::memory_order_acquire) || iterations < 5) {
      RunResult r = session.Run(e.query, views, run);
      ++iterations;
      if (!r.ok) {
        query_failures.push_back(r.error);
        return;
      }
      if (r.match_count != e.match_count || r.result_hash != e.result_hash) {
        query_failures.push_back("live answer drifted under backup");
        return;
      }
      if (iterations > 300) return;
    }
  });

  util::StatusOr<BackupReport> report = engine.CreateBackup(img);
  stop.store(true, std::memory_order_release);
  updater.join();
  querier.join();
  for (const std::string& failure : update_failures) ADD_FAILURE() << failure;
  for (const std::string& failure : query_failures) ADD_FAILURE() << failure;
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_GE(report->epoch, epoch_before);

  util::StatusOr<BackupReport> restored_report =
      storage::RestoreBackup(img, restored);
  ASSERT_TRUE(restored_report.ok()) << restored_report.status().ToString();
  storage::FsckCatalogReport fsck = storage::FsckCatalog(restored);
  EXPECT_FALSE(fsck.corrupt());
  EXPECT_FALSE(fsck.repair_needed());

  auto opened = ViewCatalog::Open(restored, 256);
  ASSERT_TRUE(opened.ok()) << opened.status().ToString();
  EXPECT_EQ((*opened)->epoch(), report->epoch);
  EXPECT_FALSE((*opened)->recovery_report().journal_tail_truncated);
  EXPECT_EQ((*opened)->recovery_report().orphan_pages_truncated, 0u);

  for (const Expected& e : expectations) {
    std::vector<const MaterializedView*> views;
    for (const std::string& pattern : e.view_patterns) {
      const MaterializedView* view = (*opened)->FindView(pattern, e.scheme);
      ASSERT_NE(view, nullptr)
          << e.name << " " << e.label << ": view " << pattern
          << " missing from the restored catalog";
      views.push_back(view);
    }
    RunResult answer =
        EvaluateOnCatalog(doc, opened->get(), e.query, views, e.algorithm);
    ASSERT_TRUE(answer.ok) << e.name << " " << e.label << ": " << answer.error;
    EXPECT_EQ(answer.match_count, e.match_count) << e.name << " " << e.label;
    EXPECT_EQ(answer.result_hash, e.result_hash) << e.name << " " << e.label;
  }
}

// ---- Crash matrix: mid-backup-copy -----------------------------------------

TEST(BackupCrashTest, CrashMidCopyLeavesSourceUntouchedAndImageTorn) {
  const std::string src = TempPath("bk_crash.db");
  const std::string img = TempPath("bk_crash_img");
  const std::string img_retry = TempPath("bk_crash_img_retry");
  CleanupStore(src);
  RemoveTree(img);
  RemoveTree(img_retry);

  xml::Document doc = MakeDoc("r(a(b(c) a(b(c c)) b) a(x(b(c))) b(c))");
  EngineOptions options;
  options.persistent = true;
  Engine engine(&doc, src, options);
  const MaterializedView* v1 = engine.AddView("//a//b", Scheme::kLinkedElement);
  const MaterializedView* v2 = engine.AddView("//c", Scheme::kLinkedElement);
  const TreePattern query = MustParse("//a//b//c");
  RunResult reference = engine.Execute(query, {v1, v2});
  ASSERT_TRUE(reference.ok) << reference.error;

  const std::string store_before = FileBytes(src);
  const std::string manifest_before = FileBytes(ManifestJournal::PathFor(src));
  ASSERT_FALSE(store_before.empty());
  ASSERT_FALSE(manifest_before.empty());

  {
    ScopedFaultInjection fi;
    fi->ArmCrashPoint(CrashPoint::kCrashMidBackupCopy);
    util::StatusOr<BackupReport> crashed = engine.CreateBackup(img);
    ASSERT_FALSE(crashed.ok());
    EXPECT_EQ(crashed.status().code(), StatusCode::kIoError);
    EXPECT_NE(crashed.status().ToString().find("injected crash"),
              std::string::npos)
        << crashed.status().ToString();
    EXPECT_EQ(fi->injected_crashes(), 1u);
  }

  // The source store is byte-identical: backup is strictly read-only over
  // the live files, even when it dies mid-page.
  EXPECT_EQ(FileBytes(src), store_before);
  EXPECT_EQ(FileBytes(ManifestJournal::PathFor(src)), manifest_before);

  // The torn image is recognizable (no backup.meta commit point) and never
  // verifies as a backup.
  EXPECT_FALSE(FileExists(img + "/" + storage::kBackupMetaName));
  EXPECT_FALSE(storage::IsBackupImageDir(img));
  util::StatusOr<BackupReport> verified = storage::VerifyBackupImage(img);
  ASSERT_FALSE(verified.ok());
  EXPECT_EQ(verified.status().code(), StatusCode::kNotFound);

  // The engine keeps serving, and a fresh backup attempt succeeds.
  RunResult after = engine.Execute(query, {v1, v2});
  ASSERT_TRUE(after.ok) << after.error;
  EXPECT_EQ(after.result_hash, reference.result_hash);
  util::StatusOr<BackupReport> retried = engine.CreateBackup(img_retry);
  ASSERT_TRUE(retried.ok()) << retried.status().ToString();
  ASSERT_TRUE(storage::VerifyBackupImage(img_retry).ok());
}

// ---- ENOSPC hardening ------------------------------------------------------

// Satellite regression: an injected kNoSpace mid-checkpoint-compaction must
// leave the old journal byte-identical and replayable — compaction promises
// "the original journal is intact until the rename", and a full disk is one
// of the ways the rewrite dies.
TEST(EnospcTest, CheckpointCompactionEnospcLeavesOldJournalIntact) {
  xml::Document doc = MakeDoc("r(a(b(c) a(b(c c)) b) a(x(b(c))) b(c))");
  const std::string path = TempPath("enospc_ckpt.db");
  CleanupStore(path);
  ViewCatalog catalog(path, 64, /*persistent=*/true);
  catalog.Materialize(doc, MustParse("//a//b"), Scheme::kLinkedElement);
  catalog.Materialize(doc, MustParse("//c"), Scheme::kElement);
  const std::string journal_path = ManifestJournal::PathFor(path);
  const std::string journal_before = FileBytes(journal_path);
  ASSERT_FALSE(journal_before.empty());

  {
    ScopedFaultInjection fi;
    fi->ArmDiskBudget(0);
    util::Status checkpointed = catalog.Checkpoint();
    ASSERT_FALSE(checkpointed.ok());
    EXPECT_EQ(checkpointed.code(), StatusCode::kResourceExhausted)
        << checkpointed.ToString();
    EXPECT_GE(fi->injected_no_space_faults(), 1u);
  }

  // Old journal untouched, no checkpoint tmp left behind, and the store
  // still replays: compaction failed clean.
  EXPECT_EQ(FileBytes(journal_path), journal_before);
  EXPECT_FALSE(FileExists(path + ".manifest.tmp"));

  // With space back, the same catalog compacts fine and reopens with both
  // views.
  EXPECT_TRUE(catalog.Checkpoint().ok());
  EXPECT_TRUE(catalog.Close().ok());
  auto opened = ViewCatalog::Open(path, 64);
  ASSERT_TRUE(opened.ok()) << opened.status().ToString();
  EXPECT_EQ((*opened)->views().size(), 2u);
}

// Write-site matrix: with the free-space injector armed at several budgets,
// every failing operation — shadow view builds, manifest appends, pager
// page appends, update-delta handling — must surface as a typed
// ResourceExhausted, leave no orphan files, and keep reads serving. fsck
// vouches for the store afterwards at every budget.
TEST(EnospcTest, WriteSiteMatrixFailsTypedWithNoOrphans) {
  xml::Document fragment = MakeDoc("a(b(c))");
  const xml::SubtreeSpec frag_spec = xml::SpecFromDocument(fragment);

  const uint64_t budgets[] = {0, Pager::kPhysicalPageSize,
                              8 * Pager::kPhysicalPageSize,
                              64 * Pager::kPhysicalPageSize};
  for (uint64_t budget : budgets) {
    SCOPED_TRACE("budget=" + std::to_string(budget));
    xml::Document doc = MakeDoc("r(a(b(c) a(b(c c)) b) a(x(b(c))) b(c))");
    ASSERT_TRUE(doc.RelabelWithGap(64).ok());
    const std::string path = TempPath("enospc_matrix.db");
    CleanupStore(path);
    uint64_t no_space_seen = 0;
    {
      EngineOptions options;
      options.persistent = true;
      Engine engine(&doc, path, options);
      const MaterializedView* v1 =
          engine.AddView("//a//b", Scheme::kLinkedElement);
      const MaterializedView* v2 = engine.AddView("//c", Scheme::kLinkedElement);
      const TreePattern query = MustParse("//a//b//c");
      RunResult reference = engine.Execute(query, {v1, v2});
      ASSERT_TRUE(reference.ok) << reference.error;

      ScopedFaultInjection fi;
      fi->ArmDiskBudget(budget);

      // Shadow build + manifest append site: a new view materialization.
      auto added = engine.TryAddView("//x//b", Scheme::kElement);
      if (!added.ok()) {
        EXPECT_EQ(added.status().code(), StatusCode::kResourceExhausted)
            << added.status().ToString();
      }
      // Update batch site: delta merge, doc mutation journaling, installs.
      UpdateOp op;
      op.kind = UpdateOp::Kind::kInsertSubtree;
      op.target_tag = "r";
      op.target_start = doc.NodeLabel(doc.Root()).start;
      op.subtree = frag_spec;
      auto updated = engine.ApplyUpdates({op});
      if (!updated.ok()) {
        EXPECT_EQ(updated.status().code(), StatusCode::kResourceExhausted)
            << updated.status().ToString();
      }
      no_space_seen = fi->injected_no_space_faults();

      // Reads keep serving through a full disk — degrade like corruption,
      // not crash. (The answer may legitimately include the batch if it
      // committed within budget; with budget 0 nothing committed.)
      RunResult under_pressure = engine.Execute(query, {v1, v2});
      ASSERT_TRUE(under_pressure.ok) << under_pressure.error;
      if (budget == 0) {
        EXPECT_FALSE(added.ok());
        EXPECT_FALSE(updated.ok());
        EXPECT_EQ(under_pressure.result_hash, reference.result_hash);
      }
      fi->DisarmDiskBudget();
    }
    if (budget == 0) {
      EXPECT_GE(no_space_seen, 1u);
    }

    // No orphan shadow or sidecar files; fsck finds a clean store.
    EXPECT_FALSE(FileExists(path + ".updatedelta"));
    EXPECT_FALSE(FileExists(path + ".manifest.tmp"));
    storage::FsckCatalogReport fsck = storage::FsckCatalog(path);
    EXPECT_FALSE(fsck.corrupt());
    EXPECT_FALSE(fsck.repair_needed());
    auto opened = ViewCatalog::Open(path, 64);
    ASSERT_TRUE(opened.ok()) << opened.status().ToString();
  }
}

TEST(EnospcTest, BackupCreateEnospcLeavesNoPartialImage) {
  const std::string src = TempPath("enospc_backup.db");
  const std::string img = TempPath("enospc_backup_img");
  CleanupStore(src);
  RemoveTree(img);

  xml::Document doc = MakeDoc("r(a(b(c)) a(b(c)))");
  EngineOptions options;
  options.persistent = true;
  Engine engine(&doc, src, options);
  engine.AddView("//a//b", Scheme::kLinkedElement);

  {
    ScopedFaultInjection fi;
    fi->ArmDiskBudget(0);
    util::StatusOr<BackupReport> report = engine.CreateBackup(img);
    ASSERT_FALSE(report.ok());
    EXPECT_EQ(report.status().code(), StatusCode::kResourceExhausted)
        << report.status().ToString();
  }

  // A failed backup cleans up after itself: no meta, no copied store — the
  // directory is reusable once space is back.
  EXPECT_FALSE(FileExists(img + "/" + storage::kBackupMetaName));
  EXPECT_FALSE(FileExists(img + "/" + std::string(storage::kBackupStoreName)));
  EXPECT_FALSE(storage::IsBackupImageDir(img));
  util::StatusOr<BackupReport> retried = engine.CreateBackup(img);
  ASSERT_TRUE(retried.ok()) << retried.status().ToString();
  ASSERT_TRUE(storage::VerifyBackupImage(img).ok());
}

// ---- Server: idempotency tokens and the backup admin frame -----------------

using server::BackupRequest;
using server::BackupResponse;
using server::Client;
using server::QueryRequest;
using server::QueryResponse;
using server::QueryServer;
using server::ServerOptions;
using server::StatusResponse;
using server::UpdateRequest;
using server::UpdateResponse;
using server::Verdict;

/// `groups` independent a(b(c)) subtrees under r: //a//b//c matches
/// `groups` times. Relabelled with a gap so inserts never trigger a
/// relabel (token tests address nodes by stable coordinates).
xml::Document GroupDoc(int groups) {
  xml::Document doc;
  doc.StartElement("r");
  for (int i = 0; i < groups; ++i) {
    doc.StartElement("a");
    doc.StartElement("b");
    doc.StartElement("c");
    doc.EndElement();
    doc.EndElement();
    doc.EndElement();
  }
  doc.EndElement();
  return doc;
}

struct ServerFixture {
  explicit ServerFixture(int groups, ServerOptions options = {},
                         const std::string& name = "backup_server.db")
      : doc(GroupDoc(groups)) {
    EXPECT_TRUE(doc.RelabelWithGap(64).ok());
    CleanupStore(TempPath(name));
    EngineOptions engine_options;
    engine_options.persistent = true;
    engine = std::make_unique<Engine>(&doc, TempPath(name), engine_options);
    server = std::make_unique<QueryServer>(engine.get(), options);
    util::Status started = server->Start();
    EXPECT_TRUE(started.ok()) << started.ToString();
  }

  ~ServerFixture() {
    if (server != nullptr) server->Drain();
  }

  Client Connected() {
    Client client;
    util::Status status = client.Connect("127.0.0.1", server->port(), 5000);
    EXPECT_TRUE(status.ok()) << status.ToString();
    client.set_deadline_ms(20000);
    return client;
  }

  UpdateRequest InsertGroupRequest(const std::string& token) {
    UpdateRequest request;
    request.token = token;
    UpdateRequest::Op op;
    op.kind = 0;  // insert
    op.target_tag = "r";
    op.target_start = doc.NodeLabel(doc.Root()).start;
    op.fragment = "<a><b><c/></b></a>";
    request.ops.push_back(op);
    return request;
  }

  uint64_t QueryCount(Client& client) {
    QueryRequest request;
    request.query = "//a//b//c";
    request.views = {"//a//b", "//c"};
    request.scheme = "LE";
    request.algorithm = "VJ";
    util::StatusOr<QueryResponse> response = client.Query(request);
    EXPECT_TRUE(response.ok()) << response.status().ToString();
    if (!response.ok()) return 0;
    EXPECT_EQ(response->verdict, Verdict::kOk) << response->error;
    return response->match_count;
  }

  xml::Document doc;
  std::unique_ptr<Engine> engine;
  std::unique_ptr<QueryServer> server;
};

TEST(ServerIdempotencyTest, RetriedTokenedUpdateAppliesExactlyOnce) {
  ServerFixture fx(8, {}, "idem_once.db");
  Client client = fx.Connected();
  ASSERT_EQ(fx.QueryCount(client), 8u);

  UpdateRequest request = fx.InsertGroupRequest("token-A");
  util::StatusOr<UpdateResponse> first = client.Update(request);
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  ASSERT_EQ(first->verdict, Verdict::kOk) << first->error;
  EXPECT_EQ(first->applied, 1u);
  EXPECT_FALSE(first->relabeled);

  // The "client retry after a lost response": same token, same batch. The
  // server replays the committed response instead of applying again.
  util::StatusOr<UpdateResponse> retry = client.Update(request);
  ASSERT_TRUE(retry.ok()) << retry.status().ToString();
  EXPECT_EQ(retry->verdict, Verdict::kOk) << retry->error;
  EXPECT_EQ(retry->applied, first->applied);
  EXPECT_EQ(retry->txn_epoch, first->txn_epoch);
  EXPECT_EQ(fx.server->Snapshot().update_dedup_hits, 1u);
  EXPECT_EQ(fx.QueryCount(client), 9u);  // applied once, not twice

  // A fresh token is new work.
  util::StatusOr<UpdateResponse> second =
      client.Update(fx.InsertGroupRequest("token-B"));
  ASSERT_TRUE(second.ok()) << second.status().ToString();
  EXPECT_EQ(second->verdict, Verdict::kOk) << second->error;
  EXPECT_EQ(fx.QueryCount(client), 10u);
}

TEST(ServerIdempotencyTest, DedupWindowEvictsOldestToken) {
  ServerOptions options;
  options.update_dedup_window = 1;
  ServerFixture fx(4, options, "idem_window.db");
  Client client = fx.Connected();

  ASSERT_TRUE(client.Update(fx.InsertGroupRequest("tok-1")).ok());
  // tok-2 evicts tok-1 from the single-slot window...
  ASSERT_TRUE(client.Update(fx.InsertGroupRequest("tok-2")).ok());
  // ...so a replay of tok-1 is no longer recognized and applies again.
  util::StatusOr<UpdateResponse> replay =
      client.Update(fx.InsertGroupRequest("tok-1"));
  ASSERT_TRUE(replay.ok()) << replay.status().ToString();
  EXPECT_EQ(replay->verdict, Verdict::kOk) << replay->error;
  EXPECT_EQ(fx.server->Snapshot().update_dedup_hits, 0u);
  EXPECT_EQ(fx.QueryCount(client), 7u);  // 4 + 3 applied inserts
}

TEST(ServerBackupTest, BackupFrameUsesConfiguredDirAndCountsInStatus) {
  const std::string img = TempPath("srv_backup_img");
  const std::string img2 = TempPath("srv_backup_img2");
  RemoveTree(img);
  RemoveTree(img2);
  ServerOptions options;
  options.backup_dir = img;
  ServerFixture fx(8, options, "srv_backup.db");
  Client client = fx.Connected();
  ASSERT_EQ(fx.QueryCount(client), 8u);  // materialize something to back up

  // "" = use the server's configured --backup-dir.
  util::StatusOr<BackupResponse> response = client.TriggerBackup("");
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  ASSERT_EQ(response->verdict, Verdict::kOk) << response->error;
  EXPECT_EQ(response->directory, img);
  EXPECT_GT(response->epoch, 0u);
  EXPECT_GT(response->view_pages, 0u);
  EXPECT_GT(response->bytes_copied, 0u);
  ASSERT_TRUE(storage::VerifyBackupImage(img).ok());

  // An explicit destination overrides the configured one.
  util::StatusOr<BackupResponse> explicit_dir = client.TriggerBackup(img2);
  ASSERT_TRUE(explicit_dir.ok()) << explicit_dir.status().ToString();
  ASSERT_EQ(explicit_dir->verdict, Verdict::kOk) << explicit_dir->error;
  EXPECT_EQ(explicit_dir->directory, img2);

  // Re-backup into an existing image is a typed failure the status surfaces.
  util::StatusOr<BackupResponse> refused = client.TriggerBackup(img);
  ASSERT_TRUE(refused.ok()) << refused.status().ToString();
  EXPECT_EQ(refused->verdict, Verdict::kError);
  EXPECT_FALSE(refused->error.empty());

  StatusResponse status = fx.server->Snapshot();
  EXPECT_EQ(status.backups_completed, 2u);
  EXPECT_EQ(status.backups_failed, 1u);
  EXPECT_FALSE(status.last_backup_error.empty());
}

TEST(ServerBackupTest, BackupWithoutAnyDirIsTypedAndDrainRefusesBackups) {
  ServerFixture fx(4, {}, "srv_backup_nodir.db");
  BackupResponse none = fx.server->TriggerBackup("");
  EXPECT_EQ(none.verdict, Verdict::kError);
  EXPECT_NE(none.error.find("no backup directory"), std::string::npos)
      << none.error;

  EXPECT_TRUE(fx.server->Drain());
  BackupResponse draining =
      fx.server->TriggerBackup(TempPath("srv_backup_late_img"));
  EXPECT_EQ(draining.verdict, Verdict::kShuttingDown);
}

// ---- Wire round trips for the new frames and fields ------------------------

TEST(BackupWireTest, UpdateTokenRoundTripsAndOversizedTokenIsMalformed) {
  UpdateRequest in;
  in.tenant = "t";
  in.token = "retry-token-0123456789abcdef";
  UpdateRequest::Op op;
  op.kind = 0;
  op.target_tag = "r";
  op.target_start = 7;
  op.fragment = "<a/>";
  in.ops.push_back(op);

  std::string payload = server::EncodeUpdateRequest(in);
  UpdateRequest out;
  ASSERT_TRUE(server::DecodeUpdateRequest(payload, &out).ok());
  EXPECT_EQ(out.token, in.token);
  EXPECT_EQ(out.ops.size(), 1u);

  in.token.assign(129, 'x');
  std::string oversized = server::EncodeUpdateRequest(in);
  UpdateRequest rejected;
  util::Status decoded = server::DecodeUpdateRequest(oversized, &rejected);
  ASSERT_FALSE(decoded.ok());
  EXPECT_NE(decoded.ToString().find("token"), std::string::npos)
      << decoded.ToString();
}

TEST(BackupWireTest, BackupFramesRoundTrip) {
  BackupRequest request;
  request.dest_dir = "/backups/nightly";
  std::string payload = server::EncodeBackupRequest(request);
  ASSERT_EQ(*server::PeekType(payload), server::MsgType::kBackupRequest);
  BackupRequest decoded_request;
  ASSERT_TRUE(server::DecodeBackupRequest(payload, &decoded_request).ok());
  EXPECT_EQ(decoded_request.dest_dir, request.dest_dir);

  BackupResponse response;
  response.verdict = Verdict::kOk;
  response.directory = "/backups/nightly";
  response.epoch = 42;
  response.view_pages = 17;
  response.bytes_copied = 123456;
  response.server_ms = 3.5;
  std::string response_payload = server::EncodeBackupResponse(response);
  ASSERT_EQ(*server::PeekType(response_payload),
            server::MsgType::kBackupResponse);
  BackupResponse decoded_response;
  ASSERT_TRUE(
      server::DecodeBackupResponse(response_payload, &decoded_response).ok());
  EXPECT_EQ(decoded_response.verdict, Verdict::kOk);
  EXPECT_EQ(decoded_response.directory, response.directory);
  EXPECT_EQ(decoded_response.epoch, 42u);
  EXPECT_EQ(decoded_response.view_pages, 17u);
  EXPECT_EQ(decoded_response.bytes_copied, 123456u);
  EXPECT_DOUBLE_EQ(decoded_response.server_ms, 3.5);
}

TEST(BackupWireTest, StatusResponseCarriesBackupAndDedupCounters) {
  StatusResponse in;
  in.backups_completed = 3;
  in.backups_failed = 1;
  in.update_dedup_hits = 5;
  in.resource_exhausted = 2;
  in.last_backup_error = "disk full";
  std::string payload = server::EncodeStatusResponse(in);
  StatusResponse out;
  ASSERT_TRUE(server::DecodeStatusResponse(payload, &out).ok());
  EXPECT_EQ(out.backups_completed, 3u);
  EXPECT_EQ(out.backups_failed, 1u);
  EXPECT_EQ(out.update_dedup_hits, 5u);
  EXPECT_EQ(out.resource_exhausted, 2u);
  EXPECT_EQ(out.last_backup_error, "disk full");
}

}  // namespace
}  // namespace viewjoin
