#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/engine.h"
#include "tests/test_util.h"
#include "tpq/evaluator.h"
#include "tpq/subpattern.h"
#include "util/rng.h"

namespace viewjoin {
namespace {

using algo::OutputMode;
using core::Algorithm;
using core::Engine;
using core::RunOptions;
using core::RunResult;
using storage::MaterializedView;
using storage::Scheme;
using testing::RandomDoc;
using testing::RandomQuery;
using testing::RandomViewPartition;
using tpq::TreePattern;

std::string TempPath(const std::string& name) {
  return std::string(::testing::TempDir()) + name;
}

struct Expected {
  uint64_t count;
  uint64_t hash;
};

Expected OracleFingerprint(const xml::Document& doc, const TreePattern& query) {
  tpq::HashingSink sink;
  tpq::NaiveEvaluator(doc, query).Evaluate(&sink);
  return {sink.count(), sink.hash()};
}

/// One randomized scenario: a recursive document, a random query, a random
/// covering view partition — every algorithm × scheme × output mode must
/// produce the oracle's exact match set.
class DifferentialCase {
 public:
  DifferentialCase(uint64_t seed, int doc_nodes, int query_nodes)
      : rng_(seed),
        tags_({"a", "b", "c", "d", "e", "f", "g"}),
        doc_(RandomDoc(&rng_, doc_nodes, tags_)),
        query_(RandomQuery(&rng_, query_nodes, tags_)),
        views_(RandomViewPartition(&rng_, query_, 3)),
        engine_(&doc_, TempPath("prop_" + std::to_string(seed) + ".db")) {
    expected_ = OracleFingerprint(doc_, query_);
  }

  std::string Describe() const {
    std::string views = "";
    for (const TreePattern& v : views_) views += " " + v.ToString();
    return "query=" + query_.ToString() + " views=[" + views + " ] expected=" +
           std::to_string(expected_.count);
  }

  void CheckListSchemes() {
    for (Scheme scheme : {Scheme::kElement, Scheme::kLinkedElement,
                          Scheme::kLinkedElementPartial}) {
      std::vector<const MaterializedView*> views;
      for (const TreePattern& v : views_) {
        views.push_back(engine_.AddView(v, scheme));
      }
      for (Algorithm algorithm : {Algorithm::kTwigStack, Algorithm::kViewJoin}) {
        for (OutputMode mode : {OutputMode::kMemory, OutputMode::kDisk}) {
          RunOptions run;
          run.algorithm = algorithm;
          run.output_mode = mode;
          RunResult result = engine_.Execute(query_, views, run);
          ASSERT_TRUE(result.ok) << result.error << " " << Describe();
          EXPECT_EQ(result.match_count, expected_.count)
              << core::AlgorithmName(algorithm) << "+"
              << storage::SchemeName(scheme)
              << (mode == OutputMode::kDisk ? " (disk) " : " (mem) ")
              << Describe();
          EXPECT_EQ(result.result_hash, expected_.hash)
              << core::AlgorithmName(algorithm) << "+"
              << storage::SchemeName(scheme) << " " << Describe();
        }
      }
    }
  }

  void CheckInterJoinIfApplicable() {
    if (!query_.IsPath()) return;
    for (const TreePattern& v : views_) {
      if (!v.IsPath()) return;
    }
    std::vector<const MaterializedView*> views;
    for (const TreePattern& v : views_) {
      views.push_back(engine_.AddView(v, Scheme::kTuple));
    }
    RunOptions run;
    run.algorithm = Algorithm::kInterJoin;
    RunResult result = engine_.Execute(query_, views, run);
    ASSERT_TRUE(result.ok) << result.error << " " << Describe();
    EXPECT_EQ(result.match_count, expected_.count) << "IJ+T " << Describe();
    EXPECT_EQ(result.result_hash, expected_.hash) << "IJ+T " << Describe();
  }

 private:
  util::Rng rng_;
  std::vector<std::string> tags_;
  xml::Document doc_;
  TreePattern query_;
  std::vector<TreePattern> views_;
  Engine engine_;
  Expected expected_;
};

class DifferentialTest : public ::testing::TestWithParam<int> {};

TEST_P(DifferentialTest, AllCombosMatchOracle) {
  uint64_t seed = 1000 + static_cast<uint64_t>(GetParam());
  util::Rng shape_rng(seed * 77);
  int doc_nodes = 30 + static_cast<int>(shape_rng.Uniform(270));
  int query_nodes = 1 + static_cast<int>(shape_rng.Uniform(6));
  DifferentialCase scenario(seed, doc_nodes, query_nodes);
  scenario.CheckListSchemes();
  scenario.CheckInterJoinIfApplicable();
}

INSTANTIATE_TEST_SUITE_P(RandomScenarios, DifferentialTest,
                         ::testing::Range(0, 150));

/// Path-only scenarios so InterJoin participates frequently.
class PathDifferentialTest : public ::testing::TestWithParam<int> {};

TEST_P(PathDifferentialTest, PathCombosMatchOracle) {
  uint64_t seed = 9000 + static_cast<uint64_t>(GetParam());
  util::Rng rng(seed);
  std::vector<std::string> tags = {"a", "b", "c", "d", "e"};
  xml::Document doc = RandomDoc(&rng, 150, tags);
  // Build a random path query.
  int len = 2 + static_cast<int>(rng.Uniform(3));
  TreePattern query;
  std::vector<std::string> pool = tags;
  for (size_t i = 0; i < pool.size(); ++i) {
    std::swap(pool[i], pool[i + rng.Uniform(pool.size() - i)]);
  }
  int prev = query.AddNode(pool[0], -1, tpq::Axis::kDescendant);
  for (int i = 1; i < len; ++i) {
    tpq::Axis axis = rng.Bernoulli(0.3) ? tpq::Axis::kChild
                                        : tpq::Axis::kDescendant;
    prev = query.AddNode(pool[static_cast<size_t>(i)], prev, axis);
  }
  // Random path-view partition: contiguous or interleaved groups.
  std::vector<TreePattern> views = RandomViewPartition(&rng, query, 3);
  for (const TreePattern& v : views) {
    ASSERT_TRUE(v.IsPath());  // partitions of a path are paths
  }
  Expected expected = OracleFingerprint(doc, query);
  Engine engine(&doc, TempPath("pathprop_" + std::to_string(seed) + ".db"));
  std::vector<const MaterializedView*> tuple_views;
  for (const TreePattern& v : views) {
    tuple_views.push_back(engine.AddView(v, Scheme::kTuple));
  }
  RunOptions run;
  run.algorithm = Algorithm::kInterJoin;
  RunResult result = engine.Execute(query, tuple_views, run);
  ASSERT_TRUE(result.ok) << result.error;
  EXPECT_EQ(result.match_count, expected.count) << query.ToString();
  EXPECT_EQ(result.result_hash, expected.hash) << query.ToString();
}

INSTANTIATE_TEST_SUITE_P(RandomPathScenarios, PathDifferentialTest,
                         ::testing::Range(0, 80));

}  // namespace
}  // namespace viewjoin
