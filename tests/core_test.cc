#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/engine.h"
#include "core/segmented_query.h"
#include "core/view_join.h"
#include "tests/test_util.h"
#include "tpq/evaluator.h"

namespace viewjoin {
namespace {

using algo::OutputMode;
using algo::QueryBinding;
using core::Algorithm;
using core::BuildSegmentedQuery;
using core::Engine;
using core::SegmentedQuery;
using storage::MaterializedView;
using storage::Scheme;
using testing::MakeDoc;
using testing::MustParse;
using tpq::Match;
using tpq::TreePattern;

std::string TempPath(const char* name) {
  return std::string(::testing::TempDir()) + name;
}

std::vector<Match> SortedOracle(const xml::Document& doc,
                                const TreePattern& query) {
  std::vector<Match> matches = tpq::NaiveEvaluator(doc, query).Collect();
  tpq::SortMatches(&matches);
  return matches;
}

class SegmentedQueryTest : public ::testing::Test {
 protected:
  SegmentedQueryTest() : catalog_(TempPath("segq.db"), 64) {}

  SegmentedQuery Build(const xml::Document& doc, const TreePattern& query,
                       const std::vector<std::string>& view_paths) {
    views_.clear();
    for (const std::string& path : view_paths) {
      views_.push_back(
          catalog_.Materialize(doc, MustParse(path), Scheme::kLinkedElement));
    }
    std::string error;
    binding_ = QueryBinding::Bind(doc, query, views_, &error);
    VJ_CHECK(binding_.has_value()) << error;
    return BuildSegmentedQuery(*binding_);
  }

  storage::ViewCatalog catalog_;
  std::vector<const MaterializedView*> views_;
  std::optional<QueryBinding> binding_;
};

TEST_F(SegmentedQueryTest, PaperExample41) {
  // Paper Fig. 3: Q = //a[//f]//b[//c]//d//e with views v1 = //a//e[...] —
  // we reproduce the *structure*: views v1 = {a, e, f} (as //a[//e]//f is
  // not a tree over those exact edges, we use the paper's covering:
  // v1 = //a[//f]//e, v2 = //b[//c]//d, v3 covers nothing extra).
  // Inter-view edges: (a,f) intra? f in v1 with a → intra. Use the paper's
  // exact views instead: v1 = //a[//e]//f? The paper gives v1 with nodes
  // {a, e, f}: a--e (ad, not a Q edge) and a--f. Its Q has edges (a,f),
  // (a,b), (b,c), (b,d), (d,e).
  xml::Document doc =
      MakeDoc("r(a(f b(c d(e)) ) a(b(d(e c)) f) )");
  TreePattern query = MustParse("//a[//f]//b[//c]//d//e");
  SegmentedQuery sq =
      Build(doc, query, {"//a[//e]//f", "//b[//c]//d"});
  // Covered: v1 = {a, e, f}, v2 = {b, c, d}.
  // Inter-view edges: (a,b) and (d,e). (a,f) intra, (b,c) intra, (b,d) intra.
  EXPECT_EQ(sq.inter_view_edges, 2);
  int f = query.FindByTag("f");
  int c = query.FindByTag("c");
  int b = query.FindByTag("b");
  int d = query.FindByTag("d");
  int e = query.FindByTag("e");
  // f has no inter-view edge → removed; c likewise.
  EXPECT_FALSE(sq.kept[static_cast<size_t>(f)]);
  EXPECT_FALSE(sq.kept[static_cast<size_t>(c)]);
  EXPECT_TRUE(sq.kept[0]);
  EXPECT_TRUE(sq.kept[static_cast<size_t>(b)]);
  EXPECT_TRUE(sq.kept[static_cast<size_t>(d)]);
  EXPECT_TRUE(sq.kept[static_cast<size_t>(e)]);
  // Segments: {a}, {b d}, {e} — b,d connected by the intra-view edge (b,d).
  ASSERT_EQ(sq.segments.size(), 3u);
  EXPECT_EQ(sq.segment_of[0], sq.root_segment);
  EXPECT_EQ(sq.segment_of[static_cast<size_t>(b)],
            sq.segment_of[static_cast<size_t>(d)]);
  EXPECT_NE(sq.segment_of[static_cast<size_t>(e)],
            sq.segment_of[static_cast<size_t>(d)]);
  // Removed nodes anchored at their view parents: f at a, c at b.
  ASSERT_EQ(sq.removed.size(), 2u);
  EXPECT_EQ(sq.ToString(query), "{a} {b d} {e}");
}

TEST_F(SegmentedQueryTest, SingleViewCollapsesToRootOnly) {
  xml::Document doc = MakeDoc("a(b(c))");
  TreePattern query = MustParse("//a//b//c");
  SegmentedQuery sq = Build(doc, query, {"//a//b//c"});
  EXPECT_EQ(sq.inter_view_edges, 0);
  ASSERT_EQ(sq.segments.size(), 1u);
  EXPECT_EQ(sq.segments[0].nodes.size(), 1u);  // only the root survives
  EXPECT_EQ(sq.removed.size(), 2u);
  // b anchored at a, c anchored at b.
  EXPECT_EQ(sq.removed_anchor[0], 0);
  EXPECT_EQ(sq.removed_anchor[1], query.FindByTag("b"));
}

TEST_F(SegmentedQueryTest, SingleElementViewsKeepEverything) {
  xml::Document doc = MakeDoc("a(b(c))");
  TreePattern query = MustParse("//a//b//c");
  SegmentedQuery sq = Build(doc, query, {"//a", "//b", "//c"});
  EXPECT_EQ(sq.inter_view_edges, 2);
  EXPECT_EQ(sq.segments.size(), 3u);
  EXPECT_TRUE(sq.removed.empty());
}

class ViewJoinTest : public ::testing::Test {
 protected:
  ViewJoinTest() : catalog_(TempPath("vj.db"), 64) {}

  std::vector<Match> Run(const xml::Document& doc, const TreePattern& query,
                         const std::vector<std::string>& view_paths,
                         Scheme scheme, OutputMode mode = OutputMode::kMemory) {
    std::vector<const MaterializedView*> views;
    for (const std::string& path : view_paths) {
      views.push_back(catalog_.Materialize(doc, MustParse(path), scheme));
    }
    std::string error;
    std::optional<QueryBinding> binding =
        QueryBinding::Bind(doc, query, views, &error);
    VJ_CHECK(binding.has_value()) << error;
    SegmentedQuery sq = BuildSegmentedQuery(*binding);
    core::ViewJoin join(&*binding, &sq, catalog_.pool());
    tpq::CollectingSink sink;
    storage::Pager spill(TempPath("vj_spill.db"));
    join.Evaluate(&sink, mode, &spill);
    last_stats_ = join.stats();
    std::vector<Match> matches = sink.matches();
    tpq::SortMatches(&matches);
    return matches;
  }

  storage::ViewCatalog catalog_;
  algo::HolisticStats last_stats_;
};

TEST_F(ViewJoinTest, PathQueryAllSchemes) {
  xml::Document doc = MakeDoc("r(a(b(c) a(b(c c)) b) a(x(b(c))) b(c))");
  TreePattern query = MustParse("//a//b//c");
  std::vector<Match> expected = SortedOracle(doc, query);
  ASSERT_FALSE(expected.empty());
  for (Scheme scheme : {Scheme::kElement, Scheme::kLinkedElement,
                        Scheme::kLinkedElementPartial}) {
    EXPECT_EQ(Run(doc, query, {"//a", "//b", "//c"}, scheme), expected);
    EXPECT_EQ(Run(doc, query, {"//a//b", "//c"}, scheme), expected);
    EXPECT_EQ(Run(doc, query, {"//a//b//c"}, scheme), expected);
    EXPECT_EQ(Run(doc, query, {"//a//c", "//b"}, scheme), expected);
  }
}

TEST_F(ViewJoinTest, TwigQueryWithExtension) {
  xml::Document doc =
      MakeDoc("r(a(f b(c d(e))) a(b(d(e c)) f) a(b(c)) f(a(b(c d(e)))))");
  TreePattern query = MustParse("//a[//f]//b[//c]//d//e");
  std::vector<Match> expected = SortedOracle(doc, query);
  ASSERT_FALSE(expected.empty());
  for (Scheme scheme : {Scheme::kElement, Scheme::kLinkedElement,
                        Scheme::kLinkedElementPartial}) {
    EXPECT_EQ(Run(doc, query, {"//a[//e]//f", "//b[//c]//d"}, scheme),
              expected)
        << SchemeName(scheme);
  }
}

TEST_F(ViewJoinTest, SingleCoveringViewUsesExtensionOnly) {
  xml::Document doc = MakeDoc("r(a(b(c) b) a(a(b(c))))");
  TreePattern query = MustParse("//a//b//c");
  std::vector<Match> expected = SortedOracle(doc, query);
  EXPECT_EQ(Run(doc, query, {"//a//b//c"}, Scheme::kLinkedElement), expected);
  // With a single view only the root list is streamed; b and c arrive via
  // child-pointer extension.
  EXPECT_GT(last_stats_.flushes, 0u);
}

TEST_F(ViewJoinTest, PcEdgesVerifiedAtOutput) {
  xml::Document doc = MakeDoc("r(a(b(c) x(b(x(c)))) a(b(x(c))))");
  TreePattern query = MustParse("//a//b/c");
  std::vector<Match> expected = SortedOracle(doc, query);
  for (Scheme scheme : {Scheme::kElement, Scheme::kLinkedElement}) {
    EXPECT_EQ(Run(doc, query, {"//a", "//b/c"}, scheme), expected);
    EXPECT_EQ(Run(doc, query, {"//a//b", "//c"}, scheme), expected);
  }
}

TEST_F(ViewJoinTest, DiskModeMatchesMemoryMode) {
  xml::Document doc = MakeDoc("r(a(b(c) a(b(c c)) b) a(x(b(c))) b(c))");
  TreePattern query = MustParse("//a//b//c");
  std::vector<Match> expected = SortedOracle(doc, query);
  EXPECT_EQ(Run(doc, query, {"//a//b", "//c"}, Scheme::kLinkedElement,
                OutputMode::kDisk),
            expected);
}

TEST_F(ViewJoinTest, RecursiveNestingWithSkips) {
  // Deep same-tag nesting exercises following-pointer jumps.
  xml::Document doc = MakeDoc(
      "r(a(a(a(b(c)) b) b(c)) d a(b) a(a(b(c))) )");
  TreePattern query = MustParse("//a//b//c");
  std::vector<Match> expected = SortedOracle(doc, query);
  EXPECT_EQ(Run(doc, query, {"//a//b", "//c"}, Scheme::kLinkedElement),
            expected);
}

TEST_F(ViewJoinTest, EmptyResult) {
  xml::Document doc = MakeDoc("r(a(b) b(c))");
  TreePattern query = MustParse("//a//b//c");
  EXPECT_TRUE(
      Run(doc, query, {"//a//b", "//c"}, Scheme::kLinkedElement).empty());
}

class EngineTest : public ::testing::Test {
 protected:
  EngineTest()
      : doc_(MakeDoc("r(a(b(c) a(b(c c)) b) a(x(b(c))) b(c))")),
        engine_(&doc_, TempPath("engine.db")) {}

  xml::Document doc_;
  Engine engine_;
};

TEST_F(EngineTest, ExecuteAllAlgorithmsAgree) {
  TreePattern query = MustParse("//a//b//c");
  uint64_t expected = tpq::NaiveEvaluator(doc_, query).Count();
  auto* le_ab = engine_.AddView("//a//b", Scheme::kLinkedElement);
  auto* le_c = engine_.AddView("//c", Scheme::kLinkedElement);
  auto* t_ab = engine_.AddView("//a//b", Scheme::kTuple);
  auto* t_c = engine_.AddView("//c", Scheme::kTuple);

  core::RunOptions vj{.algorithm = Algorithm::kViewJoin};
  core::RunOptions ts{.algorithm = Algorithm::kTwigStack};
  core::RunOptions ij{.algorithm = Algorithm::kInterJoin};
  core::RunResult r1 = engine_.Execute(query, {le_ab, le_c}, vj);
  core::RunResult r2 = engine_.Execute(query, {le_ab, le_c}, ts);
  core::RunResult r3 = engine_.Execute(query, {t_ab, t_c}, ij);
  ASSERT_TRUE(r1.ok) << r1.error;
  ASSERT_TRUE(r2.ok) << r2.error;
  ASSERT_TRUE(r3.ok) << r3.error;
  EXPECT_EQ(r1.match_count, expected);
  EXPECT_EQ(r2.match_count, expected);
  EXPECT_EQ(r3.match_count, expected);
  EXPECT_EQ(r1.result_hash, r2.result_hash);
  EXPECT_EQ(r1.result_hash, r3.result_hash);
  EXPECT_GT(r1.io.pages_read, 0u);
}

TEST_F(EngineTest, ExecuteReportsBindErrors) {
  TreePattern query = MustParse("//a//b//c");
  auto* le_ab = engine_.AddView("//a//b", Scheme::kLinkedElement);
  core::RunResult r = engine_.Execute(query, {le_ab});
  EXPECT_FALSE(r.ok);
  EXPECT_FALSE(r.error.empty());
}

TEST_F(EngineTest, ExecuteBatchMatchesSequentialExecute) {
  TreePattern q1 = MustParse("//a//b//c");
  TreePattern q2 = MustParse("//a//b");
  TreePattern q3 = MustParse("//b//c");
  auto* ab = engine_.AddView("//a//b", Scheme::kLinkedElement);
  auto* b = engine_.AddView("//b", Scheme::kLinkedElement);
  auto* c = engine_.AddView("//c", Scheme::kLinkedElement);
  std::vector<const TreePattern*> queries = {&q1, &q2, &q3};
  std::vector<std::vector<const MaterializedView*>> views = {
      {ab, c}, {ab}, {b, c}};

  std::vector<core::RunResult> sequential;
  for (size_t i = 0; i < queries.size(); ++i) {
    sequential.push_back(engine_.Execute(*queries[i], views[i]));
    ASSERT_TRUE(sequential.back().ok) << sequential.back().error;
  }

  std::vector<core::BatchQuery> batch;
  for (int rep = 0; rep < 3; ++rep) {
    for (size_t i = 0; i < queries.size(); ++i) {
      batch.push_back({queries[i], views[i]});
    }
  }
  for (size_t threads : {size_t{1}, size_t{4}}) {
    core::BatchOptions options;
    options.threads = threads;
    std::vector<core::RunResult> results = engine_.ExecuteBatch(batch, options);
    ASSERT_EQ(results.size(), batch.size());
    for (size_t i = 0; i < results.size(); ++i) {
      const core::RunResult& ref = sequential[i % queries.size()];
      ASSERT_TRUE(results[i].ok) << results[i].error;
      EXPECT_EQ(results[i].match_count, ref.match_count)
          << threads << " threads, query " << i;
      EXPECT_EQ(results[i].result_hash, ref.result_hash)
          << threads << " threads, query " << i;
      EXPECT_FALSE(results[i].degraded);
    }
  }
}

TEST_F(EngineTest, ExecuteBatchIsolatesBindErrors) {
  TreePattern query = MustParse("//a//b//c");
  auto* ab = engine_.AddView("//a//b", Scheme::kLinkedElement);
  auto* c = engine_.AddView("//c", Scheme::kLinkedElement);
  core::RunResult ref = engine_.Execute(query, {ab, c});
  ASSERT_TRUE(ref.ok) << ref.error;
  std::vector<core::BatchQuery> batch = {
      {&query, {ab, c}},
      {&query, {ab}},  // uncovered query node: bind error
      {&query, {ab, c}},
  };
  core::BatchOptions options;
  options.threads = 3;
  std::vector<core::RunResult> results = engine_.ExecuteBatch(batch, options);
  ASSERT_EQ(results.size(), 3u);
  EXPECT_TRUE(results[0].ok) << results[0].error;
  EXPECT_FALSE(results[1].ok);
  EXPECT_FALSE(results[1].error.empty());
  EXPECT_TRUE(results[2].ok) << results[2].error;
  EXPECT_EQ(results[0].result_hash, ref.result_hash);
  EXPECT_EQ(results[2].result_hash, ref.result_hash);
}

TEST_F(EngineTest, ExecuteBatchHandlesEmptyAndOversubscribedBatches) {
  EXPECT_TRUE(engine_.ExecuteBatch({}).empty());
  TreePattern query = MustParse("//a//b");
  auto* ab = engine_.AddView("//a//b", Scheme::kLinkedElement);
  core::RunResult ref = engine_.Execute(query, {ab});
  ASSERT_TRUE(ref.ok) << ref.error;
  core::BatchOptions options;
  options.threads = 8;  // clamped to the batch size
  std::vector<core::RunResult> results =
      engine_.ExecuteBatch({{&query, {ab}}}, options);
  ASSERT_EQ(results.size(), 1u);
  ASSERT_TRUE(results[0].ok) << results[0].error;
  EXPECT_EQ(results[0].result_hash, ref.result_hash);
}

TEST_F(EngineTest, SelectAndExecuteCoversQuery) {
  TreePattern query = MustParse("//a//b//c");
  std::vector<TreePattern> candidates = {
      MustParse("//a//b"), MustParse("//a"), MustParse("//b"),
      MustParse("//c"), MustParse("//b//c")};
  view::SelectionResult selection;
  core::RunResult r = engine_.SelectAndExecute(
      query, candidates, Scheme::kLinkedElement, {}, &selection);
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_TRUE(selection.covers);
  EXPECT_EQ(r.match_count, tpq::NaiveEvaluator(doc_, query).Count());
}

}  // namespace
}  // namespace viewjoin
