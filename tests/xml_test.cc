#include <gtest/gtest.h>

#include "tests/test_util.h"
#include "xml/document.h"
#include "xml/label.h"
#include "xml/parser.h"
#include "xml/writer.h"

namespace viewjoin {
namespace {

using testing::MakeDoc;
using xml::Document;
using xml::Label;
using xml::NodeId;

TEST(LabelTest, StructuralPredicates) {
  Label a{1, 10, 1};
  Label b{2, 5, 2};
  Label c{3, 4, 3};
  Label d{6, 7, 2};
  EXPECT_TRUE(IsAncestor(a, b));
  EXPECT_TRUE(IsAncestor(a, c));
  EXPECT_TRUE(IsAncestor(b, c));
  EXPECT_FALSE(IsAncestor(b, d));
  EXPECT_TRUE(IsParent(a, b));
  EXPECT_FALSE(IsParent(a, c));
  EXPECT_TRUE(IsParent(b, c));
  EXPECT_TRUE(IsFollowing(b, d));
  EXPECT_FALSE(IsFollowing(a, d));
}

TEST(DocumentTest, BuildAssignsRegionLabels) {
  Document doc = MakeDoc("a(b(c) d)");
  ASSERT_EQ(doc.NodeCount(), 4u);
  // Node ids are document order; labels nest properly.
  const Label& a = doc.NodeLabel(0);
  const Label& b = doc.NodeLabel(1);
  const Label& c = doc.NodeLabel(2);
  const Label& d = doc.NodeLabel(3);
  EXPECT_EQ(a.level, 1u);
  EXPECT_EQ(b.level, 2u);
  EXPECT_EQ(c.level, 3u);
  EXPECT_EQ(d.level, 2u);
  EXPECT_TRUE(IsAncestor(a, b));
  EXPECT_TRUE(IsAncestor(a, d));
  EXPECT_TRUE(IsParent(b, c));
  EXPECT_TRUE(IsFollowing(c, d));
  EXPECT_LT(b.end, d.start);
}

TEST(DocumentTest, ParentChildSiblingLinks) {
  Document doc = MakeDoc("a(b(c) d)");
  EXPECT_EQ(doc.Root(), 0u);
  EXPECT_EQ(doc.Parent(0), xml::kInvalidNode);
  EXPECT_EQ(doc.Parent(1), 0u);
  EXPECT_EQ(doc.Parent(2), 1u);
  EXPECT_EQ(doc.Parent(3), 0u);
  EXPECT_EQ(doc.FirstChild(0), 1u);
  EXPECT_EQ(doc.NextSibling(1), 3u);
  EXPECT_EQ(doc.NextSibling(3), xml::kInvalidNode);
  EXPECT_EQ(doc.FirstChild(2), xml::kInvalidNode);
}

TEST(DocumentTest, TagInterningAndLists) {
  Document doc = MakeDoc("a(b b(b) c)");
  xml::TagId b = doc.FindTag("b");
  ASSERT_NE(b, xml::kInvalidTag);
  const std::vector<NodeId>& list = doc.NodesOfTag(b);
  ASSERT_EQ(list.size(), 3u);
  // Document order = ascending start labels.
  for (size_t i = 1; i < list.size(); ++i) {
    EXPECT_LT(doc.NodeLabel(list[i - 1]).start, doc.NodeLabel(list[i]).start);
  }
  EXPECT_EQ(doc.FindTag("zzz"), xml::kInvalidTag);
  EXPECT_TRUE(doc.NodesOfTag(xml::kInvalidTag).empty());
}

TEST(DocumentTest, FindByStart) {
  Document doc = MakeDoc("a(b(c) b)");
  xml::TagId b = doc.FindTag("b");
  for (NodeId n : doc.NodesOfTag(b)) {
    EXPECT_EQ(doc.FindByStart(b, doc.NodeLabel(n).start), n);
  }
  EXPECT_EQ(doc.FindByStart(b, 9999), xml::kInvalidNode);
}

TEST(ParserTest, ParsesNestedElements) {
  auto result = xml::ParseDocument("<a><b><c/></b><d>text</d></a>");
  ASSERT_TRUE(result.ok()) << result.error;
  const Document& doc = *result.document;
  ASSERT_EQ(doc.NodeCount(), 4u);
  EXPECT_EQ(doc.TagName(doc.NodeTag(0)), "a");
  EXPECT_EQ(doc.TagName(doc.NodeTag(2)), "c");
  EXPECT_TRUE(doc.IsAncestor(0, 3));
  EXPECT_FALSE(doc.IsAncestor(1, 3));
}

TEST(ParserTest, SkipsPrologCommentsAndAttributes) {
  auto result = xml::ParseDocument(
      "<?xml version=\"1.0\"?><!-- comment --><a id=\"1\" x='<b>'>"
      "<![CDATA[<fake>]]><b/></a>");
  ASSERT_TRUE(result.ok()) << result.error;
  EXPECT_EQ(result.document->NodeCount(), 2u);
}

TEST(ParserTest, TextAdvancesLabelPositions) {
  auto with_text = xml::ParseDocument("<a>hello<b/>world</a>");
  auto without = xml::ParseDocument("<a><b/></a>");
  ASSERT_TRUE(with_text.ok());
  ASSERT_TRUE(without.ok());
  // Text between tags consumes label positions, so the 'a' region widens.
  EXPECT_GT(with_text.document->NodeLabel(0).end,
            without.document->NodeLabel(0).end);
}

TEST(ParserTest, RejectsMalformedInput) {
  EXPECT_FALSE(xml::ParseDocument("").ok());
  EXPECT_FALSE(xml::ParseDocument("<a><b></a></b>").ok());
  EXPECT_FALSE(xml::ParseDocument("<a>").ok());
  EXPECT_FALSE(xml::ParseDocument("</a>").ok());
  EXPECT_FALSE(xml::ParseDocument("<a/><b/>").ok());
  EXPECT_FALSE(xml::ParseDocument("<a><!-- unterminated</a>").ok());
  EXPECT_FALSE(xml::ParseDocument("<a attr=\"unterminated></a>").ok());
}

TEST(WriterTest, RoundTripsThroughParser) {
  Document doc = MakeDoc("site(regions(item(name) item) people(person(name)))");
  std::string xml_text = xml::WriteDocument(doc);
  auto reparsed = xml::ParseDocument(xml_text);
  ASSERT_TRUE(reparsed.ok()) << reparsed.error;
  ASSERT_EQ(reparsed.document->NodeCount(), doc.NodeCount());
  for (NodeId n = 0; n < doc.NodeCount(); ++n) {
    EXPECT_EQ(doc.TagName(doc.NodeTag(n)),
              reparsed.document->TagName(reparsed.document->NodeTag(n)));
    EXPECT_EQ(doc.NodeLabel(n).level, reparsed.document->NodeLabel(n).level);
  }
}

TEST(WriterTest, SerializedSizeMatchesString) {
  Document doc = MakeDoc("a(b(c) d)");
  EXPECT_EQ(xml::SerializedSize(doc), xml::WriteDocument(doc).size());
  xml::WriterOptions options;
  options.synthetic_text = true;
  EXPECT_EQ(xml::SerializedSize(doc, options),
            xml::WriteDocument(doc, options).size());
}

TEST(WriterTest, IndentedOutputStaysWellFormed) {
  Document doc = MakeDoc("a(b(c) d)");
  xml::WriterOptions options;
  options.indent = 2;
  auto reparsed = xml::ParseDocument(xml::WriteDocument(doc, options));
  ASSERT_TRUE(reparsed.ok()) << reparsed.error;
  EXPECT_EQ(reparsed.document->NodeCount(), doc.NodeCount());
}

}  // namespace
}  // namespace viewjoin
