// Query-server tests: wire encoding, token-bucket quotas, end-to-end serving
// over real TCP, overload shedding, slowloris reaping, injected network
// faults, and the drain/shutdown races (SIGTERM mid-query, drain during
// scrubber activity, double-signal hard kill). The races are the point —
// this binary runs under the TSan matrix job, where a lock ordering or
// notify-without-lock bug in the drain path becomes a hard failure.
//
// main() arms simulated per-page read latency (sleep mode) before the pager
// caches the knob, so the big-document queries used by the drain tests run
// hundreds of milliseconds — long enough that "drain while a query is in
// flight" is a real interleaving, not a lucky no-op.

#include <gtest/gtest.h>
#include <sys/socket.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <filesystem>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/engine.h"
#include "server/client.h"
#include "server/net.h"
#include "server/server.h"
#include "server/token_bucket.h"
#include "server/wire.h"
#include "storage/fsck.h"
#include "tests/test_util.h"
#include "util/fault_injection.h"
#include "util/status.h"
#include "xml/document.h"

namespace viewjoin {
namespace {

using core::Engine;
using core::EngineOptions;
using server::Client;
using server::Conn;
using server::QueryRequest;
using server::QueryResponse;
using server::QueryServer;
using server::ServerOptions;
using server::StatusResponse;
using server::TenantQuotas;
using server::TokenBucket;
using server::Verdict;
using util::SocketEnd;
using util::SocketFault;
using util::SocketFaultInjector;

std::string TempPath(const std::string& name) {
  return std::string(::testing::TempDir()) + name;
}

/// `groups` independent a(b(c)) subtrees: //a//b//c matches `groups` times.
xml::Document GroupDoc(int groups) {
  xml::Document doc;
  doc.StartElement("r");
  for (int i = 0; i < groups; ++i) {
    doc.StartElement("a");
    doc.StartElement("b");
    doc.StartElement("c");
    doc.EndElement();
    doc.EndElement();
    doc.EndElement();
  }
  doc.EndElement();
  return doc;
}

QueryRequest GroupRequest() {
  QueryRequest request;
  request.query = "//a//b//c";
  request.views = {"//a//b", "//c"};
  request.scheme = "LE";
  request.algorithm = "VJ";
  return request;
}

/// One server over its own document and engine, torn down by Drain().
struct Fixture {
  explicit Fixture(int groups, ServerOptions options = {},
                   EngineOptions engine_options = {},
                   const std::string& name = "server_test.db")
      : doc(GroupDoc(groups)) {
    // A leftover persistent store from a previous run would be recovered
    // instead of created; every test starts from nothing.
    std::filesystem::remove(TempPath(name));
    std::filesystem::remove(TempPath(name) + ".manifest");
    engine = std::make_unique<Engine>(&doc, TempPath(name), engine_options);
    server = std::make_unique<QueryServer>(engine.get(), options);
    util::Status started = server->Start();
    EXPECT_TRUE(started.ok()) << started.ToString();
  }

  ~Fixture() {
    if (server != nullptr) server->Drain();
  }

  Client Connected() {
    Client client;
    util::Status status = client.Connect("127.0.0.1", server->port(), 5000);
    EXPECT_TRUE(status.ok()) << status.ToString();
    return client;
  }

  xml::Document doc;
  std::unique_ptr<Engine> engine;
  std::unique_ptr<QueryServer> server;
};

/// Disarms socket faults on scope exit so a failing test cannot leak an
/// armed fault into the next one.
struct ScopedSocketFaults {
  ScopedSocketFaults() { SocketFaultInjector::Global().Reset(); }
  ~ScopedSocketFaults() { SocketFaultInjector::Global().Reset(); }
};

/// Polls `predicate` (on the server snapshot) until true or ~2s elapsed.
bool WaitFor(QueryServer* server,
             const std::function<bool(const StatusResponse&)>& predicate) {
  for (int i = 0; i < 400; ++i) {
    if (predicate(server->Snapshot())) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  StatusResponse s = server->Snapshot();
  ADD_FAILURE() << "WaitFor timed out; accepted=" << s.connections_accepted
                << " queued=" << s.queued_connections
                << " in_flight=" << s.in_flight << " served="
                << s.queries_served << " shed=" << s.rejected_shed
                << " timeouts=" << s.read_timeouts
                << " frame_errors=" << s.frame_errors;
  return false;
}

// ---- Wire ------------------------------------------------------------------

TEST(WireTest, QueryRequestRoundTrips) {
  QueryRequest in;
  in.tenant = "tenant-7";
  in.query = "//a//b[c]";
  in.views = {"//a//b", "//c", ""};
  in.scheme = "LE_p";
  in.algorithm = "TS";
  in.deadline_ms = 1234.5;
  in.count_only = true;

  std::string payload = server::EncodeQueryRequest(in);
  ASSERT_EQ(*server::PeekType(payload), server::MsgType::kQueryRequest);
  QueryRequest out;
  ASSERT_TRUE(server::DecodeQueryRequest(payload, &out).ok());
  EXPECT_EQ(out.tenant, in.tenant);
  EXPECT_EQ(out.query, in.query);
  EXPECT_EQ(out.views, in.views);
  EXPECT_EQ(out.scheme, in.scheme);
  EXPECT_EQ(out.algorithm, in.algorithm);
  EXPECT_DOUBLE_EQ(out.deadline_ms, in.deadline_ms);
  EXPECT_EQ(out.count_only, in.count_only);
}

TEST(WireTest, QueryResponseRoundTrips) {
  QueryResponse in;
  in.verdict = Verdict::kRejected;
  in.error = "over quota";
  in.retry_after_ms = 250.25;
  in.match_count = 42;
  in.result_hash = 0xDEADBEEFCAFEF00Dull;
  in.server_ms = 3.5;
  in.degraded = true;
  in.pages_read = 17;
  in.attempts = 3;

  std::string payload = server::EncodeQueryResponse(in);
  QueryResponse out;
  ASSERT_TRUE(server::DecodeQueryResponse(payload, &out).ok());
  EXPECT_EQ(out.verdict, in.verdict);
  EXPECT_EQ(out.error, in.error);
  EXPECT_DOUBLE_EQ(out.retry_after_ms, in.retry_after_ms);
  EXPECT_EQ(out.match_count, in.match_count);
  EXPECT_EQ(out.result_hash, in.result_hash);
  EXPECT_EQ(out.degraded, in.degraded);
  EXPECT_EQ(out.pages_read, in.pages_read);
  EXPECT_EQ(out.attempts, in.attempts);
}

TEST(WireTest, StatusResponseRoundTrips) {
  StatusResponse in;
  in.healthy = true;
  in.ready = false;
  in.draining = true;
  in.in_flight = 3;
  in.queued_connections = 5;
  in.connections_accepted = 100;
  in.queries_served = 90;
  in.rejected_quota = 4;
  in.rejected_shed = 2;
  in.rejected_draining = 1;
  in.read_timeouts = 7;
  in.frame_errors = 8;
  in.views_cached = 6;

  std::string payload = server::EncodeStatusResponse(in);
  StatusResponse out;
  ASSERT_TRUE(server::DecodeStatusResponse(payload, &out).ok());
  EXPECT_EQ(out.ready, in.ready);
  EXPECT_EQ(out.draining, in.draining);
  EXPECT_EQ(out.in_flight, in.in_flight);
  EXPECT_EQ(out.queued_connections, in.queued_connections);
  EXPECT_EQ(out.connections_accepted, in.connections_accepted);
  EXPECT_EQ(out.queries_served, in.queries_served);
  EXPECT_EQ(out.rejected_quota, in.rejected_quota);
  EXPECT_EQ(out.rejected_shed, in.rejected_shed);
  EXPECT_EQ(out.rejected_draining, in.rejected_draining);
  EXPECT_EQ(out.read_timeouts, in.read_timeouts);
  EXPECT_EQ(out.frame_errors, in.frame_errors);
  EXPECT_EQ(out.views_cached, in.views_cached);
}

TEST(WireTest, MalformedPayloadsAreTypedErrors) {
  EXPECT_FALSE(server::PeekType("").ok());
  EXPECT_FALSE(server::PeekType(std::string(1, '\x7F')).ok());

  // Truncation anywhere inside the body is an error, not a mis-parse.
  std::string payload = server::EncodeQueryRequest(GroupRequest());
  for (size_t len : {size_t{1}, payload.size() / 2, payload.size() - 1}) {
    QueryRequest out;
    EXPECT_FALSE(
        server::DecodeQueryRequest(payload.substr(0, len), &out).ok())
        << "prefix of " << len;
  }
  // Trailing garbage too: a frame is exactly one message.
  QueryRequest out;
  EXPECT_FALSE(server::DecodeQueryRequest(payload + "x", &out).ok());
}

TEST(WireTest, FrameHeaderValidatesMagicAndCap) {
  uint8_t header[server::kFrameHeaderBytes];
  server::EncodeFrameHeader(100, header);
  ASSERT_EQ(*server::DecodeFrameHeader(header, 1024), 100u);

  util::StatusOr<uint32_t> over = server::DecodeFrameHeader(header, 64);
  ASSERT_FALSE(over.ok());
  EXPECT_EQ(over.status().code(), util::StatusCode::kResourceExhausted);

  header[0] ^= 0xFF;  // bad magic: the peer is not speaking this protocol
  util::StatusOr<uint32_t> bad = server::DecodeFrameHeader(header, 1024);
  ASSERT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), util::StatusCode::kCorruption);
}

// ---- Token bucket ----------------------------------------------------------

TEST(TokenBucketTest, RefillsAtConfiguredRate) {
  // 10 tokens/sec, burst 2, with a caller-supplied clock: fully deterministic.
  TokenBucket bucket(10.0, 2.0, 0);
  double retry_after = 0;
  EXPECT_TRUE(bucket.TryAcquire(0, &retry_after));
  EXPECT_TRUE(bucket.TryAcquire(0, &retry_after));
  EXPECT_FALSE(bucket.TryAcquire(0, &retry_after));
  // Empty bucket at 10/sec: the next token exists in 100 ms.
  EXPECT_NEAR(retry_after, 100.0, 1.0);

  // 100 ms later exactly one token has refilled.
  int64_t t = 100 * 1000 * 1000;
  EXPECT_TRUE(bucket.TryAcquire(t, &retry_after));
  EXPECT_FALSE(bucket.TryAcquire(t, &retry_after));

  // Refill is capped at burst, not unbounded.
  t += 60ll * 1000 * 1000 * 1000;
  EXPECT_TRUE(bucket.TryAcquire(t, &retry_after));
  EXPECT_TRUE(bucket.TryAcquire(t, &retry_after));
  EXPECT_FALSE(bucket.TryAcquire(t, &retry_after));
}

TEST(TokenBucketTest, TenantsAreIsolated) {
  TenantQuotas quotas(/*rate_per_sec=*/1.0, /*burst=*/1.0);
  double retry_after = 0;
  EXPECT_TRUE(quotas.TryAcquire("alice", 0, &retry_after));
  EXPECT_FALSE(quotas.TryAcquire("alice", 0, &retry_after));
  EXPECT_GT(retry_after, 0);
  // Alice's exhaustion must not tax Bob.
  EXPECT_TRUE(quotas.TryAcquire("bob", 0, &retry_after));

  // rate <= 0 disables quotas entirely.
  TenantQuotas off(0, 1.0);
  for (int i = 0; i < 100; ++i) {
    EXPECT_TRUE(off.TryAcquire("anyone", 0, nullptr));
  }
}

// ---- End-to-end serving ----------------------------------------------------

TEST(ServerTest, ServesQueriesOverTcp) {
  Fixture fx(50, {}, {}, "serve_e2e.db");
  core::RunResult reference = fx.engine->Execute(
      testing::MustParse("//a//b//c"),
      {fx.engine->AddView("//a//b", storage::Scheme::kLinkedElement),
       fx.engine->AddView("//c", storage::Scheme::kLinkedElement)});
  ASSERT_TRUE(reference.ok) << reference.error;

  Client client = fx.Connected();
  // Keep-alive: several queries down one connection.
  for (int i = 0; i < 3; ++i) {
    util::StatusOr<QueryResponse> response = client.Query(GroupRequest());
    ASSERT_TRUE(response.ok()) << response.status().ToString();
    EXPECT_EQ(response->verdict, Verdict::kOk) << response->error;
    EXPECT_EQ(response->match_count, 50u);
    EXPECT_EQ(response->result_hash, reference.result_hash);
  }

  util::StatusOr<StatusResponse> status = client.GetStatus();
  ASSERT_TRUE(status.ok());
  EXPECT_TRUE(status->healthy);
  EXPECT_TRUE(status->ready);
  EXPECT_FALSE(status->draining);
  EXPECT_EQ(status->queries_served, 3u);
  EXPECT_GE(status->views_cached, 2u);
}

TEST(ServerTest, BadQueryIsTypedErrorAndServerSurvives) {
  Fixture fx(10, {}, {}, "serve_bad_query.db");
  Client client = fx.Connected();

  QueryRequest bad = GroupRequest();
  bad.query = "((((not an xpath";
  util::StatusOr<QueryResponse> response = client.Query(bad);
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  EXPECT_EQ(response->verdict, Verdict::kError);
  EXPECT_FALSE(response->error.empty());

  // The same connection still works afterwards.
  response = client.Query(GroupRequest());
  ASSERT_TRUE(response.ok());
  EXPECT_EQ(response->verdict, Verdict::kOk) << response->error;
}

TEST(ServerTest, OverQuotaIsRejectedWithRetryAfter) {
  ServerOptions options;
  options.quota_rate_per_sec = 0.001;  // effectively: the burst and no more
  options.quota_burst = 2;
  Fixture fx(10, options, {}, "serve_quota.db");
  Client client = fx.Connected();

  for (int i = 0; i < 2; ++i) {
    util::StatusOr<QueryResponse> response = client.Query(GroupRequest());
    ASSERT_TRUE(response.ok());
    ASSERT_EQ(response->verdict, Verdict::kOk) << response->error;
  }
  util::StatusOr<QueryResponse> over = client.Query(GroupRequest());
  ASSERT_TRUE(over.ok()) << over.status().ToString();
  EXPECT_EQ(over->verdict, Verdict::kRejected);
  EXPECT_GT(over->retry_after_ms, 0);

  // A different tenant is not taxed by this one's exhaustion.
  QueryRequest other = GroupRequest();
  other.tenant = "other";
  util::StatusOr<QueryResponse> ok = client.Query(other);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(ok->verdict, Verdict::kOk) << ok->error;
  EXPECT_EQ(fx.server->Snapshot().rejected_quota, 1u);
}

TEST(ServerTest, QueueHighWaterShedsBeforeReadingRequest) {
  ServerOptions options;
  options.workers = 1;
  options.max_pending = 1;
  Fixture fx(10, options, {}, "serve_shed.db");

  // One idle connection occupies the single worker; a second sits in the
  // pending queue at its high water. Both send nothing. The connects are
  // sequenced on the snapshot so the first is *claimed* by the worker before
  // the second arrives — otherwise the second could be the one shed.
  util::StatusOr<Conn> busy = Conn::Connect("127.0.0.1", fx.server->port());
  ASSERT_TRUE(busy.ok());
  ASSERT_TRUE(WaitFor(fx.server.get(), [](const StatusResponse& s) {
    return s.connections_accepted == 1 && s.queued_connections == 0;
  }));
  util::StatusOr<Conn> queued = Conn::Connect("127.0.0.1", fx.server->port());
  ASSERT_TRUE(queued.ok());
  ASSERT_TRUE(WaitFor(fx.server.get(), [](const StatusResponse& s) {
    return s.connections_accepted == 2 && s.queued_connections == 1;
  }));

  // The third connection is shed: a typed kRejected with Retry-After arrives
  // even though this client never got to send its request.
  Client client = fx.Connected();
  util::StatusOr<QueryResponse> shed = client.Query(GroupRequest());
  ASSERT_TRUE(shed.ok()) << shed.status().ToString();
  EXPECT_EQ(shed->verdict, Verdict::kRejected);
  EXPECT_GT(shed->retry_after_ms, 0);
  EXPECT_EQ(fx.server->Snapshot().rejected_shed, 1u);
}

TEST(ServerTest, MemoryHighWaterSheds) {
  ServerOptions options;
  options.workers = 4;
  options.per_query_memory_budget = 1 << 20;
  options.memory_high_water_bytes = 1;  // any admission would cross it
  Fixture fx(10, options, {}, "serve_mem_shed.db");

  Client client = fx.Connected();
  util::StatusOr<QueryResponse> shed = client.Query(GroupRequest());
  ASSERT_TRUE(shed.ok());
  EXPECT_EQ(shed->verdict, Verdict::kRejected);
  EXPECT_EQ(fx.server->Snapshot().rejected_shed, 1u);
}

TEST(ServerTest, SlowlorisConnIsReaped) {
  ServerOptions options;
  options.workers = 1;
  options.read_deadline_ms = 100;
  Fixture fx(10, options, {}, "serve_slowloris.db");

  // A peer that sends half a frame header and stalls forever costs the
  // worker one read deadline, not a pinned thread.
  util::StatusOr<Conn> conn = Conn::Connect("127.0.0.1", fx.server->port());
  ASSERT_TRUE(conn.ok());
  uint8_t header[server::kFrameHeaderBytes];
  server::EncodeFrameHeader(16, header);
  ASSERT_EQ(::send(conn->fd(), header, 4, 0), 4);

  ASSERT_TRUE(WaitFor(fx.server.get(), [](const StatusResponse& s) {
    return s.read_timeouts >= 1;
  }));

  // And the worker is free again for real clients.
  Client client = fx.Connected();
  util::StatusOr<QueryResponse> response = client.Query(GroupRequest());
  ASSERT_TRUE(response.ok());
  EXPECT_EQ(response->verdict, Verdict::kOk) << response->error;
}

TEST(ServerTest, OversizedFrameDeclarationIsRefusedCheaply) {
  ServerOptions options;
  options.max_frame_bytes = 4096;
  Fixture fx(10, options, {}, "serve_cap.db");

  // Declare a 64 MiB payload. The server must refuse on the 8-byte header —
  // no allocation, no read — and close.
  util::StatusOr<Conn> conn = Conn::Connect("127.0.0.1", fx.server->port());
  ASSERT_TRUE(conn.ok());
  uint8_t header[server::kFrameHeaderBytes];
  server::EncodeFrameHeader(64u << 20, header);
  ASSERT_EQ(::send(conn->fd(), header, sizeof(header), 0),
            static_cast<ssize_t>(sizeof(header)));

  ASSERT_TRUE(WaitFor(fx.server.get(), [](const StatusResponse& s) {
    return s.frame_errors >= 1;
  }));
  // The refusal is typed — an error response — and then the server hangs up.
  conn->set_read_deadline_ms(2000);
  util::StatusOr<std::string> refusal = conn->RecvFrame(4096);
  ASSERT_TRUE(refusal.ok()) << refusal.status().ToString();
  QueryResponse response;
  ASSERT_TRUE(server::DecodeQueryResponse(*refusal, &response).ok());
  EXPECT_EQ(response.verdict, Verdict::kError);
  EXPECT_FALSE(conn->RecvFrame(4096).ok());  // connection was closed on us
}

TEST(ServerTest, GarbagePayloadCountsAsFrameErrorAndServerSurvives) {
  Fixture fx(10, {}, {}, "serve_garbage.db");
  util::StatusOr<Conn> conn = Conn::Connect("127.0.0.1", fx.server->port());
  ASSERT_TRUE(conn.ok());
  conn->set_write_deadline_ms(2000);
  ASSERT_TRUE(conn->SendFrame(std::string("\x7Fgarbage"),
                              server::kDefaultMaxFrameBytes)
                  .ok());
  ASSERT_TRUE(WaitFor(fx.server.get(), [](const StatusResponse& s) {
    return s.frame_errors >= 1;
  }));

  Client client = fx.Connected();
  util::StatusOr<QueryResponse> response = client.Query(GroupRequest());
  ASSERT_TRUE(response.ok());
  EXPECT_EQ(response->verdict, Verdict::kOk) << response->error;
}

// ---- Injected network faults -----------------------------------------------

TEST(ServerFaultTest, ShortReadsAndWritesAreTransparent) {
  ScopedSocketFaults guard;
  Fixture fx(20, {}, {}, "serve_short_io.db");
  Client client = fx.Connected();

  // Every server-side recv and client-side send dribbles 1 byte per syscall:
  // the framing layer must still assemble complete messages.
  SocketFaultInjector::Global().ArmRecvFault(SocketFault::kShortRead,
                                             /*nth=*/1, /*count=*/-1,
                                             SocketEnd::kServer);
  SocketFaultInjector::Global().ArmSendFault(SocketFault::kShortWrite,
                                             /*nth=*/1, /*count=*/-1,
                                             SocketEnd::kClient);
  util::StatusOr<QueryResponse> response = client.Query(GroupRequest());
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  EXPECT_EQ(response->verdict, Verdict::kOk) << response->error;
  EXPECT_EQ(response->match_count, 20u);
  EXPECT_GT(SocketFaultInjector::Global().injected_faults(), 0u);
}

TEST(ServerFaultTest, ClientResetMidRequestLeavesServerHealthy) {
  ScopedSocketFaults guard;
  Fixture fx(20, {}, {}, "serve_reset.db");

  {
    Client victim = fx.Connected();
    // The victim's first send becomes an abortive close: the server sees a
    // real RST mid-request.
    SocketFaultInjector::Global().ArmSendFault(SocketFault::kReset,
                                               /*nth=*/1, /*count=*/1,
                                               SocketEnd::kClient);
    util::StatusOr<QueryResponse> doomed = victim.Query(GroupRequest());
    EXPECT_FALSE(doomed.ok());
  }
  SocketFaultInjector::Global().Reset();

  // The server shrugged it off: healthy, and still serving.
  Client client = fx.Connected();
  util::StatusOr<QueryResponse> response = client.Query(GroupRequest());
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  EXPECT_EQ(response->verdict, Verdict::kOk) << response->error;
  EXPECT_TRUE(fx.server->Snapshot().healthy);
}

TEST(ServerFaultTest, StalledServerSendIsBoundedByClientDeadline) {
  ScopedSocketFaults guard;
  Fixture fx(20, {}, {}, "serve_stall.db");
  Client client = fx.Connected();

  // A 50 ms stall on the server's sends is absorbed; the round trip still
  // completes inside the client's deadline.
  SocketFaultInjector::Global().set_stall_ms(50);
  SocketFaultInjector::Global().ArmSendFault(SocketFault::kStall,
                                             /*nth=*/1, /*count=*/1,
                                             SocketEnd::kServer);
  client.set_deadline_ms(5000);
  util::StatusOr<QueryResponse> response = client.Query(GroupRequest());
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  EXPECT_EQ(response->verdict, Verdict::kOk) << response->error;
}

// ---- Drain and shutdown races ----------------------------------------------
//
// These run against the big slow-read document (see main()): one query takes
// hundreds of milliseconds, so a drain issued 50 ms in genuinely overlaps
// execution.

constexpr int kSlowGroups = 20000;

TEST(DrainTest, DrainFinishesInFlightQueriesAndStoreIsClean) {
  std::string store = TempPath("drain_inflight.db");
  EngineOptions engine_options;
  engine_options.persistent = true;
  ServerOptions options;
  options.drain_deadline_ms = 60000;
  {
    Fixture fx(kSlowGroups, options, engine_options, "drain_inflight.db");

    std::atomic<bool> done{false};
    util::StatusOr<QueryResponse> response =
        util::Status::IoError("never ran");
    std::thread querier([&] {
      Client client = fx.Connected();
      client.set_deadline_ms(120000);
      QueryRequest request = GroupRequest();
      request.deadline_ms = 60000;
      response = client.Query(request);
      done.store(true);
    });

    ASSERT_TRUE(WaitFor(fx.server.get(), [](const StatusResponse& s) {
      return s.in_flight >= 1;
    }));
    EXPECT_TRUE(fx.server->Drain());  // clean: the query got to finish
    querier.join();
    ASSERT_TRUE(done.load());
    ASSERT_TRUE(response.ok()) << response.status().ToString();
    EXPECT_EQ(response->verdict, Verdict::kOk) << response->error;
    EXPECT_EQ(response->match_count, static_cast<uint64_t>(kSlowGroups));

    // Post-drain the server refuses new work instead of hanging: either the
    // connect itself is refused (listener gone) or the query is bounced.
    Client late;
    late.set_deadline_ms(2000);
    if (late.Connect("127.0.0.1", fx.server->port(), 1000).ok()) {
      util::StatusOr<QueryResponse> refused = late.Query(GroupRequest());
      EXPECT_FALSE(refused.ok() && refused->verdict == Verdict::kOk);
    }
  }
  // The catalog was closed crash-safely: fsck finds a clean store.
  storage::FsckCatalogReport report = storage::FsckCatalog(store);
  EXPECT_FALSE(report.corrupt());
  EXPECT_FALSE(report.repair_needed());
}

TEST(DrainTest, DrainDeadlineAbortsStuckQueries) {
  ServerOptions options;
  options.drain_deadline_ms = 100;  // far shorter than the query
  Fixture fx(kSlowGroups, options, {}, "drain_abort.db");

  util::StatusOr<QueryResponse> response = util::Status::IoError("never ran");
  std::thread querier([&] {
    Client client = fx.Connected();
    client.set_deadline_ms(120000);
    QueryRequest request = GroupRequest();
    request.deadline_ms = 60000;
    response = client.Query(request);
  });
  ASSERT_TRUE(WaitFor(fx.server.get(), [](const StatusResponse& s) {
    return s.in_flight >= 1;
  }));

  // The drain budget expires mid-query: the watchdog aborts it, drain
  // reports "forced", and the client still gets a typed verdict.
  EXPECT_FALSE(fx.server->Drain());
  querier.join();
  if (response.ok()) {
    EXPECT_NE(response->verdict, Verdict::kOk);
  }
}

TEST(DrainTest, HardKillUnblocksAPatientDrain) {
  ServerOptions options;
  options.drain_deadline_ms = 600000;  // patient enough to need the kill
  Fixture fx(kSlowGroups, options, {}, "drain_hardkill.db");

  std::thread querier([&] {
    Client client = fx.Connected();
    client.set_deadline_ms(120000);
    QueryRequest request = GroupRequest();
    request.deadline_ms = 60000;
    (void)client.Query(request);
  });
  ASSERT_TRUE(WaitFor(fx.server.get(), [](const StatusResponse& s) {
    return s.in_flight >= 1;
  }));

  std::atomic<bool> drain_returned{false};
  bool clean = true;
  std::thread drainer([&] {
    clean = fx.server->Drain();
    drain_returned.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  ASSERT_FALSE(drain_returned.load());  // drain is waiting on the query

  fx.server->HardKill();  // the double-SIGTERM path
  drainer.join();
  EXPECT_FALSE(clean);
  querier.join();
}

TEST(DrainTest, DrainWhileScrubberIsRunning) {
  // The scrubber steps every millisecond while queries flow; Drain() must
  // stop it before closing the catalog, never after (use-after-close) —
  // under TSan this interleaving is checked for real.
  EngineOptions engine_options;
  engine_options.persistent = true;
  engine_options.scrub = true;
  engine_options.scrub_interval_ms = 1;
  Fixture fx(100, {}, engine_options, "drain_scrub.db");

  Client client = fx.Connected();
  for (int i = 0; i < 5; ++i) {
    util::StatusOr<QueryResponse> response = client.Query(GroupRequest());
    ASSERT_TRUE(response.ok());
    ASSERT_EQ(response->verdict, Verdict::kOk) << response->error;
  }
  EXPECT_TRUE(fx.server->Drain());
}

TEST(DrainTest, DrainIsIdempotentAndSafeFromConcurrentCallers) {
  Fixture fx(10, {}, {}, "drain_concurrent.db");
  Client client = fx.Connected();
  util::StatusOr<QueryResponse> response = client.Query(GroupRequest());
  ASSERT_TRUE(response.ok());

  bool results[3] = {false, false, false};
  std::vector<std::thread> callers;
  for (int i = 0; i < 3; ++i) {
    callers.emplace_back([&, i] { results[i] = fx.server->Drain(); });
  }
  for (std::thread& t : callers) t.join();
  EXPECT_TRUE(results[0]);
  EXPECT_TRUE(results[1]);
  EXPECT_TRUE(results[2]);
  EXPECT_TRUE(fx.server->Drain());  // and again, long after
}

// ---- Live-document updates over the wire -----------------------------------

TEST(WireTest, UpdateRequestRoundTrips) {
  server::UpdateRequest in;
  in.tenant = "tenant-3";
  server::UpdateRequest::Op insert;
  insert.kind = 0;
  insert.target_tag = "r";
  insert.target_start = 1;
  insert.after_tag = "a";
  insert.after_start = 2;
  insert.fragment = "<a><b><c/></b></a>";
  in.ops.push_back(insert);
  server::UpdateRequest::Op del;
  del.kind = 1;
  del.target_tag = "x";
  del.target_start = 77;
  in.ops.push_back(del);

  std::string payload = server::EncodeUpdateRequest(in);
  ASSERT_EQ(*server::PeekType(payload), server::MsgType::kUpdateRequest);
  server::UpdateRequest out;
  ASSERT_TRUE(server::DecodeUpdateRequest(payload, &out).ok());
  EXPECT_EQ(out.tenant, in.tenant);
  ASSERT_EQ(out.ops.size(), 2u);
  EXPECT_EQ(out.ops[0].kind, 0);
  EXPECT_EQ(out.ops[0].target_tag, "r");
  EXPECT_EQ(out.ops[0].target_start, 1u);
  EXPECT_EQ(out.ops[0].after_tag, "a");
  EXPECT_EQ(out.ops[0].after_start, 2u);
  EXPECT_EQ(out.ops[0].fragment, insert.fragment);
  EXPECT_EQ(out.ops[1].kind, 1);
  EXPECT_EQ(out.ops[1].target_tag, "x");
  EXPECT_EQ(out.ops[1].target_start, 77u);
}

TEST(WireTest, UpdateResponseRoundTrips) {
  server::UpdateResponse in;
  in.verdict = Verdict::kOk;
  in.error = "";
  in.retry_after_ms = 12.5;
  in.applied = 3;
  in.failed = {"op 1: no live node <z> with start 9"};
  in.relabeled = true;
  in.txn_epoch = 41;
  in.delta_maintained = 2;
  in.fully_rebuilt = 1;
  in.server_ms = 7.25;

  std::string payload = server::EncodeUpdateResponse(in);
  ASSERT_EQ(*server::PeekType(payload), server::MsgType::kUpdateResponse);
  server::UpdateResponse out;
  ASSERT_TRUE(server::DecodeUpdateResponse(payload, &out).ok());
  EXPECT_EQ(out.verdict, in.verdict);
  EXPECT_DOUBLE_EQ(out.retry_after_ms, in.retry_after_ms);
  EXPECT_EQ(out.applied, in.applied);
  EXPECT_EQ(out.failed, in.failed);
  EXPECT_EQ(out.relabeled, in.relabeled);
  EXPECT_EQ(out.txn_epoch, in.txn_epoch);
  EXPECT_EQ(out.delta_maintained, in.delta_maintained);
  EXPECT_EQ(out.fully_rebuilt, in.fully_rebuilt);
  EXPECT_DOUBLE_EQ(out.server_ms, in.server_ms);
}

TEST(WireTest, UpdateOpCountIsCapped) {
  // An attacker-controlled op count past the cap is a typed malformed-frame
  // error, decoded cheaply before any per-op allocation spree.
  server::UpdateRequest huge;
  huge.ops.resize(4097);
  std::string payload = server::EncodeUpdateRequest(huge);
  server::UpdateRequest out;
  util::Status decoded = server::DecodeUpdateRequest(payload, &out);
  ASSERT_FALSE(decoded.ok());
  EXPECT_NE(decoded.ToString().find("too many update ops"), std::string::npos)
      << decoded.ToString();
}

// The client-side refusal retry schedule: every delay is clamped to
// [base, cap] regardless of the server's Retry-After hint, so total wait is
// provably bounded by max_retries x cap — a hostile hint cannot park the
// client.
TEST(RetryPolicyTest, TotalWaitIsBoundedDespiteHostileRetryAfter) {
  const int kMaxRetries = 5;
  const double kBase = 10, kCap = 500;
  server::RefusalRetryPolicy policy(kMaxRetries, kBase, kCap, /*seed=*/42);

  // Execution failures are never retried and never consume budget.
  EXPECT_LT(policy.NextDelayMs(Verdict::kError, 100), 0);
  EXPECT_LT(policy.NextDelayMs(Verdict::kTimeout, 100), 0);
  EXPECT_EQ(policy.remaining(), kMaxRetries);

  for (int i = 0; i < kMaxRetries; ++i) {
    const Verdict verdict =
        i % 2 == 0 ? Verdict::kRejected : Verdict::kShuttingDown;
    double delay = policy.NextDelayMs(verdict, /*retry_after_ms=*/1e9);
    EXPECT_GE(delay, kBase);
    EXPECT_LE(delay, kCap);
  }
  // Budget spent: further refusals are surrendered, not slept on.
  EXPECT_LT(policy.NextDelayMs(Verdict::kRejected, 1), 0);
  EXPECT_EQ(policy.remaining(), 0);
  EXPECT_LE(policy.total_wait_ms(), kMaxRetries * kCap);
  EXPECT_GE(policy.total_wait_ms(), kMaxRetries * kBase);
}

TEST(ServerUpdateTest, AppliesUpdateBatchOverTcp) {
  Fixture fx(4);
  Client client = fx.Connected();

  // Baseline: 4 groups -> 4 matches.
  util::StatusOr<QueryResponse> baseline = client.Query(GroupRequest());
  ASSERT_TRUE(baseline.ok()) << baseline.status().ToString();
  ASSERT_EQ(baseline->match_count, 4u);

  // Graft a fifth a(b(c)) group under the root. GroupDoc has consecutive
  // labels (no gap), so this exercises the relabel + rebuild path end to
  // end through the wire.
  server::UpdateRequest update;
  server::UpdateRequest::Op op;
  op.kind = 0;
  op.target_tag = "r";
  op.target_start = 1;
  op.fragment = "<a><b><c/></b></a>";
  update.ops.push_back(op);

  util::StatusOr<server::UpdateResponse> response = client.Update(update);
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  EXPECT_EQ(response->verdict, Verdict::kOk) << response->error;
  EXPECT_EQ(response->applied, 1u);
  EXPECT_TRUE(response->failed.empty());
  EXPECT_TRUE(response->relabeled);
  EXPECT_GT(response->txn_epoch, 0u);
  EXPECT_GT(response->fully_rebuilt, 0u);
  EXPECT_GE(response->server_ms, 0.0);

  // The same connection immediately queries the new epoch.
  util::StatusOr<QueryResponse> after = client.Query(GroupRequest());
  ASSERT_TRUE(after.ok()) << after.status().ToString();
  ASSERT_EQ(after->verdict, Verdict::kOk) << after->error;
  EXPECT_EQ(after->match_count, 5u);
}

TEST(ServerUpdateTest, MalformedFragmentRejectsWholeBatchTyped) {
  Fixture fx(2);
  Client client = fx.Connected();

  server::UpdateRequest update;
  server::UpdateRequest::Op op;
  op.kind = 0;
  op.target_tag = "r";
  op.target_start = 1;
  op.fragment = "<a><b>";  // unclosed
  update.ops.push_back(op);

  util::StatusOr<server::UpdateResponse> response = client.Update(update);
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  EXPECT_EQ(response->verdict, Verdict::kError);
  EXPECT_NE(response->error.find("bad fragment"), std::string::npos)
      << response->error;
  EXPECT_EQ(response->applied, 0u);

  // Nothing was half-applied and the server still serves.
  util::StatusOr<QueryResponse> query = client.Query(GroupRequest());
  ASSERT_TRUE(query.ok()) << query.status().ToString();
  EXPECT_EQ(query->match_count, 2u);
}

TEST(ServerUpdateTest, OverQuotaUpdateIsRetryableThroughPolicy) {
  ServerOptions options;
  options.quota_rate_per_sec = 0.25;  // sustains one call every 4s
  options.quota_burst = 1;
  Fixture fx(2, options);
  Client client = fx.Connected();

  server::UpdateRequest update;
  update.tenant = "t";
  server::UpdateRequest::Op op;
  op.kind = 0;
  op.target_tag = "r";
  op.target_start = 1;
  op.fragment = "<a><b><c/></b></a>";
  update.ops.push_back(op);

  util::StatusOr<server::UpdateResponse> first = client.Update(update);
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  ASSERT_EQ(first->verdict, Verdict::kOk) << first->error;

  // The burst is spent: the second update is refused with a Retry-After
  // hint, which the retry policy turns into one bounded, clamped delay.
  util::StatusOr<server::UpdateResponse> second = client.Update(update);
  ASSERT_TRUE(second.ok()) << second.status().ToString();
  ASSERT_EQ(second->verdict, Verdict::kRejected);
  EXPECT_GT(second->retry_after_ms, 0.0);

  server::RefusalRetryPolicy policy(/*max_retries=*/3, /*base_ms=*/5,
                                    /*cap_ms=*/50, /*seed=*/7);
  ASSERT_TRUE(server::RefusalRetryPolicy::Retryable(second->verdict));
  double delay = policy.NextDelayMs(second->verdict, second->retry_after_ms);
  EXPECT_GE(delay, 5.0);
  EXPECT_LE(delay, 50.0);  // clamped even if the hint says seconds
}

TEST(ServerUpdateTest, UpdateDuringDrainIsShuttingDownNotHalfApplied) {
  Fixture fx(2);
  Client client = fx.Connected();
  ASSERT_TRUE(client.Query(GroupRequest()).ok());

  std::thread drainer([&] { fx.server->Drain(); });
  // Wait until the server has entered the draining state.
  while (!fx.server->draining()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  server::UpdateRequest update;
  server::UpdateRequest::Op op;
  op.kind = 0;
  op.target_tag = "r";
  op.target_start = 1;
  op.fragment = "<a><b><c/></b></a>";
  update.ops.push_back(op);
  util::StatusOr<server::UpdateResponse> refused = client.Update(update);
  if (refused.ok()) {
    EXPECT_EQ(refused->verdict, Verdict::kShuttingDown);
    EXPECT_GT(refused->retry_after_ms, 0.0);
    EXPECT_EQ(refused->applied, 0u);
    EXPECT_TRUE(server::RefusalRetryPolicy::Retryable(refused->verdict));
  } else {
    // The keep-alive connection may already have been torn down by drain;
    // a transport error is the other legal outcome, never a half-applied
    // batch.
    EXPECT_FALSE(refused.ok());
  }
  drainer.join();
  // The document was never touched: still 2 groups' worth of structure.
  EXPECT_EQ(fx.doc.NodesOfTag(fx.doc.FindTag("a")).size(), 2u);
}

}  // namespace
}  // namespace viewjoin

int main(int argc, char** argv) {
  // Simulated slow page reads (sleep mode) make the drain-test queries take
  // hundreds of milliseconds — must be armed before the pager's first read
  // caches the knobs. The small-document tests barely notice (their few
  // pages are read once and then served from the pool). Sized so the slow
  // query outlives the 100ms drain budget even with delta-compressed lists
  // reading ~4x fewer pages than the fixed format.
  setenv("VIEWJOIN_PAGE_READ_MICROS", "8000", /*overwrite=*/1);
  setenv("VIEWJOIN_PAGE_READ_SLEEP", "1", /*overwrite=*/1);
  ::testing::InitGoogleTest(&argc, argv);
  return RUN_ALL_TESTS();
}
