// Workload-level view selection tests: one view set serving several queries,
// with per-query disjointness and coverage, and sharing across queries.

#include <gtest/gtest.h>

#include <set>
#include <string>
#include <vector>

#include "core/engine.h"
#include "tests/test_util.h"
#include "tpq/evaluator.h"
#include "tpq/subpattern.h"
#include "view/selection.h"

namespace viewjoin {
namespace {

using testing::MakeDoc;
using testing::MustParse;
using tpq::TreePattern;
using view::SelectionOptions;
using view::SelectViewsForWorkload;
using view::WorkloadSelectionResult;

TEST(WorkloadSelectionTest, SharedViewServesSeveralQueries) {
  xml::Document doc = MakeDoc(
      "r(a(b(c(d)) e(f)) a(b(c(d)) e(f)) a(e(f) b(c)))");
  std::vector<TreePattern> workload = {
      MustParse("//a//b//c"),
      MustParse("//a//e//f"),
      MustParse("//a//b//c//d"),
  };
  std::vector<TreePattern> candidates = {
      MustParse("//a"),        // 0: usable by all three queries
      MustParse("//b//c"),     // 1: queries 0 and 2
      MustParse("//e//f"),     // 2: query 1
      MustParse("//d"),        // 3: query 2
      MustParse("//b"),        // 4
      MustParse("//c"),        // 5
      MustParse("//f"),        // 6
      MustParse("//e"),        // 7
  };
  WorkloadSelectionResult result =
      SelectViewsForWorkload(doc, workload, candidates);
  ASSERT_TRUE(result.all_covered);
  // //a must be picked once and serve every query.
  std::set<size_t> chosen(result.selected.begin(), result.selected.end());
  EXPECT_TRUE(chosen.count(0) > 0);
  for (size_t q = 0; q < workload.size(); ++q) {
    EXPECT_TRUE(result.covered[q]) << q;
    // The per-query views cover the query and are type-disjoint.
    std::vector<TreePattern> views;
    for (size_t idx : result.per_query_views[q]) {
      views.push_back(candidates[result.selected[idx]]);
    }
    tpq::CoveringInfo info = tpq::AnalyzeCovering(workload[q], views);
    EXPECT_TRUE(info.covers) << q;
    EXPECT_FALSE(info.overlapping) << q;
  }
}

TEST(WorkloadSelectionTest, SelectedSetsActuallyAnswerTheWorkload) {
  xml::Document doc = MakeDoc(
      "r(a(b(c(d)) e(f)) a(b(c(d) c) e(f)) a(e(f) b(c)))");
  std::vector<TreePattern> workload = {
      MustParse("//a//b//c"),
      MustParse("//a//e//f"),
      MustParse("//a[//e]//b"),
  };
  std::vector<TreePattern> candidates = {
      MustParse("//a"),    MustParse("//b//c"), MustParse("//e//f"),
      MustParse("//b"),    MustParse("//c"),    MustParse("//e"),
      MustParse("//f"),
  };
  WorkloadSelectionResult selection =
      SelectViewsForWorkload(doc, workload, candidates);
  ASSERT_TRUE(selection.all_covered);
  core::Engine engine(
      &doc, std::string(::testing::TempDir()) + "workload_sel.db");
  for (size_t q = 0; q < workload.size(); ++q) {
    std::vector<const storage::MaterializedView*> views;
    for (size_t idx : selection.per_query_views[q]) {
      views.push_back(engine.AddView(candidates[selection.selected[idx]],
                                     storage::Scheme::kLinkedElement));
    }
    core::RunResult r = engine.Execute(workload[q], views);
    ASSERT_TRUE(r.ok) << workload[q].ToString() << ": " << r.error;
    EXPECT_EQ(r.match_count,
              tpq::NaiveEvaluator(doc, workload[q]).Count())
        << workload[q].ToString();
  }
}

TEST(WorkloadSelectionTest, ReportsPartialCoverage) {
  xml::Document doc = MakeDoc("r(a(b))");
  std::vector<TreePattern> workload = {MustParse("//a//b"),
                                       MustParse("//a//zzz//b")};
  std::vector<TreePattern> candidates = {MustParse("//a"), MustParse("//b")};
  WorkloadSelectionResult result =
      SelectViewsForWorkload(doc, workload, candidates);
  EXPECT_FALSE(result.all_covered);
  EXPECT_TRUE(result.covered[0]);
  EXPECT_FALSE(result.covered[1]);  // zzz has no candidate
}

TEST(WorkloadSelectionTest, EmptyWorkloadIsTriviallyCovered) {
  xml::Document doc = MakeDoc("a(b)");
  WorkloadSelectionResult result =
      SelectViewsForWorkload(doc, {}, {MustParse("//a")});
  EXPECT_TRUE(result.all_covered);
  EXPECT_TRUE(result.selected.empty());
}

TEST(WorkloadSelectionTest, SharingBeatsPerQuerySelectionOnViewCount) {
  // Three queries over overlapping schema regions: workload selection should
  // not need more views than the union of per-query selections.
  xml::Document doc = MakeDoc(
      "r(a(b(c(d)) e(f)) a(b(c(d)) e(f g)) a(e(f) b(c(d))))");
  std::vector<TreePattern> workload = {
      MustParse("//a//b//c"), MustParse("//a//e"), MustParse("//b//c//d")};
  std::vector<TreePattern> candidates = {
      MustParse("//a"), MustParse("//b//c"), MustParse("//e"),
      MustParse("//d"), MustParse("//b"),    MustParse("//c")};
  WorkloadSelectionResult shared =
      SelectViewsForWorkload(doc, workload, candidates);
  ASSERT_TRUE(shared.all_covered);
  std::set<size_t> union_of_separate;
  for (const TreePattern& q : workload) {
    view::SelectionResult single =
        view::SelectViews(doc, q, candidates, SelectionOptions());
    ASSERT_TRUE(single.covers);
    union_of_separate.insert(single.selected.begin(), single.selected.end());
  }
  EXPECT_LE(shared.selected.size(), union_of_separate.size());
}

}  // namespace
}  // namespace viewjoin
