// Block-at-a-time cursor tests: the SIMD scan kernels against scalar
// references, the overflow-safe gallop helper, the delta codec round trip,
// randomized differential checks of every cursor mode × list format against
// the original scalar/fixed path, the wide-fan-out materialization guard,
// abort soundness of the skip primitives, and fsck's verification of the
// compressed list format.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "storage/buffer_pool.h"
#include "storage/fsck.h"
#include "storage/list_codec.h"
#include "storage/list_search.h"
#include "storage/materialized_view.h"
#include "storage/pager.h"
#include "storage/simd_scan.h"
#include "storage/stored_list.h"
#include "tests/test_util.h"
#include "util/rng.h"

namespace viewjoin {
namespace {

using storage::BufferPool;
using storage::CursorMode;
using storage::EntryIndex;
using storage::GallopLowerBound;
using storage::GallopResult;
using storage::kNullEntry;
using storage::ListCursor;
using storage::ListFormat;
using storage::MaterializedView;
using storage::Pager;
using storage::RecordLayout;
using storage::Scheme;
using storage::SeekOutcome;
using storage::StoredList;
using storage::ViewCatalog;
using testing::MustParse;
using xml::Label;

std::string TempPath(const char* name) {
  return std::string(::testing::TempDir()) + name;
}

/// Restores the process-wide cursor mode on scope exit; cursors capture the
/// mode at construction, so every cursor under test is built inside one.
class ScopedCursorMode {
 public:
  explicit ScopedCursorMode(CursorMode mode)
      : saved_(storage::DefaultCursorMode()) {
    storage::SetDefaultCursorMode(mode);
  }
  ~ScopedCursorMode() { storage::SetDefaultCursorMode(saved_); }

 private:
  CursorMode saved_;
};

// ---- SIMD scan kernels ------------------------------------------------------

TEST(SimdScanTest, MatchesScalarReferenceOnRandomInputs) {
  util::Rng rng(7);
  for (int trial = 0; trial < 200; ++trial) {
    // Sizes straddle the vector width and its tail-handling boundaries.
    uint32_t n = rng.Uniform(70);
    std::vector<uint32_t> values(n);
    for (uint32_t& value : values) value = rng.Uniform(1000);
    uint32_t bound = rng.Uniform(1100);
    uint32_t first_ge = n;
    for (uint32_t i = 0; i < n; ++i) {
      if (values[i] >= bound) {
        first_ge = i;
        break;
      }
    }
    EXPECT_EQ(storage::simd::FirstGe(values.data(), n, bound), first_ge);

    std::sort(values.begin(), values.end());
    uint32_t lower = static_cast<uint32_t>(
        std::lower_bound(values.begin(), values.end(), bound) -
        values.begin());
    uint32_t upper = static_cast<uint32_t>(
        std::upper_bound(values.begin(), values.end(), bound) -
        values.begin());
    EXPECT_EQ(storage::simd::LowerBoundGe(values.data(), n, bound), lower);
    EXPECT_EQ(storage::simd::LowerBoundGt(values.data(), n, bound), upper);
  }
}

TEST(SimdScanTest, ExtremeValuesNeedNoSignedShortcuts) {
  // Values above INT32_MAX break sign-compare SIMD tricks unless the
  // unsigned bias is applied; sentinel bounds must also behave.
  std::vector<uint32_t> values = {5, 0x7FFFFFFFu, 0x80000000u, 0xFFFFFFFEu,
                                  0xFFFFFFFFu};
  EXPECT_EQ(storage::simd::FirstGe(values.data(), 5, 0x80000000u), 2u);
  EXPECT_EQ(storage::simd::FirstGe(values.data(), 5, 0xFFFFFFFFu), 4u);
  EXPECT_EQ(storage::simd::FirstGt(values.data(), 5, 0xFFFFFFFFu), 5u);
  EXPECT_EQ(storage::simd::FirstGt(values.data(), 5, 0u), 0u);
  EXPECT_EQ(storage::simd::LowerBoundGe(values.data(), 5, 0xFFFFFFFFu), 4u);
  EXPECT_EQ(storage::simd::LowerBoundGt(values.data(), 5, 0xFFFFFFFFu), 5u);
}

// ---- Overflow-safe gallop ---------------------------------------------------

TEST(GallopTest, ProbePositionsCannotOverflowNearUint32Max) {
  // A naive `lo + step` gallop wraps once step doubles past the uint32
  // range and either loops forever or probes garbage positions. The helper
  // must land exactly, in O(log) probes, over an index space this large.
  constexpr uint32_t kSize = 0xFFFFFFF0u;
  constexpr uint32_t kTarget = 0xFFFFFFE7u;
  auto below = [](uint32_t i) { return i < kTarget; };
  uint64_t probes = 0;
  auto count = [&probes] {
    ++probes;
    return false;
  };
  GallopResult r = GallopLowerBound(0, kSize, below, count);
  EXPECT_EQ(r.pos, kTarget);
  EXPECT_FALSE(r.aborted);
  EXPECT_LT(probes, 80u);

  // Starting just under the target: one doubling already overshoots kSize.
  probes = 0;
  r = GallopLowerBound(kTarget - 3, kSize, below, count);
  EXPECT_EQ(r.pos, kTarget);
  EXPECT_FALSE(r.aborted);

  // Target at the very end and past-the-end starts.
  auto all_below = [](uint32_t) { return true; };
  EXPECT_EQ(GallopLowerBound(0, kSize, all_below, count).pos, kSize);
  EXPECT_EQ(GallopLowerBound(kSize, kSize, all_below, count).pos, kSize);
}

TEST(GallopTest, AbortStopsImmediatelyWithAProvenBound) {
  constexpr uint32_t kTarget = 100000;
  auto below = [](uint32_t i) { return i < kTarget; };
  for (uint64_t budget : {1u, 2u, 3u, 5u, 9u}) {
    uint64_t probes = 0;
    auto limited = [&] { return ++probes > budget; };
    GallopResult r = GallopLowerBound(0, 1u << 20, below, limited);
    ASSERT_TRUE(r.aborted) << "budget " << budget;
    EXPECT_LE(probes, budget + 1);
    // The returned position must not skip past any entry >= the target:
    // every index below it tested (or provably is) below.
    EXPECT_LE(r.pos, kTarget);
  }
}

// ---- Delta codec ------------------------------------------------------------

/// Builds a random fixed-layout record blob with sorted label-0 starts,
/// occasional duplicate starts, and pointers mixing nulls, self-area
/// references, and far jumps — the shapes the zigzag encoder must survive.
std::vector<uint8_t> RandomRecords(util::Rng* rng, uint32_t count,
                                   const RecordLayout& layout) {
  std::vector<uint8_t> bytes;
  bytes.reserve(static_cast<size_t>(count) * layout.RecordSize());
  uint32_t start = rng->Uniform(100);
  for (uint32_t i = 0; i < count; ++i) {
    // Tuple records may open before the previous record's later labels:
    // go backwards sometimes to exercise negative deltas.
    uint32_t record_start = start;
    for (uint32_t k = 0; k < layout.label_count; ++k) {
      uint32_t s = record_start + rng->Uniform(50);
      uint32_t e = s + rng->Uniform(1000);
      uint32_t level = rng->Uniform(64);
      for (uint32_t field : {s, e, level}) {
        bytes.insert(bytes.end(), reinterpret_cast<uint8_t*>(&field),
                     reinterpret_cast<uint8_t*>(&field) + 4);
      }
    }
    for (uint32_t p = 0; p < layout.PointerSlots(); ++p) {
      uint32_t ptr = rng->Uniform(4) == 0 ? kNullEntry : rng->Uniform(count);
      bytes.insert(bytes.end(), reinterpret_cast<uint8_t*>(&ptr),
                   reinterpret_cast<uint8_t*>(&ptr) + 4);
    }
    start += rng->Uniform(30);
  }
  return bytes;
}

TEST(DeltaCodecTest, RoundTripsEveryLayout) {
  util::Rng rng(11);
  std::vector<RecordLayout> layouts(4);
  layouts[0] = {1, false, 0};  // E
  layouts[1] = {1, true, 0};   // LE, leaf (no child pointers)
  layouts[2] = {1, true, 3};   // LE, three pc/ad children
  layouts[3] = {4, false, 0};  // tuple, arity 4
  for (const RecordLayout& layout : layouts) {
    for (uint32_t count : {1u, 7u, 1000u, 5000u}) {
      std::vector<uint8_t> blob = RandomRecords(&rng, count, layout);
      auto encoded = storage::EncodeDeltaList(blob.data(), count, layout);
      ASSERT_TRUE(encoded.ok()) << encoded.status().ToString();
      ASSERT_EQ(encoded->page_first_entry.size(), encoded->pages.size());
      ASSERT_EQ(encoded->page_first_start.size(), encoded->pages.size());
      EXPECT_EQ(encoded->page_first_entry.front(), 0u);

      const uint32_t record_size = layout.RecordSize();
      for (size_t p = 0; p < encoded->pages.size(); ++p) {
        uint32_t first = encoded->page_first_entry[p];
        uint32_t next = p + 1 < encoded->pages.size()
                            ? encoded->page_first_entry[p + 1]
                            : count;
        uint32_t records = next - first;
        std::vector<uint32_t> starts(records * layout.label_count);
        std::vector<uint32_t> ends(starts.size());
        std::vector<uint32_t> levels(starts.size());
        std::vector<uint32_t> pointers(records * layout.PointerSlots());
        ASSERT_TRUE(storage::DecodeDeltaPage(
                        encoded->pages[p].data(), layout, first, records,
                        starts.data(), ends.data(), levels.data(),
                        layout.has_pointers ? pointers.data() : nullptr)
                        .ok());
        for (uint32_t r = 0; r < records; ++r) {
          const uint8_t* rec = blob.data() +
                               static_cast<size_t>(first + r) * record_size;
          for (uint32_t k = 0; k < layout.label_count; ++k) {
            uint32_t s, e, level;
            std::memcpy(&s, rec + 12 * k, 4);
            std::memcpy(&e, rec + 12 * k + 4, 4);
            std::memcpy(&level, rec + 12 * k + 8, 4);
            ASSERT_EQ(starts[r * layout.label_count + k], s);
            ASSERT_EQ(ends[r * layout.label_count + k], e);
            ASSERT_EQ(levels[r * layout.label_count + k], level);
          }
          for (uint32_t pt = 0; pt < layout.PointerSlots(); ++pt) {
            uint32_t expected;
            std::memcpy(&expected,
                        rec + 12 * layout.label_count + 4 * pt, 4);
            ASSERT_EQ(pointers[r * layout.PointerSlots() + pt], expected);
          }
        }
        if (records > 0) {
          EXPECT_EQ(encoded->page_first_start[p], starts[0]);
        }
      }
    }
  }
}

TEST(DeltaCodecTest, GarbagePageIsRejectedNotMisdecoded) {
  RecordLayout layout{1, true, 1};
  std::vector<uint8_t> page(Pager::kPageSize, 0);
  std::vector<uint32_t> scratch(4096);
  // All-zero page: record count 0 disagrees with any expected count.
  EXPECT_FALSE(storage::DecodeDeltaPage(page.data(), layout, 0, 5,
                                        scratch.data(), scratch.data(),
                                        scratch.data(), scratch.data())
                   .ok());
  // A varint whose continuation bits never end must be rejected, not read
  // past the page.
  std::fill(page.begin(), page.end(), 0x80);
  page[0] = 1;  // record_count = 1
  page[1] = 0;
  page[2] = 0;  // flags = 0
  page[3] = 0;
  EXPECT_FALSE(storage::DecodeDeltaPage(page.data(), layout, 0, 1,
                                        scratch.data(), scratch.data(),
                                        scratch.data(), scratch.data())
                   .ok());
}

// ---- Differential: every mode × format against scalar/fixed ----------------

struct CursorStore {
  std::unique_ptr<ViewCatalog> catalog;
  const MaterializedView* view = nullptr;
};

CursorStore BuildStore(const xml::Document& doc, const char* path,
                       ListFormat format, Scheme scheme) {
  CursorStore store;
  store.catalog = std::make_unique<ViewCatalog>(TempPath(path), 128);
  store.catalog->set_list_format(format);
  store.view = store.catalog->Materialize(doc, MustParse("//a//b"), scheme);
  return store;
}

TEST(BlockCursorTest, AllModesAndFormatsAgreeWithScalarFixed) {
  util::Rng rng(23);
  for (uint64_t seed : {1u, 2u, 3u}) {
    util::Rng doc_rng(seed);
    xml::Document doc =
        testing::RandomDoc(&doc_rng, 3000, {"a", "b", "c"});
    for (Scheme scheme :
         {Scheme::kLinkedElement, Scheme::kLinkedElementPartial}) {
      CursorStore fixed =
          BuildStore(doc, "diff_fixed.db", ListFormat::kFixed, scheme);
      CursorStore delta =
          BuildStore(doc, "diff_delta.db", ListFormat::kDelta, scheme);
      const StoredList* ref_list = &fixed.view->list(1);  // the b list
      ASSERT_GT(ref_list->count, 0u);
      const uint32_t n = ref_list->count;

      // Reference answers from the original scalar path over fixed pages.
      std::vector<Label> labels(n);
      std::vector<EntryIndex> follows(n);
      {
        ScopedCursorMode scalar(CursorMode::kScalar);
        ListCursor ref(ref_list, fixed.catalog->pool());
        for (uint32_t i = 0; i < n; ++i, ref.Next()) {
          labels[i] = ref.LabelAt();
          follows[i] = ref.Following();
        }
      }

      // Memory-backed cursor participates in the label differential.
      std::vector<Label> mem_copy = labels;

      auto never = [](uint32_t) { return false; };
      for (int variant = 0; variant < 3; ++variant) {
        CursorMode mode =
            variant == 1 ? CursorMode::kScalar : CursorMode::kBlock;
        const CursorStore& store = variant == 0 ? fixed : delta;
        ScopedCursorMode scoped(mode);
        ListCursor cursor(&store.view->list(1), store.catalog->pool());
        ListCursor mem(mem_copy.data(), n);

        // Sequential labels + pointers.
        for (uint32_t i = 0; i < n; ++i, cursor.Next()) {
          ASSERT_EQ(cursor.LabelAt(), labels[i])
              << "variant " << variant << " entry " << i;
          ASSERT_EQ(cursor.Following(), follows[i]);
        }

        // Random FindFirstStart probes, strict and non-strict, from random
        // cursor positions, with ck-charge units matching the probe count.
        for (int t = 0; t < 40; ++t) {
          uint32_t from = rng.Uniform(n + 1);
          uint32_t bound =
              t % 5 == 0
                  ? labels[rng.Uniform(n)].start
                  : static_cast<uint32_t>(
                        rng.Uniform(2 * doc.NodeCount() + 2));
          bool strict = (t & 1) != 0;
          uint32_t expected = from;
          while (expected < n &&
                 (strict ? labels[expected].start <= bound
                         : labels[expected].start < bound)) {
            ++expected;
          }
          cursor.Seek(from);
          uint64_t probes = 0;
          uint64_t charged = 0;
          SeekOutcome out = cursor.FindFirstStart(
              bound, strict, &probes, [&](uint32_t c) {
                charged += c;
                return false;
              });
          ASSERT_FALSE(out.aborted);
          ASSERT_EQ(out.pos, expected)
              << "variant " << variant << " from " << from << " bound "
              << bound << " strict " << strict;
          ASSERT_EQ(cursor.index(), from) << "FindFirstStart must not move";
          // Governance accounting pins: every probe charged, exactly once.
          ASSERT_EQ(charged, probes);
          mem.Seek(from);
          uint64_t mem_probes = 0;
          ASSERT_EQ(mem.FindFirstStart(bound, strict, &mem_probes, never).pos,
                    expected);
        }

        // SkipEndsBelow / SkipStartsBelow land on the same entries.
        for (int t = 0; t < 40; ++t) {
          uint32_t from = rng.Uniform(n + 1);
          uint32_t bound =
              static_cast<uint32_t>(rng.Uniform(2 * doc.NodeCount() + 2));
          uint32_t expect_end = from;
          while (expect_end < n && labels[expect_end].end < bound) {
            ++expect_end;
          }
          cursor.Seek(from);
          uint64_t scanned = 0;
          ASSERT_FALSE(
              cursor.SkipEndsBelow(bound, /*one_block=*/false, &scanned,
                                   never));
          ASSERT_EQ(cursor.index(), expect_end);
          ASSERT_EQ(scanned, expect_end - from)
              << "every passed entry is counted";

          uint32_t expect_start = from;
          while (expect_start < n && labels[expect_start].start < bound) {
            ++expect_start;
          }
          cursor.Seek(from);
          scanned = 0;
          ASSERT_FALSE(cursor.SkipStartsBelow(bound, /*strict=*/false,
                                              &scanned, never));
          ASSERT_EQ(cursor.index(), expect_start);
          ASSERT_EQ(scanned, expect_start - from);
        }
      }
    }
  }
}

// ---- Wide fan-out guard -----------------------------------------------------

TEST(FanOutGuardTest, RecordWiderThanPageIsATypedError) {
  // 1025 pc-children make an LE record 20 + 4*1025 = 4120 bytes — wider
  // than a page, so no (page, offset) encoding exists. This must surface as
  // InvalidArgument at materialization, not a division crash in cursor
  // arithmetic.
  xml::Document doc = testing::MakeDoc("r(x)");
  tpq::TreePattern wide;
  int root = wide.AddNode("r", -1, tpq::Axis::kDescendant);
  for (int i = 0; i < 1025; ++i) {
    wide.AddNode("c" + std::to_string(i), root, tpq::Axis::kChild);
  }
  for (ListFormat format : {ListFormat::kFixed, ListFormat::kDelta}) {
    ViewCatalog catalog(TempPath("fanout.db"), 16);
    catalog.set_list_format(format);
    auto result =
        catalog.TryMaterialize(doc, wide, Scheme::kLinkedElement);
    ASSERT_FALSE(result.ok());
    EXPECT_EQ(result.status().code(), util::StatusCode::kInvalidArgument);
    EXPECT_NE(result.status().ToString().find("fan-out"), std::string::npos)
        << result.status().ToString();
  }
}

// ---- Abort soundness --------------------------------------------------------

TEST(FindFirstStartAbortTest, CutShortSeeksNeverSkipLiveEntries) {
  util::Rng doc_rng(31);
  xml::Document doc = testing::RandomDoc(&doc_rng, 4000, {"a", "b"});
  CursorStore store = BuildStore(doc, "abort_seek.db", ListFormat::kDelta,
                                 Scheme::kLinkedElement);
  const StoredList* list = &store.view->list(1);
  const uint32_t n = list->count;
  ASSERT_GT(n, 100u);
  ListCursor probe(list, store.catalog->pool());
  std::vector<Label> labels(n);
  for (uint32_t i = 0; i < n; ++i, probe.Next()) labels[i] = probe.LabelAt();
  const uint32_t bound = labels[n - 2].start;
  uint32_t true_pos = 0;
  while (true_pos < n && labels[true_pos].start < bound) ++true_pos;

  // Probe count of the uncut search; any budget below it must abort.
  uint64_t total = 0;
  {
    ListCursor cursor(list, store.catalog->pool());
    SeekOutcome full = cursor.FindFirstStart(
        bound, /*strict=*/false, &total, [](uint32_t) { return false; });
    ASSERT_FALSE(full.aborted);
    ASSERT_EQ(full.pos, true_pos);
    ASSERT_GE(total, 2u) << "list too small to cut a search short";
  }
  for (uint64_t budget = 0; budget < total; ++budget) {
    ListCursor cursor(list, store.catalog->pool());
    uint64_t probes = 0;
    uint64_t charges = 0;
    SeekOutcome out =
        cursor.FindFirstStart(bound, /*strict=*/false, &probes,
                              [&](uint32_t) { return ++charges > budget; });
    ASSERT_TRUE(out.aborted) << "budget " << budget;
    // Sound: the conservative landing position never passes an entry the
    // full search would have returned.
    EXPECT_LE(out.pos, true_pos) << "budget " << budget;
  }
}

// ---- fsck of the compressed format -----------------------------------------

TEST(FsckDeltaTest, VerifiesCompressedListsAndFlagsLyingPayloads) {
  std::string path = TempPath("fsck_delta.db");
  util::Rng doc_rng(41);
  xml::Document doc = testing::RandomDoc(&doc_rng, 3000, {"a", "b"});
  storage::PageId victim;
  {
    ViewCatalog catalog(path, 64, /*persistent=*/true);
    catalog.set_list_format(ListFormat::kDelta);
    const MaterializedView* view =
        catalog.Materialize(doc, MustParse("//a//b"), Scheme::kLinkedElement);
    ASSERT_EQ(view->list(0).format, ListFormat::kDelta);
    victim = view->list(0).first_page;
    ASSERT_TRUE(catalog.Close().ok());
  }
  storage::FsckCatalogReport clean = storage::FsckCatalog(path);
  EXPECT_TRUE(clean.clean()) << storage::ToJson(clean);
  EXPECT_GE(clean.compressed_lists_checked, 2u);  // both lists are delta
  EXPECT_TRUE(clean.bad_compressed_lists.empty());

  // Overwrite one compressed page with checksum-valid zeros: the page scan
  // passes, only the varint-level verification can catch it.
  {
    Pager pager(path, Pager::Mode::kReopen);
    ASSERT_TRUE(pager.init_status().ok());
    std::vector<uint8_t> zeros(Pager::kPageSize, 0);
    ASSERT_TRUE(pager.WritePage(victim, zeros.data()).ok());
  }
  storage::FsckCatalogReport lying = storage::FsckCatalog(path);
  EXPECT_TRUE(lying.pager.bad_pages.empty())
      << "corruption must be below the checksum layer for this test";
  ASSERT_FALSE(lying.bad_compressed_lists.empty());
  EXPECT_TRUE(lying.corrupt()) << storage::ToJson(lying);
  EXPECT_NE(storage::ToJson(lying).find("bad_compressed_lists"),
            std::string::npos);
}

}  // namespace
}  // namespace viewjoin
