// Live-document updates and crash-safe incremental view maintenance.
//
// Layers under test, bottom up:
//   - xml::Document gap-based subtree insert/delete (labels of untouched
//     nodes never move; tombstones keep their labels readable);
//   - view::DeltaCollector, differentially against the NaiveEvaluator oracle
//     on random documents (post == pre + added - removed, per pattern node);
//   - core::Engine::ApplyUpdates (delta maintenance vs. rebuild, the relabel
//     fallback, per-op skip semantics, plan-cache invalidation, the strict
//     VIEWJOIN_UPDATE_* env knobs, concurrent queries during a batch);
//   - the update crash matrix: kill -9 simulated inside ApplyUpdateBatch at
//     every transaction instant x every storage scheme, with the delta spill
//     sidecar forced on — reopen must land exactly on the pre-batch or the
//     post-batch catalog, with answers matching a clean run, no orphan
//     shadows or sidecars, and no epoch reuse;
//   - manifest checkpoint compaction torn mid-write (the original journal
//     must win) and vj_fsck's epoch-monotonicity reporting.

#include <gtest/gtest.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cstdint>
#include <cstdio>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "algo/query_binding.h"
#include "algo/twig_stack.h"
#include "core/engine.h"
#include "storage/fsck.h"
#include "storage/materialized_view.h"
#include "tests/test_util.h"
#include "tpq/evaluator.h"
#include "util/check.h"
#include "util/fault_injection.h"
#include "util/rng.h"
#include "util/status.h"
#include "view/delta.h"

namespace viewjoin {
namespace {

using core::Engine;
using core::EngineOptions;
using core::RunOptions;
using core::RunResult;
using core::UpdateOp;
using core::UpdateResult;
using storage::FsckCatalog;
using storage::FsckCatalogReport;
using storage::MaterializedView;
using storage::Scheme;
using storage::ViewCatalog;
using testing::MakeDoc;
using testing::MustParse;
using tpq::NaiveEvaluator;
using tpq::TreePattern;
using util::CrashPoint;
using util::CrashPointName;
using util::ScopedFaultInjection;
using util::StatusCode;
using view::DeltaCollector;
using view::PatternDeltas;

std::string TempPath(const std::string& name) {
  return std::string(::testing::TempDir()) + name;
}

bool FileExists(const std::string& path) {
  struct stat st;
  return ::stat(path.c_str(), &st) == 0;
}

/// Removes the store plus every staging artifact a previous (failed) run may
/// have left: manifest, checkpoint tmp, shadows, the delta spill sidecar.
void CleanupStore(const std::string& path) {
  std::remove(path.c_str());
  std::remove((path + ".manifest").c_str());
  std::remove((path + ".manifest.tmp").c_str());
  std::remove((path + ".updatedelta").c_str());
  std::remove((path + ".spill").c_str());
  for (int e = 0; e < 64; ++e) {
    std::remove((path + ".shadow." + std::to_string(e)).c_str());
    std::remove((path + ".shadow." + std::to_string(e) + ".tmp").c_str());
  }
}

/// Fingerprints the answer of `query` over `views` (list schemes).
uint64_t QueryHash(const xml::Document& doc, ViewCatalog* catalog,
                   const TreePattern& query,
                   const std::vector<const MaterializedView*>& views) {
  auto binding = algo::QueryBinding::Bind(doc, query, views);
  VJ_CHECK(binding.has_value());
  algo::TwigStack ts(&*binding, catalog->pool());
  tpq::HashingSink sink;
  ts.Evaluate(&sink);
  return sink.hash();
}

/// RAII setenv: restores the previous value (or unsets) on scope exit.
class ScopedSetenv {
 public:
  ScopedSetenv(const char* name, const char* value) : name_(name) {
    const char* old = ::getenv(name);
    if (old != nullptr) {
      had_old_ = true;
      old_ = old;
    }
    ::setenv(name, value, 1);
  }
  ~ScopedSetenv() {
    if (had_old_) {
      ::setenv(name_.c_str(), old_.c_str(), 1);
    } else {
      ::unsetenv(name_.c_str());
    }
  }

 private:
  std::string name_;
  bool had_old_ = false;
  std::string old_;
};

/// The first live node of `tag`, or kInvalidNode.
xml::NodeId FirstOfTag(const xml::Document& doc, const std::string& tag) {
  xml::TagId id = doc.FindTag(tag);
  if (id == xml::kInvalidTag) return xml::kInvalidNode;
  const auto& nodes = doc.NodesOfTag(id);
  return nodes.empty() ? xml::kInvalidNode : nodes.front();
}

// ---- Document mutation ------------------------------------------------------

TEST(DocumentUpdateTest, InsertIntoGapLeavesExistingLabelsUntouched) {
  xml::Document doc = MakeDoc("r(a(b) c)");
  ASSERT_TRUE(doc.RelabelWithGap(8).ok());
  std::vector<xml::Label> before;
  for (xml::NodeId n = 0; n < doc.NodeCount(); ++n) {
    before.push_back(doc.NodeLabel(n));
  }
  const uint64_t rev = doc.revision();

  xml::Document fragment = MakeDoc("x(y)");
  xml::SubtreeSpec spec = xml::SpecFromDocument(fragment);
  const xml::NodeId parent = FirstOfTag(doc, "a");
  ASSERT_NE(parent, xml::kInvalidNode);

  auto inserted = doc.InsertSubtree(spec, parent);
  ASSERT_TRUE(inserted.ok()) << inserted.status().ToString();

  // Every pre-existing label is bit-identical; only new ids were appended.
  for (size_t n = 0; n < before.size(); ++n) {
    EXPECT_EQ(doc.NodeLabel(static_cast<xml::NodeId>(n)), before[n]);
  }
  // The new subtree landed strictly inside the parent's region, with parent
  // links and levels consistent.
  const xml::NodeId x = *inserted;
  ASSERT_TRUE(doc.IsLive(x));
  EXPECT_TRUE(doc.IsParent(parent, x));
  EXPECT_EQ(doc.Parent(x), parent);
  const xml::NodeId y = FirstOfTag(doc, "y");
  ASSERT_NE(y, xml::kInvalidNode);
  EXPECT_TRUE(doc.IsParent(x, y));
  // Per-tag streams stay sorted by start (the invariant every join relies
  // on) even though the new ids sort after all old ones numerically.
  for (xml::TagId t = 0; t < doc.TagCount(); ++t) {
    const auto& stream = doc.NodesOfTag(t);
    for (size_t i = 1; i < stream.size(); ++i) {
      EXPECT_LT(doc.NodeLabel(stream[i - 1]).start,
                doc.NodeLabel(stream[i]).start);
    }
  }
  EXPECT_GT(doc.revision(), rev);
}

TEST(DocumentUpdateTest, InsertWithoutGapIsResourceExhausted) {
  // No relabel: consecutive positions leave zero spare room anywhere.
  xml::Document doc = MakeDoc("r(a(b) c)");
  xml::Document fragment = MakeDoc("x(y)");
  const xml::NodeId parent = FirstOfTag(doc, "a");
  auto inserted = doc.InsertSubtree(xml::SpecFromDocument(fragment), parent);
  ASSERT_FALSE(inserted.ok());
  EXPECT_EQ(inserted.status().code(), StatusCode::kResourceExhausted);
}

TEST(DocumentUpdateTest, DeleteTombstonesButKeepsLabelsReadable) {
  xml::Document doc = MakeDoc("r(a(b(c)) d)");
  const xml::NodeId b = FirstOfTag(doc, "b");
  const xml::NodeId c = FirstOfTag(doc, "c");
  const xml::Label b_label = doc.NodeLabel(b);
  const size_t live_before = doc.LiveNodeCount();
  const uint64_t rev = doc.revision();

  std::vector<xml::NodeId> removed;
  ASSERT_TRUE(doc.DeleteSubtree(b, &removed).ok());

  // The whole subtree went, in preorder.
  ASSERT_EQ(removed.size(), 2u);
  EXPECT_EQ(removed[0], b);
  EXPECT_EQ(removed[1], c);
  EXPECT_FALSE(doc.IsLive(b));
  EXPECT_FALSE(doc.IsLive(c));
  EXPECT_EQ(doc.LiveNodeCount(), live_before - 2);
  // Tombstoned nodes leave the streams but their labels stay readable, so
  // delta computation can still resolve them.
  EXPECT_TRUE(doc.NodesOfTag(doc.FindTag("b")).empty());
  EXPECT_EQ(doc.NodeLabel(b), b_label);
  EXPECT_GT(doc.revision(), rev);

  // The document root cannot be deleted, nor a tombstone twice.
  EXPECT_EQ(doc.DeleteSubtree(doc.Root()).code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(doc.DeleteSubtree(b).code(), StatusCode::kInvalidArgument);
}

TEST(DocumentUpdateTest, SpecRoundTripsThroughInsert) {
  xml::Document source = MakeDoc("a(b(c) d)");
  xml::SubtreeSpec spec = xml::SpecFromDocument(source);
  ASSERT_EQ(spec.nodes.size(), 4u);
  EXPECT_EQ(spec.nodes[0].tag, "a");
  EXPECT_EQ(spec.nodes[0].parent, xml::SubtreeSpec::kNoParent);
  for (size_t i = 1; i < spec.nodes.size(); ++i) {
    EXPECT_LT(spec.nodes[i].parent, i);  // valid preorder
  }

  xml::Document doc = MakeDoc("r(x)");
  ASSERT_TRUE(doc.RelabelWithGap(16).ok());
  const size_t nodes_before = doc.NodeCount();
  auto inserted = doc.InsertSubtree(spec, doc.Root());
  ASSERT_TRUE(inserted.ok()) << inserted.status().ToString();
  EXPECT_EQ(doc.NodeCount(), nodes_before + 4);
  EXPECT_EQ(doc.NodesOfTag(doc.FindTag("b")).size(), 1u);
  EXPECT_EQ(doc.NodesOfTag(doc.FindTag("c")).size(), 1u);
}

// ---- DeltaCollector vs. the oracle ------------------------------------------

/// Start labels of `nodes`, as a set.
std::set<uint32_t> StartSet(const xml::Document& doc,
                            const std::vector<xml::NodeId>& nodes) {
  std::set<uint32_t> out;
  for (xml::NodeId n : nodes) out.insert(doc.NodeLabel(n).start);
  return out;
}

// post == pre + added - removed, per pattern and per pattern node, on random
// documents under a random insert followed by a random delete. This is the
// scope-containment theorem's end-to-end check: whatever region the
// collector restricted itself to, the net delta must equal the global
// solution-set difference the oracle sees.
TEST(DeltaCollectorTest, MatchesOracleDifferentially) {
  const std::vector<std::string> tags = {"a", "b", "c", "d"};
  const std::vector<std::string> xpaths = {"//a//b", "//a//b//c", "//b/c"};
  std::vector<TreePattern> patterns;
  for (const std::string& x : xpaths) patterns.push_back(MustParse(x));

  for (uint64_t seed = 1; seed <= 8; ++seed) {
    util::Rng rng(seed);
    xml::Document doc = testing::RandomDoc(&rng, 60, tags);
    ASSERT_TRUE(doc.RelabelWithGap(16).ok());

    std::vector<std::vector<std::set<uint32_t>>> pre;
    for (const TreePattern& p : patterns) {
      std::vector<std::set<uint32_t>> per_node;
      for (const auto& list : NaiveEvaluator(doc, p).SolutionNodes()) {
        per_node.push_back(StartSet(doc, list));
      }
      pre.push_back(std::move(per_node));
    }

    DeltaCollector collector(&doc, patterns);

    // One random insert (sandwiched; skipped if the gap cannot take it).
    xml::Document fragment = testing::RandomDoc(&rng, 5, tags);
    const xml::NodeId parent =
        static_cast<xml::NodeId>(rng.Uniform(doc.NodeCount()));
    collector.WillInsert(parent);
    auto inserted =
        doc.InsertSubtree(xml::SpecFromDocument(fragment), parent);
    if (inserted.ok()) collector.DidInsert(*inserted);

    // One random delete of a live non-root node.
    xml::NodeId victim = xml::kInvalidNode;
    for (int tries = 0; tries < 32; ++tries) {
      xml::NodeId n =
          1 + static_cast<xml::NodeId>(rng.Uniform(doc.NodeCount() - 1));
      if (doc.IsLive(n)) {
        victim = n;
        break;
      }
    }
    if (victim != xml::kInvalidNode) {
      collector.WillDelete(victim);
      ASSERT_TRUE(doc.DeleteSubtree(victim).ok());
      collector.DidDelete();
    }

    std::vector<PatternDeltas> deltas = collector.TakeDeltas();
    ASSERT_EQ(deltas.size(), patterns.size());
    for (size_t pi = 0; pi < patterns.size(); ++pi) {
      const auto post_lists = NaiveEvaluator(doc, patterns[pi]).SolutionNodes();
      ASSERT_EQ(post_lists.size(), pre[pi].size());
      for (size_t q = 0; q < post_lists.size(); ++q) {
        const std::set<uint32_t> post = StartSet(doc, post_lists[q]);
        std::set<uint32_t> expect_added, expect_removed;
        for (uint32_t s : post) {
          if (pre[pi][q].count(s) == 0) expect_added.insert(s);
        }
        for (uint32_t s : pre[pi][q]) {
          if (post.count(s) == 0) expect_removed.insert(s);
        }
        std::set<uint32_t> got_added, got_removed;
        uint32_t last = 0;
        for (const xml::Label& l : deltas[pi].added[q]) {
          EXPECT_GE(l.start, last);  // start-sorted, as ApplyUpdateBatch needs
          last = l.start;
          got_added.insert(l.start);
        }
        last = 0;
        for (const xml::Label& l : deltas[pi].removed[q]) {
          EXPECT_GE(l.start, last);
          last = l.start;
          got_removed.insert(l.start);
        }
        EXPECT_EQ(got_added, expect_added)
            << "seed " << seed << " pattern " << xpaths[pi] << " node " << q;
        EXPECT_EQ(got_removed, expect_removed)
            << "seed " << seed << " pattern " << xpaths[pi] << " node " << q;
      }
    }
  }
}

// ---- Engine::ApplyUpdates ---------------------------------------------------

/// The standard mutable-engine fixture: a document with enough structure for
/// //a//b//c to have matches on both sides of the canonical batch.
struct EngineFixture {
  explicit EngineFixture(Scheme scheme, const EngineOptions& options = {},
                         uint32_t gap = 8)
      : doc(MakeDoc("r(a(b(c) b) a(x(b(c))) b(c))")),
        path(TempPath("update_engine_" + std::to_string(++counter) + ".db")) {
    VJ_CHECK(doc.RelabelWithGap(gap).ok());
    CleanupStore(path);
    engine = std::make_unique<Engine>(&doc, path, options);
    v1 = engine->AddView("//a//b", scheme);
    v2 = engine->AddView("//c", scheme);
    query = MustParse("//a//b//c");
  }

  /// The canonical batch: graft a(b(c)) under the root, then drop the x
  /// subtree (which carries a b(c)). Both views see adds and removals.
  std::vector<UpdateOp> CanonicalOps() const {
    std::vector<UpdateOp> ops;
    UpdateOp insert;
    insert.kind = UpdateOp::Kind::kInsertSubtree;
    insert.target_tag = "r";
    insert.target_start = doc.NodeLabel(doc.Root()).start;
    xml::Document fragment = MakeDoc("a(b(c))");
    insert.subtree = xml::SpecFromDocument(fragment);
    ops.push_back(std::move(insert));
    UpdateOp del;
    del.kind = UpdateOp::Kind::kDeleteSubtree;
    del.target_tag = "x";
    del.target_start = doc.NodeLabel(FirstOfTag(doc, "x")).start;
    ops.push_back(std::move(del));
    return ops;
  }

  uint64_t OracleCount() const { return NaiveEvaluator(doc, query).Count(); }

  /// Order-independent fingerprint of the oracle's match set (same hashing
  /// as RunResult::result_hash).
  uint64_t OracleHash() const {
    tpq::HashingSink sink;
    NaiveEvaluator(doc, query).Evaluate(&sink);
    return sink.hash();
  }

  static int counter;
  xml::Document doc;
  std::string path;
  std::unique_ptr<Engine> engine;
  const MaterializedView* v1;
  const MaterializedView* v2;
  TreePattern query = MustParse("//c");
};
int EngineFixture::counter = 0;

class EngineUpdateSchemeTest : public ::testing::TestWithParam<Scheme> {};

TEST_P(EngineUpdateSchemeTest, MaintainedViewsMatchOracle) {
  EngineFixture fx(GetParam());
  ASSERT_GT(fx.OracleCount(), 0u);
  const uint64_t before = fx.OracleHash();

  auto result = fx.engine->ApplyUpdates(fx.CanonicalOps());
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->applied, 2u);
  EXPECT_TRUE(result->failed.empty());
  EXPECT_FALSE(result->relabeled);
  EXPECT_GT(result->txn_epoch, 0u);
  EXPECT_EQ(result->quarantined, 0u);
  if (GetParam() == Scheme::kTuple) {
    // Tuples have no per-node delta form: both affected views rebuild.
    EXPECT_EQ(result->delta_maintained, 0u);
    EXPECT_EQ(result->fully_rebuilt, 2u);
  } else {
    EXPECT_EQ(result->delta_maintained, 2u);
    EXPECT_EQ(result->fully_rebuilt, 0u);
  }

  const uint64_t after = fx.OracleHash();
  EXPECT_NE(after, before);  // the batch genuinely moved the match set
  if (GetParam() != Scheme::kTuple) {
    // Execute through the (stale) view pointers: the planner follows the
    // replacement links to the freshly maintained epoch. The fingerprint
    // check catches a stale view the count cannot (the batch adds one match
    // and removes another, so the count alone stays put).
    RunResult r = fx.engine->Execute(fx.query, {fx.v1, fx.v2});
    ASSERT_TRUE(r.ok) << r.error;
    EXPECT_EQ(r.match_count, fx.OracleCount());
    EXPECT_EQ(r.result_hash, after);
  } else {
    // T-scheme: compare the rebuilt view's stored content to the oracle.
    const MaterializedView* tip =
        fx.engine->catalog()->FindView("//a//b", Scheme::kTuple);
    ASSERT_NE(tip, nullptr);
    EXPECT_EQ(tip->MatchCount(),
              NaiveEvaluator(fx.doc, MustParse("//a//b")).Count());
  }
}

INSTANTIATE_TEST_SUITE_P(AllSchemes, EngineUpdateSchemeTest,
                         ::testing::Values(Scheme::kElement,
                                           Scheme::kLinkedElement,
                                           Scheme::kLinkedElementPartial,
                                           Scheme::kTuple),
                         [](const ::testing::TestParamInfo<Scheme>& info) {
                           return storage::SchemeName(info.param);
                         });

TEST(EngineUpdateTest, BadOpsAreSkippedNotFatal) {
  EngineFixture fx(Scheme::kLinkedElement);
  std::vector<UpdateOp> ops = fx.CanonicalOps();
  UpdateOp bogus;
  bogus.kind = UpdateOp::Kind::kDeleteSubtree;
  bogus.target_tag = "zz";  // no such element type
  bogus.target_start = 12345;
  ops.insert(ops.begin(), std::move(bogus));

  auto result = fx.engine->ApplyUpdates(ops);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->applied, 2u);
  ASSERT_EQ(result->failed.size(), 1u);
  EXPECT_NE(result->failed[0].find("op 0"), std::string::npos)
      << result->failed[0];
  // The surviving ops still maintained the views correctly.
  RunResult r = fx.engine->Execute(fx.query, {fx.v1, fx.v2});
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_EQ(r.match_count, fx.OracleCount());
}

TEST(EngineUpdateTest, GapExhaustionTriggersRelabelAndRebuild) {
  // gap = 1: the very first insert cannot fit and forces RelabelWithGap.
  EngineFixture fx(Scheme::kLinkedElement, {}, /*gap=*/1);
  auto result = fx.engine->ApplyUpdates(fx.CanonicalOps());
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_TRUE(result->relabeled);
  EXPECT_EQ(result->applied, 2u);
  EXPECT_EQ(result->delta_maintained, 0u);
  EXPECT_EQ(result->fully_rebuilt, 2u);  // a relabel rebuilds every view
  RunResult r = fx.engine->Execute(fx.query, {fx.v1, fx.v2});
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_EQ(r.match_count, fx.OracleCount());
}

TEST(EngineUpdateTest, ConstDocumentEngineRejectsUpdates) {
  xml::Document doc = MakeDoc("r(a(b(c)))");
  const std::string path = TempPath("update_const_engine.db");
  CleanupStore(path);
  const xml::Document* const_doc = &doc;
  Engine engine(const_doc, path);
  auto result = engine.ApplyUpdates({});
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

TEST(EngineUpdateTest, PlanCacheInvalidatesOnEpochBump) {
  EngineFixture fx(Scheme::kLinkedElement);
  RunResult first = fx.engine->Execute(fx.query, {fx.v1, fx.v2});
  ASSERT_TRUE(first.ok) << first.error;
  EXPECT_FALSE(first.plan.from_cache);
  RunResult second = fx.engine->Execute(fx.query, {fx.v1, fx.v2});
  ASSERT_TRUE(second.ok) << second.error;
  EXPECT_TRUE(second.plan.from_cache);
  EXPECT_GE(fx.engine->plan_cache()->hits(), 1u);

  const uint64_t misses_before = fx.engine->plan_cache()->misses();
  auto updated = fx.engine->ApplyUpdates(fx.CanonicalOps());
  ASSERT_TRUE(updated.ok()) << updated.status().ToString();
  ASSERT_GT(updated->txn_epoch, 0u);

  // The epoch moved, so the memoized plan is dead: the next run re-plans
  // (and re-plans against the replacement views, not the stale pointers).
  RunResult third = fx.engine->Execute(fx.query, {fx.v1, fx.v2});
  ASSERT_TRUE(third.ok) << third.error;
  EXPECT_FALSE(third.plan.from_cache);
  EXPECT_GT(fx.engine->plan_cache()->misses(), misses_before);
  EXPECT_EQ(third.match_count, fx.OracleCount());
}

// ---- Strict VIEWJOIN_UPDATE_* env knobs (util/env.h) ------------------------

TEST(EngineUpdateEnvTest, BatchSizeCapRejectsOversizedBatches) {
  EngineFixture fx(Scheme::kLinkedElement);
  ScopedSetenv env("VIEWJOIN_UPDATE_BATCH_SIZE", "1");
  auto result = fx.engine->ApplyUpdates(fx.CanonicalOps());  // 2 ops
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(result.status().message().find("VIEWJOIN_UPDATE_BATCH_SIZE"),
            std::string::npos)
      << result.status().ToString();
}

TEST(EngineUpdateEnvTest, MalformedKnobsAreTypedErrorsNotDefaults) {
  EngineFixture fx(Scheme::kLinkedElement);
  for (const char* bad : {"abc", "12x", "-3", " 7"}) {
    ScopedSetenv env("VIEWJOIN_UPDATE_BATCH_SIZE", bad);
    auto result = fx.engine->ApplyUpdates(fx.CanonicalOps());
    ASSERT_FALSE(result.ok()) << "value '" << bad << "' was accepted";
    EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
    EXPECT_NE(result.status().message().find("VIEWJOIN_UPDATE_BATCH_SIZE"),
              std::string::npos)
        << result.status().ToString();
  }
  {
    ScopedSetenv env("VIEWJOIN_UPDATE_DELTA_SPILL_BYTES", "1MB");
    auto result = fx.engine->ApplyUpdates(fx.CanonicalOps());
    ASSERT_FALSE(result.ok());
    EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
    EXPECT_NE(
        result.status().message().find("VIEWJOIN_UPDATE_DELTA_SPILL_BYTES"),
        std::string::npos)
        << result.status().ToString();
  }
  // The document was never touched by any of the rejected batches.
  EXPECT_EQ(fx.doc.revision(), 1u);  // the relabel only
}

TEST(EngineUpdateEnvTest, ForcedDeltaSpillRoundTripsAndCleansUp) {
  EngineOptions options;
  options.persistent = true;
  EngineFixture fx(Scheme::kLinkedElement, options);
  ScopedSetenv env("VIEWJOIN_UPDATE_DELTA_SPILL_BYTES", "1");
  auto result = fx.engine->ApplyUpdates(fx.CanonicalOps());
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->delta_maintained, 2u);
  // The sidecar was written, re-read, merged from, and removed at commit.
  EXPECT_FALSE(FileExists(fx.path + ".updatedelta"));
  RunResult r = fx.engine->Execute(fx.query, {fx.v1, fx.v2});
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_EQ(r.match_count, fx.OracleCount());
}

// ---- Concurrent queries during update batches -------------------------------

// Sessions hammer the query while the main thread applies batches: every
// answer must be one of the documented snapshot states (pre-batch or
// post-batch counts), never a torn in-between, and never an error.
TEST(EngineUpdateTest, ConcurrentQueriesSeeConsistentSnapshots) {
  const std::string spec = "r(a(b(c) b) a(x(b(c))) a(b(c)) b(c))";
  xml::Document doc = MakeDoc(spec);
  ASSERT_TRUE(doc.RelabelWithGap(64).ok());
  // Mirror document: same spec, mutated the same way up front, to precompute
  // the full set of match counts a query may legally observe.
  xml::Document mirror = MakeDoc(spec);
  ASSERT_TRUE(mirror.RelabelWithGap(64).ok());

  const TreePattern query = MustParse("//a//b//c");
  xml::Document fragment = MakeDoc("a(b(c))");
  const xml::SubtreeSpec frag_spec = xml::SpecFromDocument(fragment);

  // Three batches, each grafting the fragment under a distinct parent.
  const xml::TagId a_tag = mirror.FindTag("a");
  std::vector<uint32_t> parent_starts;
  parent_starts.push_back(mirror.NodeLabel(mirror.Root()).start);
  for (size_t i = 0; i < 2 && i < mirror.NodesOfTag(a_tag).size(); ++i) {
    parent_starts.push_back(mirror.NodeLabel(mirror.NodesOfTag(a_tag)[i]).start);
  }

  std::set<uint64_t> allowed;
  allowed.insert(NaiveEvaluator(mirror, query).Count());
  for (uint32_t start : parent_starts) {
    xml::NodeId parent = mirror.FindByStart(
        start == mirror.NodeLabel(mirror.Root()).start ? mirror.FindTag("r")
                                                       : a_tag,
        start);
    ASSERT_NE(parent, xml::kInvalidNode);
    auto ins = mirror.InsertSubtree(frag_spec, parent);
    ASSERT_TRUE(ins.ok()) << ins.status().ToString();
    allowed.insert(NaiveEvaluator(mirror, query).Count());
  }

  const std::string path = TempPath("update_concurrent.db");
  CleanupStore(path);
  Engine engine(&doc, path);
  const MaterializedView* v1 =
      engine.AddView("//a//b", Scheme::kLinkedElement);
  const MaterializedView* v2 = engine.AddView("//c", Scheme::kLinkedElement);

  std::mutex failures_mu;
  std::vector<std::string> failures;
  std::atomic<bool> stop{false};
  auto reader = [&](size_t id) {
    Engine::Session session(&engine, id);
    RunOptions run;
    run.cold_cache = false;
    int iterations = 0;
    while (!stop.load(std::memory_order_acquire) || iterations < 20) {
      RunResult r = session.Run(query, {v1, v2}, run);
      ++iterations;
      if (!r.ok) {
        std::lock_guard<std::mutex> lock(failures_mu);
        failures.push_back("query failed: " + r.error);
        break;
      }
      if (allowed.count(r.match_count) == 0) {
        std::lock_guard<std::mutex> lock(failures_mu);
        failures.push_back("torn answer: match_count " +
                           std::to_string(r.match_count));
        break;
      }
      if (iterations > 500) break;
    }
  };
  std::thread t1(reader, 1), t2(reader, 2);

  for (size_t b = 0; b < parent_starts.size(); ++b) {
    UpdateOp op;
    op.kind = UpdateOp::Kind::kInsertSubtree;
    op.target_tag = b == 0 ? "r" : "a";
    op.target_start = parent_starts[b];
    op.subtree = frag_spec;
    auto result = engine.ApplyUpdates({op});
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    EXPECT_EQ(result->applied, 1u);
    EXPECT_FALSE(result->relabeled);
  }
  stop.store(true, std::memory_order_release);
  t1.join();
  t2.join();
  for (const std::string& f : failures) ADD_FAILURE() << f;
  // Quiesced: the final answer is the final mirror state exactly.
  RunResult final_run = engine.Execute(query, {v1, v2});
  ASSERT_TRUE(final_run.ok) << final_run.error;
  EXPECT_EQ(final_run.match_count, NaiveEvaluator(doc, query).Count());
  EXPECT_EQ(final_run.match_count, NaiveEvaluator(mirror, query).Count());
}

// ---- Update crash matrix ----------------------------------------------------

struct UpdateCrashCase {
  CrashPoint point;
  Scheme scheme;
};

std::string UpdateCrashCaseName(
    const ::testing::TestParamInfo<UpdateCrashCase>& info) {
  std::string point = CrashPointName(info.param.point);
  for (char& c : point) {
    if (c == '-') c = '_';
  }
  return point + "_" + storage::SchemeName(info.param.scheme);
}

constexpr const char* kMatrixDocSpec = "r(a(b(c) a(b(c c)) b) a(x(b(c))) b(c))";

/// Applies the canonical matrix batch to `doc`: graft a(b(c)) under the
/// root, delete the x subtree. Sandwiches through `collector` when given.
void MutateMatrixDoc(xml::Document* doc, DeltaCollector* collector) {
  xml::Document fragment = MakeDoc("a(b(c))");
  xml::SubtreeSpec spec = xml::SpecFromDocument(fragment);
  if (collector != nullptr) collector->WillInsert(doc->Root());
  auto inserted = doc->InsertSubtree(spec, doc->Root());
  VJ_CHECK(inserted.ok()) << inserted.status().ToString();
  if (collector != nullptr) collector->DidInsert(*inserted);
  xml::NodeId x = FirstOfTag(*doc, "x");
  VJ_CHECK(x != xml::kInvalidNode);
  if (collector != nullptr) collector->WillDelete(x);
  VJ_CHECK(doc->DeleteSubtree(x).ok());
  if (collector != nullptr) collector->DidDelete();
}

class UpdateCrashMatrixTest : public ::testing::TestWithParam<UpdateCrashCase> {
};

TEST_P(UpdateCrashMatrixTest, ReopenLandsOnExactlyOneEpoch) {
  const UpdateCrashCase param = GetParam();
  const bool committed = param.point == CrashPoint::kCrashAfterEpochBump;
  const TreePattern p1 = MustParse("//a//b");
  const TreePattern p2 = MustParse("//c");
  const TreePattern query = MustParse("//a//b//c");
  const bool list_scheme = param.scheme != Scheme::kTuple;

  // Pre- and post-batch reference documents (the victim's own document is
  // mutated mid-protocol and serves neither comparison cleanly).
  xml::Document pre = MakeDoc(kMatrixDocSpec);
  ASSERT_TRUE(pre.RelabelWithGap(32).ok());
  xml::Document post = MakeDoc(kMatrixDocSpec);
  ASSERT_TRUE(post.RelabelWithGap(32).ok());
  MutateMatrixDoc(&post, nullptr);

  // Clean reference run: the same batch, committed without faults.
  uint64_t post_hash = 0, post_match_1 = 0;
  std::vector<uint32_t> post_lengths_1;
  {
    const std::string clean_path =
        TempPath("update_crash_clean_" +
                 UpdateCrashCaseName({param, 0}) + ".db");
    CleanupStore(clean_path);
    ViewCatalog clean(clean_path, 128, /*persistent=*/true);
    const MaterializedView* c1 = clean.Materialize(post, p1, param.scheme);
    const MaterializedView* c2 = clean.Materialize(post, p2, param.scheme);
    if (list_scheme) {
      post_hash = QueryHash(post, &clean, query, {c1, c2});
    } else {
      post_match_1 = c1->MatchCount();
    }
    for (size_t q = 0; q < p1.size(); ++q) {
      post_lengths_1.push_back(c1->ListLength(static_cast<int>(q)));
    }
    (void)c2;
    EXPECT_TRUE(clean.Close().ok());
  }

  const std::string path =
      TempPath("update_crash_" + UpdateCrashCaseName({param, 0}) + ".db");
  CleanupStore(path);

  uint64_t pre_hash = 0, pre_match_1 = 0, pre_epoch = 0;
  std::vector<uint32_t> pre_lengths_1;

  // The victim: two installed views, one update batch, a crash mid-protocol.
  {
    ViewCatalog victim(path, 128, /*persistent=*/true);
    xml::Document vic = MakeDoc(kMatrixDocSpec);
    ASSERT_TRUE(vic.RelabelWithGap(32).ok());
    const MaterializedView* v1 = victim.Materialize(vic, p1, param.scheme);
    const MaterializedView* v2 = victim.Materialize(vic, p2, param.scheme);
    pre_epoch = victim.epoch();
    if (list_scheme) {
      pre_hash = QueryHash(vic, &victim, query, {v1, v2});
    } else {
      pre_match_1 = v1->MatchCount();
    }
    for (size_t q = 0; q < p1.size(); ++q) {
      pre_lengths_1.push_back(v1->ListLength(static_cast<int>(q)));
    }

    std::vector<ViewCatalog::ViewUpdateSpec> specs(2);
    specs[0].view = v1;
    specs[1].view = v2;
    if (list_scheme) {
      DeltaCollector collector(&vic, {p1, p2});
      MutateMatrixDoc(&vic, &collector);
      std::vector<PatternDeltas> deltas = collector.TakeDeltas();
      specs[0].deltas.added = std::move(deltas[0].added);
      specs[0].deltas.removed = std::move(deltas[0].removed);
      specs[1].deltas.added = std::move(deltas[1].added);
      specs[1].deltas.removed = std::move(deltas[1].removed);
    } else {
      MutateMatrixDoc(&vic, nullptr);
      specs[0].full_rebuild = true;
      specs[1].full_rebuild = true;
    }

    // Force the delta spill sidecar so the crash leaves it on disk too.
    ViewCatalog::UpdateBatchOptions options;
    options.delta_spill_bytes = 1;

    ScopedFaultInjection fi;
    // Mid-delta-merge fires at the top of the nth per-view install: nth=2
    // leaves view 0 installed and view 1 missing — the half-merged state.
    fi->ArmCrashPoint(param.point,
                      param.point == CrashPoint::kCrashMidDeltaMerge ? 2 : 1);
    auto failed = victim.ApplyUpdateBatch(vic, specs, options);
    ASSERT_FALSE(failed.ok()) << CrashPointName(param.point);
    EXPECT_NE(failed.status().message().find("injected crash"),
              std::string::npos)
        << failed.status().ToString();
    EXPECT_EQ(fi->injected_crashes(), 1u);
    // Scope exit abandons the catalog with the mid-flight on-disk state.
  }

  // The crash left its staging artifacts behind: the batch shadow and the
  // spilled delta sidecar (cleanup runs only after the commit point).
  EXPECT_TRUE(FileExists(path + ".updatedelta"));

  // Offline fsck before recovery: artifacts, never corruption.
  FsckCatalogReport before = FsckCatalog(path);
  EXPECT_FALSE(before.corrupt()) << storage::ToJson(before);
  EXPECT_TRUE(before.repair_needed());
  EXPECT_EQ(before.epoch_regressions, 0u);
  EXPECT_FALSE(before.orphan_delta_files.empty());
  EXPECT_GE(before.max_epoch, pre_epoch);
  if (!committed) {
    EXPECT_EQ(before.rolled_back_update_batches, 1u)
        << storage::ToJson(before);
  } else {
    EXPECT_EQ(before.rolled_back_update_batches, 0u)
        << storage::ToJson(before);
    EXPECT_GT(before.max_epoch, pre_epoch);
  }
  const uint64_t high_water = before.max_epoch;

  // Reopen: recovery must land exactly on one epoch — the pre-batch catalog
  // (crash before the commit record) or the post-batch one (after it).
  auto reopened = ViewCatalog::Open(path, 128);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  ViewCatalog& catalog = **reopened;

  // Staging artifacts are swept either way.
  EXPECT_FALSE(FileExists(path + ".updatedelta"));
  EXPECT_GE(catalog.recovery_report().orphan_delta_files_removed, 1);
  for (int e = 0; e < 64; ++e) {
    EXPECT_FALSE(FileExists(path + ".shadow." + std::to_string(e)));
  }
  if (!committed) {
    EXPECT_EQ(catalog.recovery_report().rolled_back_update_batches, 1u);
  } else {
    EXPECT_EQ(catalog.recovery_report().rolled_back_update_batches, 0u);
  }

  const MaterializedView* r1 = catalog.FindView(p1.ToString(), param.scheme);
  const MaterializedView* r2 = catalog.FindView(p2.ToString(), param.scheme);
  ASSERT_NE(r1, nullptr);
  ASSERT_NE(r2, nullptr);
  EXPECT_TRUE(catalog.VerifyView(r1).ok());
  EXPECT_TRUE(catalog.VerifyView(r2).ok());

  if (committed) {
    // Post-batch epoch: answers equal the clean run over the post document.
    if (list_scheme) {
      EXPECT_EQ(QueryHash(post, &catalog, query, {r1, r2}), post_hash);
    } else {
      EXPECT_EQ(r1->MatchCount(), post_match_1);
    }
    for (size_t q = 0; q < p1.size(); ++q) {
      EXPECT_EQ(r1->ListLength(static_cast<int>(q)), post_lengths_1[q]);
    }
  } else {
    // Pre-batch epoch: the batch rolled back wholesale — not one view of it
    // survives, even when some install records landed before the crash.
    if (list_scheme) {
      EXPECT_EQ(QueryHash(pre, &catalog, query, {r1, r2}), pre_hash);
    } else {
      EXPECT_EQ(r1->MatchCount(), pre_match_1);
    }
    for (size_t q = 0; q < p1.size(); ++q) {
      EXPECT_EQ(r1->ListLength(static_cast<int>(q)), pre_lengths_1[q]);
    }
  }

  // Epochs never run backwards and are never reused: the next install mints
  // strictly above the pre-crash high-water mark, rolled-back records
  // included.
  const xml::Document& current = committed ? post : pre;
  const MaterializedView* fresh =
      catalog.Materialize(current, MustParse("//b"), param.scheme);
  EXPECT_GT(fresh->epoch(), high_water);
  EXPECT_TRUE(catalog.Close().ok());

  // A final reopen and fsck see a fully healed store.
  auto again = ViewCatalog::Open(path, 128);
  ASSERT_TRUE(again.ok()) << again.status().ToString();
  EXPECT_EQ((*again)->recovery_report().rolled_back_update_batches, 0u);
  EXPECT_NE((*again)->FindView("//b", param.scheme), nullptr);
  EXPECT_TRUE((*again)->Close().ok());
  FsckCatalogReport healed = FsckCatalog(path);
  EXPECT_TRUE(healed.clean()) << storage::ToJson(healed);
  EXPECT_EQ(healed.epoch_regressions, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    AllPointsAllSchemes, UpdateCrashMatrixTest,
    ::testing::Values(
        UpdateCrashCase{CrashPoint::kCrashMidDeltaMerge, Scheme::kElement},
        UpdateCrashCase{CrashPoint::kCrashMidDeltaMerge,
                        Scheme::kLinkedElement},
        UpdateCrashCase{CrashPoint::kCrashMidDeltaMerge,
                        Scheme::kLinkedElementPartial},
        UpdateCrashCase{CrashPoint::kCrashMidDeltaMerge, Scheme::kTuple},
        UpdateCrashCase{CrashPoint::kCrashBeforeEpochBump, Scheme::kElement},
        UpdateCrashCase{CrashPoint::kCrashBeforeEpochBump,
                        Scheme::kLinkedElement},
        UpdateCrashCase{CrashPoint::kCrashBeforeEpochBump,
                        Scheme::kLinkedElementPartial},
        UpdateCrashCase{CrashPoint::kCrashBeforeEpochBump, Scheme::kTuple},
        UpdateCrashCase{CrashPoint::kCrashAfterEpochBump, Scheme::kElement},
        UpdateCrashCase{CrashPoint::kCrashAfterEpochBump,
                        Scheme::kLinkedElement},
        UpdateCrashCase{CrashPoint::kCrashAfterEpochBump,
                        Scheme::kLinkedElementPartial},
        UpdateCrashCase{CrashPoint::kCrashAfterEpochBump, Scheme::kTuple}),
    UpdateCrashCaseName);

// A torn delta sidecar (crash mid-spill-write) is a crash artifact: fsck
// lists it, recovery sweeps it, nothing is corrupt.
TEST(UpdateCrashTest, TornDeltaSidecarIsSweptOnReopen) {
  const std::string path = TempPath("update_torn_sidecar.db");
  CleanupStore(path);
  const TreePattern p1 = MustParse("//a//b");
  xml::Document doc = MakeDoc(kMatrixDocSpec);
  ASSERT_TRUE(doc.RelabelWithGap(32).ok());
  uint64_t pre_length = 0;
  {
    ViewCatalog victim(path, 128, /*persistent=*/true);
    const MaterializedView* v1 = victim.Materialize(doc, p1, Scheme::kElement);
    pre_length = v1->ListLength(0);
    DeltaCollector collector(&doc, {p1});
    MutateMatrixDoc(&doc, &collector);
    std::vector<PatternDeltas> deltas = collector.TakeDeltas();
    std::vector<ViewCatalog::ViewUpdateSpec> specs(1);
    specs[0].view = v1;
    specs[0].deltas.added = std::move(deltas[0].added);
    specs[0].deltas.removed = std::move(deltas[0].removed);
    ViewCatalog::UpdateBatchOptions options;
    options.delta_spill_bytes = 1;
    ScopedFaultInjection fi;
    fi->ArmCrashPoint(CrashPoint::kCrashBeforeEpochBump);
    ASSERT_FALSE(victim.ApplyUpdateBatch(doc, specs, options).ok());
  }
  // Tear the sidecar in half, as a crash mid-write would.
  const std::string sidecar = path + ".updatedelta";
  ASSERT_TRUE(FileExists(sidecar));
  struct stat st;
  ASSERT_EQ(::stat(sidecar.c_str(), &st), 0);
  ASSERT_EQ(::truncate(sidecar.c_str(), st.st_size / 2), 0);

  FsckCatalogReport report = FsckCatalog(path);
  EXPECT_FALSE(report.corrupt()) << storage::ToJson(report);
  ASSERT_EQ(report.orphan_delta_files.size(), 1u);
  EXPECT_TRUE(report.repair_needed());

  auto reopened = ViewCatalog::Open(path, 128);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  EXPECT_GE((*reopened)->recovery_report().orphan_delta_files_removed, 1);
  EXPECT_FALSE(FileExists(sidecar));
  // The rolled-back view is the pre-batch one, intact.
  const MaterializedView* v = (*reopened)->FindView(p1.ToString(),
                                                    Scheme::kElement);
  ASSERT_NE(v, nullptr);
  EXPECT_EQ(v->ListLength(0), pre_length);
  EXPECT_TRUE((*reopened)->VerifyView(v).ok());
}

// ---- Checkpoint compaction torn mid-write (satellite: compaction fix) ------

TEST(CheckpointCrashTest, TornCompactionPreservesOriginalJournal) {
  const std::string path = TempPath("update_compaction_crash.db");
  CleanupStore(path);
  xml::Document doc = MakeDoc(kMatrixDocSpec);
  ASSERT_TRUE(doc.RelabelWithGap(32).ok());
  const TreePattern query = MustParse("//a//b//c");
  uint64_t ref_hash = 0, epoch_before = 0;
  {
    ViewCatalog victim(path, 128, /*persistent=*/true);
    const MaterializedView* v1 =
        victim.Materialize(doc, MustParse("//a//b"), Scheme::kLinkedElement);
    const MaterializedView* v2 =
        victim.Materialize(doc, MustParse("//c"), Scheme::kLinkedElement);
    ref_hash = QueryHash(doc, &victim, query, {v1, v2});
    epoch_before = victim.epoch();

    ScopedFaultInjection fi;
    fi->ArmCrashPoint(CrashPoint::kCrashMidCompaction);
    util::Status compacted = victim.Checkpoint();
    ASSERT_FALSE(compacted.ok());
    EXPECT_NE(compacted.ToString().find("injected crash"), std::string::npos)
        << compacted.ToString();
    // The torn tmp stays; the original journal was never replaced.
    EXPECT_TRUE(FileExists(path + ".manifest.tmp"));
    EXPECT_TRUE(FileExists(path + ".manifest"));
  }

  // fsck: the journal replays fine (the tmp never became the journal).
  FsckCatalogReport report = FsckCatalog(path);
  EXPECT_FALSE(report.corrupt()) << storage::ToJson(report);
  EXPECT_EQ(report.last_epoch, epoch_before);
  EXPECT_EQ(report.view_count, 2u);
  EXPECT_EQ(report.epoch_regressions, 0u);

  // Reopen: both views, identical answers, epoch preserved.
  auto reopened = ViewCatalog::Open(path, 128);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  ViewCatalog& catalog = **reopened;
  EXPECT_EQ(catalog.epoch(), epoch_before);
  const MaterializedView* r1 =
      catalog.FindView("//a//b", Scheme::kLinkedElement);
  const MaterializedView* r2 = catalog.FindView("//c", Scheme::kLinkedElement);
  ASSERT_NE(r1, nullptr);
  ASSERT_NE(r2, nullptr);
  EXPECT_EQ(QueryHash(doc, &catalog, query, {r1, r2}), ref_hash);

  // The post-recovery compaction succeeds, and epochs minted after it stay
  // strictly above the pre-compaction high-water mark (the kEpochMark
  // regression this test guards against).
  ASSERT_TRUE(catalog.Checkpoint().ok());
  const MaterializedView* fresh =
      catalog.Materialize(doc, MustParse("//b"), Scheme::kElement);
  EXPECT_GT(fresh->epoch(), epoch_before);
  EXPECT_TRUE(catalog.Close().ok());

  auto again = ViewCatalog::Open(path, 128);
  ASSERT_TRUE(again.ok()) << again.status().ToString();
  EXPECT_GE((*again)->epoch(), fresh->epoch());
  EXPECT_TRUE((*again)->Close().ok());
  FsckCatalogReport healed = FsckCatalog(path);
  EXPECT_EQ(healed.epoch_regressions, 0u);
  EXPECT_FALSE(healed.corrupt()) << storage::ToJson(healed);
}

// ---- fsck epoch reporting over applied update batches (satellite: fsck) ----

TEST(FsckUpdateTest, MaxEpochIsMonotoneAcrossUpdateBatches) {
  const std::string path = TempPath("update_fsck_epochs.db");
  CleanupStore(path);
  xml::Document doc = MakeDoc(kMatrixDocSpec);
  ASSERT_TRUE(doc.RelabelWithGap(32).ok());
  const TreePattern p1 = MustParse("//a//b");
  const TreePattern p2 = MustParse("//c");
  uint64_t txn_epoch = 0;
  {
    ViewCatalog catalog(path, 128, /*persistent=*/true);
    const MaterializedView* v1 = catalog.Materialize(doc, p1, Scheme::kElement);
    const MaterializedView* v2 = catalog.Materialize(doc, p2, Scheme::kElement);
    DeltaCollector collector(&doc, {p1, p2});
    MutateMatrixDoc(&doc, &collector);
    std::vector<PatternDeltas> deltas = collector.TakeDeltas();
    std::vector<ViewCatalog::ViewUpdateSpec> specs(2);
    specs[0].view = v1;
    specs[0].deltas.added = std::move(deltas[0].added);
    specs[0].deltas.removed = std::move(deltas[0].removed);
    specs[1].view = v2;
    specs[1].deltas.added = std::move(deltas[1].added);
    specs[1].deltas.removed = std::move(deltas[1].removed);
    auto applied = catalog.ApplyUpdateBatch(doc, specs);
    ASSERT_TRUE(applied.ok()) << applied.status().ToString();
    txn_epoch = applied->txn_epoch;
    ASSERT_GT(txn_epoch, 0u);
    EXPECT_TRUE(catalog.Close().ok());
  }
  FsckCatalogReport report = FsckCatalog(path);
  EXPECT_TRUE(report.clean()) << storage::ToJson(report);
  EXPECT_EQ(report.max_epoch, report.last_epoch);
  EXPECT_GT(report.max_epoch, txn_epoch);  // installs + commit minted above it
  EXPECT_EQ(report.epoch_regressions, 0u);
  // --json carries the monotonicity fields for CI gates.
  const std::string json = storage::ToJson(report);
  EXPECT_NE(json.find("\"max_epoch\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"epoch_regressions\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"rolled_back_update_batches\""), std::string::npos)
      << json;
}

}  // namespace
}  // namespace viewjoin
