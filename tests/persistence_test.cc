// Catalog persistence: materialize views into a persistent catalog, save the
// manifest, reopen in a fresh catalog, and verify both the metadata and the
// query answers survive the round trip.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "algo/query_binding.h"
#include "algo/twig_stack.h"
#include "storage/materialized_view.h"
#include "tests/test_util.h"
#include "tpq/evaluator.h"

namespace viewjoin {
namespace {

using storage::ListCursor;
using storage::MaterializedView;
using storage::Scheme;
using storage::ViewCatalog;
using testing::MakeDoc;
using testing::MustParse;
using tpq::TreePattern;

std::string TempPath(const char* name) {
  return std::string(::testing::TempDir()) + name;
}

TEST(PersistenceTest, ManifestRoundTripPreservesViews) {
  xml::Document doc = MakeDoc("r(a(b(c) a(b(c c)) b) a(x(b(c))) b(c))");
  std::string path = TempPath("persist_rt.db");
  {
    ViewCatalog catalog(path, 64, /*persistent=*/true);
    catalog.Materialize(doc, MustParse("//a//b"), Scheme::kLinkedElement);
    catalog.Materialize(doc, MustParse("//c"), Scheme::kLinkedElement);
    catalog.Materialize(doc, MustParse("//a//b//c"), Scheme::kTuple);
    catalog.SaveManifest();
  }
  std::string error;
  std::unique_ptr<ViewCatalog> reopened = ViewCatalog::Open(path, 64, &error);
  ASSERT_NE(reopened, nullptr) << error;
  ASSERT_EQ(reopened->views().size(), 3u);
  const MaterializedView* ab = reopened->views()[0].get();
  EXPECT_EQ(ab->pattern().ToString(), "//a//b");
  EXPECT_EQ(ab->scheme(), Scheme::kLinkedElement);
  EXPECT_GT(ab->SizeBytes(), 0u);
  EXPECT_GT(ab->PointerCount(), 0u);
  const MaterializedView* tup = reopened->views()[2].get();
  EXPECT_EQ(tup->scheme(), Scheme::kTuple);
  EXPECT_GT(tup->MatchCount(), 0u);

  // The stored lists read back correctly and still answer the query.
  ListCursor cursor(&ab->list(0), reopened->pool());
  uint32_t prev = 0;
  for (cursor.Reset(); !cursor.AtEnd(); cursor.Next()) {
    EXPECT_GT(cursor.LabelAt().start, prev);
    prev = cursor.LabelAt().start;
  }
  TreePattern query = MustParse("//a//b//c");
  auto binding = algo::QueryBinding::Bind(
      doc, query, {ab, reopened->views()[1].get()});
  ASSERT_TRUE(binding.has_value());
  algo::TwigStack ts(&*binding, reopened->pool());
  tpq::CountingSink sink;
  ts.Evaluate(&sink);
  EXPECT_EQ(sink.count(), tpq::NaiveEvaluator(doc, query).Count());
}

TEST(PersistenceTest, OpenFailsCleanlyWithoutManifest) {
  std::string error;
  EXPECT_EQ(ViewCatalog::Open(TempPath("no_such.db"), 16, &error), nullptr);
  EXPECT_NE(error.find("manifest"), std::string::npos);
}

TEST(PersistenceTest, OpenRejectsCorruptManifest) {
  xml::Document doc = MakeDoc("a(b)");
  std::string path = TempPath("persist_bad.db");
  {
    ViewCatalog catalog(path, 16, /*persistent=*/true);
    catalog.Materialize(doc, MustParse("//a//b"), Scheme::kElement);
    catalog.SaveManifest();
  }
  // Truncate the manifest mid-way.
  {
    std::FILE* f = std::fopen((path + ".manifest").c_str(), "r+");
    ASSERT_NE(f, nullptr);
    std::fclose(f);
    std::FILE* w = std::fopen((path + ".manifest").c_str(), "w");
    std::fprintf(w, "VIEWJOINCAT 1\n5\nV 0 //a//b\n");
    std::fclose(w);
  }
  std::string error;
  EXPECT_EQ(ViewCatalog::Open(path, 16, &error), nullptr);
  EXPECT_NE(error.find("malformed"), std::string::npos);
}

TEST(PersistenceTest, ScratchCatalogRemovesItsFile) {
  std::string path = TempPath("persist_scratch.db");
  {
    xml::Document doc = MakeDoc("a(b)");
    ViewCatalog catalog(path, 16);  // non-persistent
    catalog.Materialize(doc, MustParse("//a"), Scheme::kElement);
  }
  std::FILE* f = std::fopen(path.c_str(), "r");
  EXPECT_EQ(f, nullptr);
  if (f != nullptr) std::fclose(f);
}

}  // namespace
}  // namespace viewjoin
