// Catalog persistence: materialize views into a persistent catalog, save the
// manifest, reopen in a fresh catalog, and verify both the metadata and the
// query answers survive the round trip — plus the format-v2 file header:
// garbage, pre-checksum, and truncated pager files must be rejected with a
// typed kCorruption status instead of aborting or serving bad pages.

#include <gtest/gtest.h>
#include <unistd.h>

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "algo/query_binding.h"
#include "algo/twig_stack.h"
#include "storage/materialized_view.h"
#include "storage/pager.h"
#include "tests/test_util.h"
#include "tpq/evaluator.h"
#include "util/status.h"

namespace viewjoin {
namespace {

using storage::ListCursor;
using storage::MaterializedView;
using storage::Pager;
using storage::Scheme;
using storage::ViewCatalog;
using testing::MakeDoc;
using testing::MustParse;
using tpq::TreePattern;
using util::StatusCode;

std::string TempPath(const char* name) {
  return std::string(::testing::TempDir()) + name;
}

TEST(PersistenceTest, ManifestRoundTripPreservesViews) {
  xml::Document doc = MakeDoc("r(a(b(c) a(b(c c)) b) a(x(b(c))) b(c))");
  std::string path = TempPath("persist_rt.db");
  uint64_t fresh_hash = 0;
  {
    ViewCatalog catalog(path, 64, /*persistent=*/true);
    const MaterializedView* ab =
        catalog.Materialize(doc, MustParse("//a//b"), Scheme::kLinkedElement);
    const MaterializedView* c =
        catalog.Materialize(doc, MustParse("//c"), Scheme::kLinkedElement);
    catalog.Materialize(doc, MustParse("//a//b//c"), Scheme::kTuple);
    // Fingerprint the answer over the freshly materialized store.
    TreePattern query = MustParse("//a//b//c");
    auto qb = algo::QueryBinding::Bind(doc, query, {ab, c});
    ASSERT_TRUE(qb.has_value());
    algo::TwigStack ts(&*qb, catalog.pool());
    tpq::HashingSink fresh;
    ts.Evaluate(&fresh);
    fresh_hash = fresh.hash();
    catalog.SaveManifest();
  }
  auto opened = ViewCatalog::Open(path, 64);
  ASSERT_TRUE(opened.ok()) << opened.status().ToString();
  std::unique_ptr<ViewCatalog> reopened = std::move(*opened);
  ASSERT_EQ(reopened->views().size(), 3u);
  const MaterializedView* ab = reopened->views()[0].get();
  EXPECT_EQ(ab->pattern().ToString(), "//a//b");
  EXPECT_EQ(ab->scheme(), Scheme::kLinkedElement);
  EXPECT_GT(ab->SizeBytes(), 0u);
  EXPECT_GT(ab->PointerCount(), 0u);
  const MaterializedView* tup = reopened->views()[2].get();
  EXPECT_EQ(tup->scheme(), Scheme::kTuple);
  EXPECT_GT(tup->MatchCount(), 0u);

  // The stored lists read back correctly (checksums verified on every page
  // read) and still answer the query with the identical match fingerprint.
  ListCursor cursor(&ab->list(0), reopened->pool());
  uint32_t prev = 0;
  for (cursor.Reset(); !cursor.AtEnd(); cursor.Next()) {
    EXPECT_GT(cursor.LabelAt().start, prev);
    prev = cursor.LabelAt().start;
  }
  TreePattern query = MustParse("//a//b//c");
  auto binding = algo::QueryBinding::Bind(
      doc, query, {ab, reopened->views()[1].get()});
  ASSERT_TRUE(binding.has_value());
  algo::TwigStack ts(&*binding, reopened->pool());
  tpq::HashingSink sink;
  ts.Evaluate(&sink);
  EXPECT_EQ(sink.count(), tpq::NaiveEvaluator(doc, query).Count());
  EXPECT_EQ(sink.hash(), fresh_hash);
}

TEST(PersistenceTest, OpenFailsCleanlyWithoutManifest) {
  auto opened = ViewCatalog::Open(TempPath("no_such.db"), 16);
  ASSERT_FALSE(opened.ok());
  EXPECT_EQ(opened.status().code(), StatusCode::kNotFound);
  EXPECT_NE(opened.status().message().find("manifest"), std::string::npos);
}

TEST(PersistenceTest, OpenRejectsCorruptManifest) {
  xml::Document doc = MakeDoc("a(b)");
  std::string path = TempPath("persist_bad.db");
  {
    ViewCatalog catalog(path, 16, /*persistent=*/true);
    catalog.Materialize(doc, MustParse("//a//b"), Scheme::kElement);
    catalog.SaveManifest();
  }
  // Truncate the manifest mid-way.
  {
    std::FILE* w = std::fopen((path + ".manifest").c_str(), "w");
    ASSERT_NE(w, nullptr);
    std::fprintf(w, "VIEWJOINCAT 1\n5\nV 0 //a//b\n");
    std::fclose(w);
  }
  auto opened = ViewCatalog::Open(path, 16);
  ASSERT_FALSE(opened.ok());
  EXPECT_EQ(opened.status().code(), StatusCode::kCorruption);
  EXPECT_NE(opened.status().message().find("malformed"), std::string::npos);
}

TEST(PersistenceTest, OpenRejectsManifestPointingPastFile) {
  xml::Document doc = MakeDoc("a(b)");
  std::string path = TempPath("persist_oob.db");
  {
    ViewCatalog catalog(path, 16, /*persistent=*/true);
    catalog.Materialize(doc, MustParse("//a//b"), Scheme::kElement);
    catalog.SaveManifest();
  }
  // Rewrite the manifest so a list claims a first page beyond the pager file.
  {
    std::FILE* w = std::fopen((path + ".manifest").c_str(), "w");
    ASSERT_NE(w, nullptr);
    std::fprintf(w,
                 "VIEWJOINCAT 1\n1\nV 0 //a//b\nM 1 24 0\nG 1 1\nL 2\n"
                 "999 1 1 0 0\n0 1 1 0 0\n0 0 1 0 0\n");
    std::fclose(w);
  }
  auto opened = ViewCatalog::Open(path, 16);
  ASSERT_FALSE(opened.ok());
  EXPECT_EQ(opened.status().code(), StatusCode::kCorruption);
}

TEST(PersistenceTest, ScratchCatalogRemovesItsFile) {
  std::string path = TempPath("persist_scratch.db");
  {
    xml::Document doc = MakeDoc("a(b)");
    ViewCatalog catalog(path, 16);  // non-persistent
    catalog.Materialize(doc, MustParse("//a"), Scheme::kElement);
  }
  std::FILE* f = std::fopen(path.c_str(), "r");
  EXPECT_EQ(f, nullptr);
  if (f != nullptr) std::fclose(f);
}

// ---- Format-v2 file header ----------------------------------------------

TEST(PagerHeaderTest, PersistedFileReopensAndServesPages) {
  std::string path = TempPath("hdr_rt.db");
  std::vector<uint8_t> page(Pager::kPageSize);
  for (size_t i = 0; i < page.size(); ++i) page[i] = static_cast<uint8_t>(i);
  {
    Pager pager(path, Pager::Mode::kPersist);
    ASSERT_TRUE(pager.init_status().ok());
    storage::PageId id = *pager.AllocatePage();
    ASSERT_TRUE(pager.WritePage(id, page.data()).ok());
  }
  Pager reopened(path, Pager::Mode::kReopen);
  ASSERT_TRUE(reopened.init_status().ok()) << reopened.init_status().ToString();
  EXPECT_EQ(reopened.page_count(), 1u);
  std::vector<uint8_t> out(Pager::kPageSize);
  ASSERT_TRUE(reopened.ReadPage(0, out.data()).ok());
  EXPECT_EQ(out, page);
  std::remove(path.c_str());
}

TEST(PagerHeaderTest, ReopenRejectsMissingFile) {
  Pager pager(TempPath("hdr_missing.db"), Pager::Mode::kReopen);
  EXPECT_EQ(pager.init_status().code(), StatusCode::kNotFound);
}

TEST(PagerHeaderTest, ReopenRejectsGarbageFile) {
  std::string path = TempPath("hdr_garbage.db");
  {
    std::FILE* f = std::fopen(path.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    for (int i = 0; i < 5000; ++i) std::fputc(i & 0xFF, f);
    std::fclose(f);
  }
  Pager pager(path, Pager::Mode::kReopen);
  EXPECT_EQ(pager.init_status().code(), StatusCode::kCorruption);
  // Page operations propagate the init failure instead of touching the file.
  std::vector<uint8_t> out(Pager::kPageSize);
  EXPECT_EQ(pager.ReadPage(0, out.data()).code(), StatusCode::kCorruption);
  EXPECT_FALSE(pager.AllocatePage().ok());
  std::remove(path.c_str());
}

TEST(PagerHeaderTest, ReopenRejectsPreChecksumFormat) {
  // A version-1 file was raw pages with no header: 4096 zero bytes look like
  // one old-format page and must not be interpreted as format 2.
  std::string path = TempPath("hdr_v1.db");
  {
    std::FILE* f = std::fopen(path.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    std::vector<uint8_t> zeros(Pager::kPageSize, 0);
    std::fwrite(zeros.data(), 1, zeros.size(), f);
    std::fclose(f);
  }
  Pager pager(path, Pager::Mode::kReopen);
  EXPECT_EQ(pager.init_status().code(), StatusCode::kCorruption);
  std::remove(path.c_str());
}

TEST(PagerHeaderTest, ReopenRejectsTruncatedFile) {
  std::string path = TempPath("hdr_trunc.db");
  {
    Pager pager(path, Pager::Mode::kPersist);
    std::vector<uint8_t> page(Pager::kPageSize, 0x5A);
    ASSERT_TRUE(pager.WritePage(*pager.AllocatePage(), page.data()).ok());
    ASSERT_TRUE(pager.WritePage(*pager.AllocatePage(), page.data()).ok());
  }
  // Chop the file mid-page (simulated crash during append).
  {
    std::FILE* f = std::fopen(path.c_str(), "rb");
    ASSERT_NE(f, nullptr);
    std::fseek(f, 0, SEEK_END);
    long size = std::ftell(f);
    std::fclose(f);
    ASSERT_EQ(truncate(path.c_str(), size - 100), 0);
  }
  Pager pager(path, Pager::Mode::kReopen);
  EXPECT_EQ(pager.init_status().code(), StatusCode::kCorruption);
  EXPECT_NE(pager.init_status().message().find("truncated"),
            std::string::npos);
  std::remove(path.c_str());
}

TEST(PagerHeaderTest, HeaderCrcDetectsHeaderTampering) {
  std::string path = TempPath("hdr_tamper.db");
  {
    Pager pager(path, Pager::Mode::kPersist);
    std::vector<uint8_t> page(Pager::kPageSize, 0x33);
    ASSERT_TRUE(pager.WritePage(*pager.AllocatePage(), page.data()).ok());
  }
  {
    std::FILE* f = std::fopen(path.c_str(), "r+b");
    ASSERT_NE(f, nullptr);
    std::fseek(f, 13, SEEK_SET);  // inside the page-size field
    std::fputc(0x7F, f);
    std::fclose(f);
  }
  Pager pager(path, Pager::Mode::kReopen);
  EXPECT_EQ(pager.init_status().code(), StatusCode::kCorruption);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace viewjoin
