// Out-of-core base document tests: the paged DocumentStore (build / spill /
// reopen / corruption surfacing), the streaming SAX parser it is fed by
// (identical errors and offsets to the DOM parser, clean mid-stream aborts),
// the vj_fsck doc-store report, and the strict VIEWJOIN_* environment knobs.
//
// The central safety property exercised throughout: the manifest checkpoint
// is the single atomic commit point. A failed or aborted build — parse
// error, truncated input, injected write fault — must leave NO files behind
// (no pager file, no manifest, no spill runs), and a pager file without a
// manifest is an orphan that Open refuses and fsck flags.

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <sys/stat.h>
#include <vector>

#include "core/engine.h"
#include "storage/document_store.h"
#include "storage/fsck.h"
#include "storage/stored_list.h"
#include "tests/test_util.h"
#include "util/fault_injection.h"
#include "xml/parser.h"

namespace viewjoin {
namespace {

using storage::DocumentStore;
using storage::FsckDocStoreReport;
using storage::FsckDocumentStore;
using storage::ListCursor;
using storage::StoredList;
using util::StatusCode;

std::string TempPath(const std::string& name) {
  return std::string(::testing::TempDir()) + name;
}

bool FileExists(const std::string& path) {
  struct stat st;
  return ::stat(path.c_str(), &st) == 0;
}

/// Asserts an aborted/failed build left no trace: no pager file, no
/// manifest, no spill runs.
void ExpectNoStoreFiles(const std::string& path) {
  EXPECT_FALSE(FileExists(path)) << path;
  EXPECT_FALSE(FileExists(path + ".manifest")) << path << ".manifest";
  for (int run = 0; run < 8; ++run) {
    const std::string base = path + ".run" + std::to_string(run);
    EXPECT_FALSE(FileExists(base + ".a")) << base << ".a";
    EXPECT_FALSE(FileExists(base + ".b")) << base << ".b";
  }
}

/// Synthetic document with enough elements (and repeated tags) to span many
/// pages and force spill runs under a tiny parse budget.
std::string BigXml(int sections) {
  std::string xml = "<root>";
  for (int i = 0; i < sections; ++i) {
    xml += "<section><head><title/></head>";
    for (int j = 0; j < 5; ++j) {
      xml += "<para><bold/><keyword/></para>";
    }
    xml += "</section>";
  }
  xml += "</root>";
  return xml;
}

/// All labels of one tag read back through a pooled cursor, in list order.
std::vector<xml::Label> ScanTag(const DocumentStore& store,
                                const std::string& tag) {
  std::vector<xml::Label> labels;
  const StoredList* list = store.ListOfTag(store.FindTag(tag));
  for (ListCursor cursor(list, store.pool()); !cursor.AtEnd(); cursor.Next()) {
    labels.push_back(cursor.LabelAt());
  }
  return labels;
}

/// The same list taken from the in-memory document, sorted by start (the
/// order the store's element streams guarantee).
std::vector<xml::Label> DocTagLabels(const xml::Document& doc,
                                     const std::string& tag) {
  std::vector<xml::Label> labels;
  xml::TagId id = doc.FindTag(tag);
  for (xml::NodeId n = 0; n < doc.NodeCount(); ++n) {
    if (doc.NodeTag(n) == id) labels.push_back(doc.NodeLabel(n));
  }
  std::sort(labels.begin(), labels.end(),
            [](const xml::Label& a, const xml::Label& b) {
              return a.start < b.start;
            });
  return labels;
}

bool SameLabels(const std::vector<xml::Label>& a,
                const std::vector<xml::Label>& b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (a[i].start != b[i].start || a[i].end != b[i].end ||
        a[i].level != b[i].level) {
      return false;
    }
  }
  return true;
}

TEST(DocumentStoreTest, BuildRoundtripMatchesInMemoryParse) {
  const std::string xml = BigXml(40);
  xml::ParseResult parsed = xml::ParseDocument(xml);
  ASSERT_TRUE(parsed.ok()) << parsed.error;
  const xml::Document& doc = *parsed.document;

  const std::string path = TempPath("doc_roundtrip.doc");
  auto store = DocumentStore::BuildFromText(path, xml, {});
  ASSERT_TRUE(store.ok()) << store.status().ToString();

  EXPECT_EQ((*store)->node_count(), doc.NodeCount());
  ASSERT_EQ((*store)->TagCount(), doc.TagCount());
  for (xml::NodeId n = 0; n < doc.NodeCount(); ++n) {
    auto node = (*store)->NodeAt(n);
    ASSERT_TRUE(node.ok()) << node.status().ToString();
    const xml::Label& expected = doc.NodeLabel(n);
    EXPECT_EQ(node->start, expected.start);
    EXPECT_EQ(node->end, expected.end);
    EXPECT_EQ(node->level, expected.level);
    EXPECT_EQ((*store)->TagName(node->tag), doc.TagName(doc.NodeTag(n)));
    EXPECT_EQ(node->parent, doc.Parent(n));
  }
  for (const char* tag : {"root", "section", "para", "bold", "keyword"}) {
    EXPECT_TRUE(SameLabels(ScanTag(**store, tag), DocTagLabels(doc, tag)))
        << tag;
  }
  // Unknown tags yield the shared empty list, not a crash.
  EXPECT_EQ((*store)->ListOfTag((*store)->FindTag("nosuchtag"))->count, 0u);
}

TEST(DocumentStoreTest, TinySpillBudgetBuildsIdenticalStore) {
  const std::string xml = BigXml(60);
  const std::string big_path = TempPath("doc_nospill.doc");
  const std::string tiny_path = TempPath("doc_spill.doc");
  auto big = DocumentStore::BuildFromText(big_path, xml, {});
  ASSERT_TRUE(big.ok()) << big.status().ToString();
  // A 1-byte budget clamps to the floor (one page of records), forcing many
  // sorted runs and the k-way merge path.
  DocumentStore::Options tiny_options;
  tiny_options.parse_budget_bytes = 1;
  auto tiny = DocumentStore::BuildFromText(tiny_path, xml, tiny_options);
  ASSERT_TRUE(tiny.ok()) << tiny.status().ToString();

  EXPECT_EQ((*tiny)->node_count(), (*big)->node_count());
  EXPECT_EQ((*tiny)->TagCount(), (*big)->TagCount());
  for (const char* tag : {"root", "section", "head", "title", "para", "bold",
                          "keyword"}) {
    EXPECT_TRUE(SameLabels(ScanTag(**tiny, tag), ScanTag(**big, tag))) << tag;
  }
  // A successful build sweeps its own spill runs.
  for (int run = 0; run < 8; ++run) {
    EXPECT_FALSE(FileExists(tiny_path + ".run" + std::to_string(run) + ".a"));
  }
}

TEST(DocumentStoreTest, BuildFromDocumentMirrorsEveryLabel) {
  util::Rng rng(99);
  xml::Document doc =
      testing::RandomDoc(&rng, 1500, {"a", "b", "c", "d", "e"});
  const std::string path = TempPath("doc_snapshot.doc");
  auto store = DocumentStore::BuildFromDocument(path, doc, {});
  ASSERT_TRUE(store.ok()) << store.status().ToString();
  ASSERT_EQ((*store)->node_count(), doc.NodeCount());
  for (xml::NodeId n = 0; n < doc.NodeCount(); ++n) {
    auto node = (*store)->NodeAt(n);
    ASSERT_TRUE(node.ok()) << node.status().ToString();
    const xml::Label& expected = doc.NodeLabel(n);
    EXPECT_EQ(node->start, expected.start);
    EXPECT_EQ(node->end, expected.end);
    EXPECT_EQ(node->level, expected.level);
  }
  for (const char* tag : {"a", "b", "c", "d", "e"}) {
    EXPECT_TRUE(SameLabels(ScanTag(**store, tag), DocTagLabels(doc, tag)))
        << tag;
  }
}

TEST(DocumentStoreTest, OpenReopensWhatBuildWrote) {
  const std::string xml = BigXml(30);
  const std::string path = TempPath("doc_reopen.doc");
  uint64_t nodes = 0;
  size_t tags = 0;
  std::vector<xml::Label> paras;
  {
    auto store = DocumentStore::BuildFromText(path, xml, {});
    ASSERT_TRUE(store.ok()) << store.status().ToString();
    nodes = (*store)->node_count();
    tags = (*store)->TagCount();
    paras = ScanTag(**store, "para");
  }
  auto reopened = DocumentStore::Open(path, {});
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  EXPECT_EQ((*reopened)->node_count(), nodes);
  EXPECT_EQ((*reopened)->TagCount(), tags);
  EXPECT_TRUE(SameLabels(ScanTag(**reopened, "para"), paras));
}

TEST(DocumentStoreTest, OpenWithoutManifestIsNotFound) {
  const std::string path = TempPath("doc_orphan.doc");
  {
    auto store = DocumentStore::BuildFromText(path, BigXml(5), {});
    ASSERT_TRUE(store.ok()) << store.status().ToString();
  }
  ASSERT_EQ(std::remove((path + ".manifest").c_str()), 0);
  auto reopened = DocumentStore::Open(path, {});
  ASSERT_FALSE(reopened.ok());
  EXPECT_EQ(reopened.status().code(), StatusCode::kNotFound);
}

TEST(DocumentStoreTest, CorruptPageSurfacesThroughErrorScope) {
  const std::string path = TempPath("doc_corrupt.doc");
  {
    auto store = DocumentStore::BuildFromText(path, BigXml(40), {});
    ASSERT_TRUE(store.ok()) << store.status().ToString();
  }
  // Flip bytes in the middle of the data region (past the 64-byte header);
  // some durable page now fails its checksum.
  {
    std::FILE* f = std::fopen(path.c_str(), "r+b");
    ASSERT_NE(f, nullptr);
    ASSERT_EQ(std::fseek(f, 64 + 3 * 4112 + 1000, SEEK_SET), 0);
    const uint8_t garbage[8] = {0xDE, 0xAD, 0xBE, 0xEF, 0xDE, 0xAD, 0xBE,
                                0xEF};
    ASSERT_EQ(std::fwrite(garbage, 1, sizeof garbage, f), sizeof garbage);
    std::fclose(f);
  }
  // The TOC still opens (corruption is per-page), but reading through the
  // bad page latches the fault in the enclosing ErrorScope.
  auto store = DocumentStore::Open(path, {});
  ASSERT_TRUE(store.ok()) << store.status().ToString();
  storage::BufferPool::ErrorScope guard((*store)->pool());
  for (size_t t = 0; t < (*store)->TagCount(); ++t) {
    ScanTag(**store, (*store)->TagName(static_cast<xml::TagId>(t)));
  }
  for (xml::NodeId n = 0; n < (*store)->node_count(); ++n) {
    (void)(*store)->NodeAt(n);
  }
  EXPECT_FALSE(guard.error().ok());
  EXPECT_EQ(guard.error().code(), StatusCode::kCorruption);
}

TEST(DocumentStoreTest, ParseErrorBuildLeavesNoFiles) {
  const std::string path = TempPath("doc_badxml.doc");
  auto store = DocumentStore::BuildFromText(path, "<a><b></a>", {});
  ASSERT_FALSE(store.ok());
  EXPECT_EQ(store.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(store.status().ToString().find("parse error at offset"),
            std::string::npos)
      << store.status().ToString();
  ExpectNoStoreFiles(path);
}

TEST(DocumentStoreTest, TruncatedXmlBuildLeavesNoFiles) {
  // Same prefix the streaming parser accepts, cut mid-document — and cut
  // mid-tag. Both must abort with the DOM parser's message and offset and
  // sweep every staged file, even under a spill-forcing budget.
  DocumentStore::Options tiny;
  tiny.parse_budget_bytes = 1;
  for (const std::string xml :
       {BigXml(20).substr(0, 500), BigXml(20).substr(0, 503)}) {
    const std::string path = TempPath("doc_truncated.doc");
    auto store = DocumentStore::BuildFromText(path, xml, tiny);
    ASSERT_FALSE(store.ok());
    EXPECT_EQ(store.status().code(), StatusCode::kInvalidArgument);
    xml::ParseResult dom = xml::ParseDocument(xml);
    ASSERT_FALSE(dom.ok());
    EXPECT_NE(store.status().ToString().find(dom.error), std::string::npos)
        << store.status().ToString() << " vs " << dom.error;
    EXPECT_NE(store.status().ToString().find(std::to_string(dom.error_offset)),
              std::string::npos);
    ExpectNoStoreFiles(path);
  }
}

TEST(DocumentStoreTest, InjectedWriteFaultAbortsWithoutOrphans) {
  // Every page write fails: the build aborts mid-stream exactly where a full
  // disk would stop it. The abort must remove the pager file and all runs
  // and never write a manifest.
  const std::string path = TempPath("doc_wfault.doc");
  util::ScopedFaultInjection faults;
  faults->ArmWriteFault(util::WriteFault::kShortWrite, 1, -1);
  DocumentStore::Options tiny;
  tiny.parse_budget_bytes = 1;
  auto store = DocumentStore::BuildFromText(path, BigXml(40), tiny);
  ASSERT_FALSE(store.ok());
  faults->Reset();
  ExpectNoStoreFiles(path);
  // And the failure is invisible to a later build at the same path.
  auto retry = DocumentStore::BuildFromText(path, BigXml(40), tiny);
  ASSERT_TRUE(retry.ok()) << retry.status().ToString();
  EXPECT_GT((*retry)->node_count(), 0u);
}

// ---- fsck over document stores ---------------------------------------------

TEST(DocStoreFsckTest, AbsentStoreIsVacuouslyClean) {
  FsckDocStoreReport report =
      FsckDocumentStore(TempPath("no_such_store.doc"));
  EXPECT_FALSE(report.present);
  EXPECT_TRUE(report.clean());
  EXPECT_FALSE(report.corrupt());
}

TEST(DocStoreFsckTest, CleanOrphanStrayAndCorruptVerdicts) {
  const std::string path = TempPath("doc_fsck.doc");
  {
    auto store = DocumentStore::BuildFromText(path, BigXml(25), {});
    ASSERT_TRUE(store.ok()) << store.status().ToString();
  }
  FsckDocStoreReport clean = FsckDocumentStore(path);
  EXPECT_TRUE(clean.present);
  EXPECT_TRUE(clean.clean()) << storage::ToJson(clean);
  EXPECT_GT(clean.tag_count, 0u);
  EXPECT_GT(clean.node_count, 0u);
  EXPECT_GT(clean.durable_page_count, 0u);

  // A stray spill run is a crash artifact, not corruption.
  const std::string stray = path + ".run0.a";
  {
    std::FILE* f = std::fopen(stray.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    std::fputs("leftover", f);
    std::fclose(f);
  }
  FsckDocStoreReport with_stray = FsckDocumentStore(path);
  ASSERT_EQ(with_stray.stray_runs.size(), 1u);
  EXPECT_FALSE(with_stray.clean());
  EXPECT_FALSE(with_stray.corrupt());
  ASSERT_EQ(std::remove(stray.c_str()), 0);

  // Rotten page inside the durable prefix: corruption.
  {
    std::FILE* f = std::fopen(path.c_str(), "r+b");
    ASSERT_NE(f, nullptr);
    ASSERT_EQ(std::fseek(f, 64 + 4112 + 500, SEEK_SET), 0);
    std::fputc(0xFF, f);
    std::fputc(0xFF, f);
    std::fputc(0xFF, f);
    std::fputc(0xFF, f);
    std::fclose(f);
  }
  FsckDocStoreReport corrupt = FsckDocumentStore(path);
  EXPECT_GT(corrupt.corrupt_durable_pages, 0u);
  EXPECT_TRUE(corrupt.corrupt());
  EXPECT_FALSE(corrupt.clean());

  // Pager file without manifest: an aborted-build orphan.
  ASSERT_EQ(std::remove((path + ".manifest").c_str()), 0);
  FsckDocStoreReport orphan = FsckDocumentStore(path);
  EXPECT_TRUE(orphan.orphan);
  EXPECT_FALSE(orphan.clean());
}

// ---- streaming parser ------------------------------------------------------

/// Handler that records the event sequence and optionally aborts after a
/// fixed number of StartElement events.
class RecordingHandler : public xml::ParseHandler {
 public:
  explicit RecordingHandler(int abort_after_starts = -1)
      : abort_after_(abort_after_starts) {}

  bool StartElement(std::string_view name) override {
    events.push_back("<" + std::string(name) + ">");
    ++starts;
    return abort_after_ < 0 || starts < abort_after_;
  }
  bool EndElement() override {
    events.push_back("</>");
    return true;
  }
  bool Text() override {
    ++texts;
    return true;
  }

  std::vector<std::string> events;
  int starts = 0;
  int texts = 0;

 private:
  int abort_after_;
};

TEST(ParseStreamTest, EventsMatchDomParse) {
  const std::string xml =
      "<?xml version='1.0'?><r a='1'><x>hi there</x><y/><!-- c --><z>"
      "<![CDATA[raw]]></z></r>";
  xml::ParseResult dom = xml::ParseDocument(xml);
  ASSERT_TRUE(dom.ok()) << dom.error;
  RecordingHandler handler;
  xml::StreamResult stream = xml::ParseStream(xml, &handler);
  ASSERT_TRUE(stream.ok) << stream.error;
  EXPECT_FALSE(stream.aborted);
  EXPECT_EQ(static_cast<size_t>(handler.starts), dom.document->NodeCount());
  // Balanced: every start is closed.
  EXPECT_EQ(handler.events.size(), 2 * static_cast<size_t>(handler.starts));
  EXPECT_EQ(handler.texts, 2);  // "hi there" is one run, "raw" the other
}

TEST(ParseStreamTest, MalformedInputsMatchDomErrorsAndOffsets) {
  // The streaming tokenizer must reject exactly what the DOM parser rejects,
  // with the same message at the same byte offset.
  const std::string cases[] = {
      "<a><b></a>",         // mismatched close
      "<a><b>",             // EOF with open tags
      "plain text",         // no root
      "<a></a><b></b>",     // second root
      "<a><b attr=></b>",   // broken attribute
      "< a></a>",           // space before name
      "<a></a",             // truncated close tag
  };
  for (const std::string& xml : cases) {
    xml::ParseResult dom = xml::ParseDocument(xml);
    ASSERT_FALSE(dom.ok()) << xml;
    RecordingHandler handler;
    xml::StreamResult stream = xml::ParseStream(xml, &handler);
    EXPECT_FALSE(stream.ok) << xml;
    EXPECT_FALSE(stream.aborted) << xml;
    EXPECT_EQ(stream.error, dom.error) << xml;
    EXPECT_EQ(stream.error_offset, dom.error_offset) << xml;
  }
}

TEST(ParseStreamTest, HandlerAbortStopsImmediately) {
  RecordingHandler handler(/*abort_after_starts=*/3);
  xml::StreamResult stream =
      xml::ParseStream("<a><b/><c/><d/><e/></a>", &handler);
  EXPECT_FALSE(stream.ok);
  EXPECT_TRUE(stream.aborted);
  EXPECT_EQ(handler.starts, 3);
}

TEST(ParseStreamTest, FileStreamWithTinyChunksMatchesStringStream) {
  const std::string xml = BigXml(10);
  const std::string path = TempPath("stream_chunks.xml");
  {
    std::FILE* f = std::fopen(path.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    ASSERT_EQ(std::fwrite(xml.data(), 1, xml.size(), f), xml.size());
    std::fclose(f);
  }
  RecordingHandler whole;
  ASSERT_TRUE(xml::ParseStream(xml, &whole).ok);
  // A 7-byte chunk splits every token across reads; the rolling buffer must
  // reassemble them without changing a single event.
  RecordingHandler chunked;
  xml::StreamResult stream =
      xml::ParseFileStream(path, &chunked, /*chunk_bytes=*/7);
  ASSERT_TRUE(stream.ok) << stream.error;
  EXPECT_EQ(chunked.events, whole.events);

  RecordingHandler missing;
  xml::StreamResult gone =
      xml::ParseFileStream(TempPath("no_such.xml"), &missing);
  EXPECT_FALSE(gone.ok);
  EXPECT_NE(gone.error.find("cannot open file"), std::string::npos);
}

// ---- environment knobs -----------------------------------------------------

/// Unsets every VIEWJOIN doc knob on entry and exit so tests cannot leak
/// environment into each other.
class ScopedDocEnv {
 public:
  ScopedDocEnv() { Clear(); }
  ~ScopedDocEnv() { Clear(); }
  static void Clear() {
    ::unsetenv("VIEWJOIN_DOC_MODE");
    ::unsetenv("VIEWJOIN_DOC_POOL_PAGES");
    ::unsetenv("VIEWJOIN_PARSE_BUDGET");
    ::unsetenv("VIEWJOIN_READAHEAD_PAGES");
  }
};

TEST(ApplyEnvOptionsTest, UnsetVariablesLeaveDefaultsUntouched) {
  ScopedDocEnv env;
  core::EngineOptions options;
  ASSERT_TRUE(core::ApplyEnvOptions(&options).ok());
  EXPECT_EQ(options.doc_mode, core::DocMode::kMemory);
  EXPECT_EQ(options.doc_pool_pages, 1024u);
  EXPECT_EQ(options.doc_parse_budget_bytes, size_t{64} << 20);
  EXPECT_EQ(options.readahead_pages, 0u);
}

TEST(ApplyEnvOptionsTest, WellFormedValuesApply) {
  ScopedDocEnv env;
  ::setenv("VIEWJOIN_DOC_MODE", "disk", 1);
  ::setenv("VIEWJOIN_DOC_POOL_PAGES", "64", 1);
  ::setenv("VIEWJOIN_PARSE_BUDGET", "4096", 1);
  ::setenv("VIEWJOIN_READAHEAD_PAGES", "8", 1);
  core::EngineOptions options;
  ASSERT_TRUE(core::ApplyEnvOptions(&options).ok());
  EXPECT_EQ(options.doc_mode, core::DocMode::kDisk);
  EXPECT_EQ(options.doc_pool_pages, 64u);
  EXPECT_EQ(options.doc_parse_budget_bytes, 4096u);
  EXPECT_EQ(options.readahead_pages, 8u);

  ::setenv("VIEWJOIN_DOC_MODE", "memory", 1);
  ASSERT_TRUE(core::ApplyEnvOptions(&options).ok());
  EXPECT_EQ(options.doc_mode, core::DocMode::kMemory);
}

TEST(ApplyEnvOptionsTest, MalformedValuesAreTypedErrors) {
  ScopedDocEnv env;
  struct Case {
    const char* name;
    const char* value;
  };
  // Strict parsing: no case folding, no suffixes, no signs, no garbage.
  const Case cases[] = {
      {"VIEWJOIN_DOC_MODE", "Disk"},
      {"VIEWJOIN_DOC_MODE", "paged"},
      // An empty value is treated as unset (the default applies), so it is
      // deliberately NOT in this table.
      {"VIEWJOIN_DOC_POOL_PAGES", "abc"},
      {"VIEWJOIN_DOC_POOL_PAGES", "-3"},
      {"VIEWJOIN_PARSE_BUDGET", "64MB"},
      {"VIEWJOIN_READAHEAD_PAGES", "1.5"},
      {"VIEWJOIN_READAHEAD_PAGES", " 4"},
  };
  for (const Case& c : cases) {
    ScopedDocEnv::Clear();
    ::setenv(c.name, c.value, 1);
    core::EngineOptions options;
    util::Status status = core::ApplyEnvOptions(&options);
    ASSERT_FALSE(status.ok()) << c.name << "=" << c.value;
    EXPECT_EQ(status.code(), StatusCode::kInvalidArgument)
        << c.name << "=" << c.value;
    EXPECT_NE(status.ToString().find(c.name), std::string::npos)
        << status.ToString();
  }
}

}  // namespace
}  // namespace viewjoin
