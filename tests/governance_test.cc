// Query-lifecycle governance tests: deadlines, cooperative cancellation,
// memory/disk budgets, batch admission control, the watchdog, and the
// bounded retry ladder. An aborted query must stop promptly, leak no buffer
// pins, and leave no spill files behind; a degraded (budget-downgraded)
// query must still produce the exact clean answer.
//
// This binary simulates a slow disk: main() arms per-page read latency
// (VIEWJOIN_PAGE_READ_MICROS, sleep mode) before the pager caches the
// setting, so a full scan over the large fixture takes long enough that a
// 50 ms deadline meaningfully truncates it.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "algo/query_context.h"
#include "core/engine.h"
#include "storage/buffer_pool.h"
#include "storage/materialized_view.h"
#include "tests/test_util.h"
#include "tpq/evaluator.h"
#include "util/fault_injection.h"
#include "util/rng.h"

namespace viewjoin {
namespace {

using core::Algorithm;
using core::BatchAdmission;
using core::BatchOptions;
using core::BatchQuery;
using core::Engine;
using core::RunOptions;
using core::RunResult;
using storage::MaterializedView;
using storage::Scheme;
using testing::MustParse;
using tpq::TreePattern;

std::string TempPath(const std::string& name) {
  return std::string(::testing::TempDir()) + name;
}

bool Exists(const std::string& path) {
  return std::filesystem::exists(path);
}

/// `groups` independent a(b(c)) subtrees: //a//b//c yields exactly `groups`
/// matches, and the three stored lists scan linearly with no skipping, so
/// evaluation time is proportional to pages read.
xml::Document GroupDoc(int groups) {
  xml::Document doc;
  doc.StartElement("r");
  for (int i = 0; i < groups; ++i) {
    doc.StartElement("a");
    doc.StartElement("b");
    doc.StartElement("c");
    doc.EndElement();
    doc.EndElement();
    doc.EndElement();
  }
  doc.EndElement();
  return doc;
}

std::vector<const MaterializedView*> AddGroupViews(Engine* engine) {
  return {engine->AddView("//a//b", Scheme::kLinkedElement),
          engine->AddView("//c", Scheme::kLinkedElement)};
}

// ---- Slow-workload fixture -------------------------------------------------
//
// One large shared document (built once) whose clean //a//b//c evaluation
// reads several hundred pages; with the simulated 2 ms page reads that is a
// multi-hundred-millisecond workload, long enough that deadline and
// cancellation verdicts are clearly distinguishable from a full run.

class SlowGovernanceTest : public ::testing::Test {
 protected:
  static constexpr int kGroups = 60000;

  static void SetUpTestSuite() {
    doc_ = new xml::Document(GroupDoc(kGroups));
    query_ = new TreePattern(MustParse("//a//b//c"));
    Engine engine(doc_, TempPath("gov_clean.db"));
    RunResult r = engine.Execute(*query_, AddGroupViews(&engine));
    ASSERT_TRUE(r.ok) << r.error;
    ASSERT_EQ(r.match_count, static_cast<uint64_t>(kGroups));
    clean_ = new RunResult(r);
    // The latency arming worked: this workload is slow enough that a 50 ms
    // deadline cuts deep into it.
    ASSERT_GT(clean_->total_ms, 400.0);
  }

  static void TearDownTestSuite() {
    delete clean_;
    delete query_;
    delete doc_;
    clean_ = nullptr;
    query_ = nullptr;
    doc_ = nullptr;
  }

  static xml::Document* doc_;
  static TreePattern* query_;
  static RunResult* clean_;
};

xml::Document* SlowGovernanceTest::doc_ = nullptr;
TreePattern* SlowGovernanceTest::query_ = nullptr;
RunResult* SlowGovernanceTest::clean_ = nullptr;

TEST_F(SlowGovernanceTest, DeadlineTimesOutPromptlyWithoutLeaks) {
  std::string path = TempPath("gov_deadline.db");
  {
    Engine engine(doc_, path);
    std::vector<const MaterializedView*> views = AddGroupViews(&engine);
    RunOptions run;
    run.deadline_ms = 50;
    RunResult r = engine.Execute(*query_, views, run);
    EXPECT_FALSE(r.ok);
    EXPECT_TRUE(r.timed_out) << r.error;
    EXPECT_FALSE(r.cancelled);
    EXPECT_EQ(r.error, "deadline exceeded");
    // Stops within one checkpoint interval of the deadline — far below the
    // clean runtime (the bound is generous for loaded CI hosts).
    EXPECT_LT(r.total_ms, clean_->total_ms / 2);
    EXPECT_LT(r.total_ms, 400.0);
    EXPECT_GT(r.checkpoints, 0u);
    // An aborted query must unwind cleanly: no pinned frames survive it.
    EXPECT_EQ(engine.catalog()->pool()->pinned_frames(), 0u);
  }
  // kTruncate spill spools vanish with the engine: nothing left on disk.
  EXPECT_FALSE(Exists(path + ".spill"));
}

TEST_F(SlowGovernanceTest, PreCancelledQueryStopsAtFirstSlowCheckpoint) {
  Engine engine(doc_, TempPath("gov_precancel.db"));
  std::vector<const MaterializedView*> views = AddGroupViews(&engine);
  std::atomic<bool> cancel{true};
  RunOptions run;
  run.cancel = &cancel;
  RunResult r = engine.Execute(*query_, views, run);
  EXPECT_FALSE(r.ok);
  EXPECT_TRUE(r.cancelled) << r.error;
  EXPECT_FALSE(r.timed_out);
  EXPECT_LT(r.total_ms, clean_->total_ms / 3);
  EXPECT_EQ(engine.catalog()->pool()->pinned_frames(), 0u);
}

TEST_F(SlowGovernanceTest, MidRunCancellationInterruptsTheScan) {
  Engine engine(doc_, TempPath("gov_midcancel.db"));
  std::vector<const MaterializedView*> views = AddGroupViews(&engine);
  std::atomic<bool> cancel{false};
  std::thread canceller([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    cancel.store(true);
  });
  RunOptions run;
  run.cancel = &cancel;
  RunResult r = engine.Execute(*query_, views, run);
  canceller.join();
  EXPECT_FALSE(r.ok);
  EXPECT_TRUE(r.cancelled) << r.error;
  EXPECT_LT(r.total_ms, clean_->total_ms / 2);
  EXPECT_EQ(engine.catalog()->pool()->pinned_frames(), 0u);
}

// A FindFirstStart gallop must observe cancellation at a slow checkpoint
// *inside* the search — a skip that only polls governance between whole
// seeks would overshoot its cancellation by an unbounded amount on a long
// gallop — and the position reported by the cut-short search must still be
// sound (no live entry skipped).
TEST(CancelMidGallopTest, GallopObservesCancellationBetweenProbes) {
  util::Rng rng(97);
  xml::Document doc = testing::RandomDoc(&rng, 20000, {"a", "b"});
  storage::ViewCatalog catalog(TempPath("gallop_cancel.db"), 128);
  const MaterializedView* view =
      catalog.Materialize(doc, MustParse("//a//b"), Scheme::kLinkedElement);
  const storage::StoredList* list = &view->list(1);
  ASSERT_GT(list->count, 1000u);

  storage::ListCursor reader(list, catalog.pool());
  std::vector<uint32_t> starts(list->count);
  for (uint32_t i = 0; i < list->count; ++i, reader.Next()) {
    starts[i] = reader.LabelAt().start;
  }
  uint32_t bound = starts[list->count - 2];

  std::atomic<bool> cancel{true};
  algo::QueryContext ctx;
  ctx.set_cancel_token(&cancel);
  // Drain the checkpoint interval down to 2 remaining charges: the gallop's
  // first probe passes, its second reaches the slow checkpoint, which sees
  // the flipped token — the abort lands between probes, mid-search.
  ASSERT_FALSE(ctx.CheckpointN(algo::QueryContext::kCheckInterval - 2));

  storage::ListCursor cursor(list, catalog.pool());
  uint64_t probes = 0;
  storage::SeekOutcome out =
      cursor.FindFirstStart(bound, /*strict=*/false, &probes,
                            [&](uint32_t n) { return ctx.CheckpointN(n); });
  EXPECT_TRUE(out.aborted);
  EXPECT_TRUE(ctx.aborted());
  EXPECT_EQ(ctx.reason(), algo::AbortReason::kCancelled);
  EXPECT_EQ(probes, 2u);
  for (uint32_t i = 0; i < out.pos; ++i) {
    ASSERT_LT(starts[i], bound) << "aborted seek skipped a live entry";
  }
}

TEST_F(SlowGovernanceTest, BatchWatchdogFiresPerQueryDeadlines) {
  std::string path = TempPath("gov_watchdog.db");
  Engine engine(doc_, path);
  std::vector<const MaterializedView*> views = AddGroupViews(&engine);
  BatchQuery governed{query_, views};
  governed.deadline_ms = 40;  // per-query override; sibling inherits "none"
  BatchQuery free_running{query_, views};
  BatchOptions options;
  options.threads = 2;
  std::vector<RunResult> results =
      engine.ExecuteBatch({governed, free_running}, options);
  ASSERT_EQ(results.size(), 2u);
  EXPECT_FALSE(results[0].ok);
  EXPECT_TRUE(results[0].timed_out) << results[0].error;
  EXPECT_LT(results[0].total_ms, clean_->total_ms / 2);
  // The sibling without a deadline is untouched by the watchdog.
  ASSERT_TRUE(results[1].ok) << results[1].error;
  EXPECT_EQ(results[1].match_count, static_cast<uint64_t>(kGroups));
  EXPECT_EQ(results[1].result_hash, clean_->result_hash);
  EXPECT_EQ(engine.catalog()->pool()->pinned_frames(), 0u);
  // Worker spill spools are per-call scratch: gone as soon as the batch
  // returns, even though query 0 was killed mid-flight.
  EXPECT_FALSE(Exists(path + ".spill.0"));
  EXPECT_FALSE(Exists(path + ".spill.1"));
}

// ---- Budgets ---------------------------------------------------------------

TEST(BudgetTest, MemoryOverrunDegradesToDiskSpillingWithExactAnswer) {
  xml::Document doc = GroupDoc(5000);
  TreePattern query = MustParse("//a//b//c");
  Engine engine(&doc, TempPath("gov_membudget.db"));
  std::vector<const MaterializedView*> views = AddGroupViews(&engine);
  RunResult clean = engine.Execute(query, views);
  ASSERT_TRUE(clean.ok) << clean.error;
  ASSERT_EQ(clean.match_count, 5000u);
  EXPECT_GT(clean.peak_memory_bytes, 0u);

  RunOptions run;
  run.memory_budget_bytes = 16 * 1024;  // far below the ~240 KiB buffered
  RunResult r = engine.Execute(query, views, run);
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_TRUE(r.degraded);  // rung 1: reran with disk-mode spilling
  EXPECT_GT(r.stats.spill_pages_written, 0u);
  EXPECT_EQ(r.match_count, clean.match_count);
  EXPECT_EQ(r.result_hash, clean.result_hash);
  EXPECT_FALSE(r.timed_out);
  EXPECT_FALSE(r.cancelled);
  EXPECT_EQ(engine.catalog()->pool()->pinned_frames(), 0u);
}

TEST(BudgetTest, ExhaustedDiskBudgetIsTerminal) {
  xml::Document doc = GroupDoc(5000);
  TreePattern query = MustParse("//a//b//c");
  std::string path = TempPath("gov_diskbudget.db");
  {
    Engine engine(&doc, path);
    std::vector<const MaterializedView*> views = AddGroupViews(&engine);
    RunOptions run;
    run.memory_budget_bytes = 16 * 1024;
    run.disk_budget_bytes = 4 * 1024;  // one spill page, then the ladder ends
    RunResult r = engine.Execute(query, views, run);
    EXPECT_FALSE(r.ok);
    EXPECT_NE(r.error.find("RESOURCE_EXHAUSTED"), std::string::npos)
        << r.error;
    EXPECT_FALSE(r.timed_out);
    EXPECT_FALSE(r.cancelled);
    EXPECT_EQ(engine.catalog()->pool()->pinned_frames(), 0u);
  }
  EXPECT_FALSE(Exists(path + ".spill"));
}

TEST(BudgetTest, UnlimitedBudgetsReportPeakWithoutAborting) {
  xml::Document doc = GroupDoc(2000);
  TreePattern query = MustParse("//a//b//c");
  Engine engine(&doc, TempPath("gov_peak.db"));
  RunResult r = engine.Execute(query, AddGroupViews(&engine));
  ASSERT_TRUE(r.ok) << r.error;
  // The accounting runs even when nothing is budgeted, so the observability
  // fields are populated on every governed run.
  EXPECT_GT(r.peak_memory_bytes, 0u);
  EXPECT_GT(r.checkpoints, 0u);
}

// ---- Admission control -----------------------------------------------------

TEST(AdmissionTest, OverflowIsRejectedWithoutPerturbingAdmittedQueries) {
  xml::Document doc = GroupDoc(500);
  TreePattern query = MustParse("//a//b//c");
  Engine engine(&doc, TempPath("gov_admission.db"));
  std::vector<const MaterializedView*> views = AddGroupViews(&engine);
  RunResult clean = engine.Execute(query, views);
  ASSERT_TRUE(clean.ok) << clean.error;

  std::vector<BatchQuery> batch(8, BatchQuery{&query, views});
  BatchOptions options;
  options.threads = 2;
  options.max_queued = 2;  // admit 2 (workers) + 2 (queue) = 4 of 8
  std::vector<RunResult> results = engine.ExecuteBatch(batch, options);
  ASSERT_EQ(results.size(), 8u);
  for (size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(results[i].admission, BatchAdmission::kAdmitted) << i;
    ASSERT_TRUE(results[i].ok) << i << ": " << results[i].error;
    EXPECT_EQ(results[i].match_count, clean.match_count) << i;
    EXPECT_EQ(results[i].result_hash, clean.result_hash) << i;
  }
  for (size_t i = 4; i < 8; ++i) {
    EXPECT_EQ(results[i].admission, BatchAdmission::kRejected) << i;
    EXPECT_FALSE(results[i].ok) << i;
    EXPECT_NE(results[i].error.find("admission"), std::string::npos) << i;
    EXPECT_EQ(results[i].match_count, 0u) << i;
  }
}

TEST(AdmissionTest, DefaultOptionsAdmitEverything) {
  xml::Document doc = GroupDoc(200);
  TreePattern query = MustParse("//a//b//c");
  Engine engine(&doc, TempPath("gov_admit_all.db"));
  std::vector<const MaterializedView*> views = AddGroupViews(&engine);
  std::vector<BatchQuery> batch(6, BatchQuery{&query, views});
  std::vector<RunResult> results = engine.ExecuteBatch(batch, {});
  for (size_t i = 0; i < results.size(); ++i) {
    EXPECT_EQ(results[i].admission, BatchAdmission::kAdmitted) << i;
    EXPECT_TRUE(results[i].ok) << i << ": " << results[i].error;
  }
}

// ---- Bounded retry ---------------------------------------------------------

TEST(BatchRetryTest, TransientStorageFaultIsRetriedWithBackoff) {
  util::Rng rng(31);
  xml::Document doc = testing::RandomDoc(&rng, 600, {"a", "b", "c"});
  TreePattern query = MustParse("//a//b//c");
  uint64_t clean_hash;
  {
    util::ScopedFaultInjection off;
    Engine engine(&doc, TempPath("gov_retry_clean.db"));
    RunResult r = engine.Execute(query, AddGroupViews(&engine));
    ASSERT_TRUE(r.ok) << r.error;
    clean_hash = r.result_hash;
  }

  util::ScopedFaultInjection fi;
  // Calibration pass: under a permanently dead disk with the base-document
  // fallback disabled, one service attempt fails with a *retryable* error
  // after consuming a deterministic number of injected read faults.
  uint64_t consumed;
  {
    Engine engine(&doc, TempPath("gov_retry_cal.db"));
    std::vector<const MaterializedView*> views = AddGroupViews(&engine);
    fi->ArmReadFault(/*nth=*/1, /*count=*/-1);
    BatchOptions options;
    options.threads = 1;
    options.max_retries = 0;
    options.run.allow_base_fallback = false;
    std::vector<RunResult> results =
        engine.ExecuteBatch({BatchQuery{&query, views}}, options);
    ASSERT_FALSE(results[0].ok);
    EXPECT_TRUE(results[0].retryable) << results[0].error;
    EXPECT_EQ(results[0].attempts, 1);
    consumed = fi->injected_read_faults();
    ASSERT_GT(consumed, 0u);
  }
  fi->Reset();

  // Real pass: the identical fault burst is now *transient* — it covers
  // exactly the first service attempt, so the retry ladder's second attempt
  // runs clean and must reproduce the exact answer.
  {
    Engine engine(&doc, TempPath("gov_retry_real.db"));
    std::vector<const MaterializedView*> views = AddGroupViews(&engine);
    fi->ArmReadFault(/*nth=*/1, /*count=*/static_cast<int>(consumed));
    BatchOptions options;
    options.threads = 1;
    options.max_retries = 5;
    options.retry_backoff_ms = 0.1;
    options.run.allow_base_fallback = false;
    std::vector<RunResult> results =
        engine.ExecuteBatch({BatchQuery{&query, views}}, options);
    ASSERT_TRUE(results[0].ok) << results[0].error;
    EXPECT_GE(results[0].attempts, 2);
    EXPECT_EQ(results[0].result_hash, clean_hash);
    EXPECT_EQ(engine.catalog()->pool()->pinned_frames(), 0u);
  }
}

TEST(BatchRetryTest, DeterministicFailuresAreNeverRetried) {
  xml::Document doc = GroupDoc(100);
  TreePattern query = MustParse("//a//b//c");
  Engine engine(&doc, TempPath("gov_noretry.db"));
  // Views that do not cover the query: a bind error, not a storage fault.
  std::vector<const MaterializedView*> bad = {
      engine.AddView("//a//b", Scheme::kLinkedElement)};
  BatchOptions options;
  options.threads = 1;
  options.max_retries = 5;
  std::vector<RunResult> results =
      engine.ExecuteBatch({BatchQuery{&query, bad}}, options);
  ASSERT_FALSE(results[0].ok);
  EXPECT_FALSE(results[0].retryable);
  EXPECT_EQ(results[0].attempts, 1);  // the ladder never spun
}

TEST(BatchRetryTest, RetryBackoffIsJitteredNotADeterministicLadder) {
  // A deterministic base, 2*base, 4*base... schedule re-synchronizes every
  // retrier that tripped on the same fault (a thundering herd). The ladder
  // now draws each delay from [base, min(cap, 3 x previous)], seeded per
  // worker — so the recorded sleeps must spread across that interval, not
  // collapse onto one schedule.
  xml::Document doc = GroupDoc(200);
  TreePattern query = MustParse("//a//b//c");
  util::ScopedFaultInjection fi;
  Engine engine(&doc, TempPath("gov_jitter.db"));
  std::vector<const MaterializedView*> views = AddGroupViews(&engine);

  std::mutex mu;
  std::vector<double> delays;
  Engine::SetRetrySleepHookForTest([&](double ms) {
    std::lock_guard<std::mutex> lock(mu);
    delays.push_back(ms);
  });
  fi->ArmReadFault(/*nth=*/1, /*count=*/-1);  // permanently dead disk
  BatchOptions options;
  options.threads = 2;
  options.max_retries = 4;
  options.retry_backoff_ms = 1.0;
  options.retry_backoff_cap_ms = 8.0;
  options.run.allow_base_fallback = false;
  std::vector<BatchQuery> batch(4, BatchQuery{&query, views});
  std::vector<RunResult> results = engine.ExecuteBatch(batch, options);
  Engine::SetRetrySleepHookForTest(nullptr);
  fi->Reset();

  for (const RunResult& r : results) EXPECT_FALSE(r.ok);
  // 4 queries x up to 4 retries each; every sleep inside [base, cap].
  ASSERT_GE(delays.size(), 8u);
  for (double ms : delays) {
    EXPECT_GE(ms, 1.0 - 1e-9);
    EXPECT_LE(ms, 8.0 + 1e-9);
  }
  // The spread assertion: jittered delays are (nearly) all distinct, where
  // the old deterministic ladder produced exactly {1, 2, 4, 8} repeated.
  std::vector<double> uniq = delays;
  std::sort(uniq.begin(), uniq.end());
  uniq.erase(std::unique(uniq.begin(), uniq.end()), uniq.end());
  EXPECT_GE(uniq.size(), delays.size() / 2);
  EXPECT_GT(uniq.size(), 4u);  // more values than the ladder's 4 rungs
}

}  // namespace
}  // namespace viewjoin

// The pager samples its simulated-latency environment variables once, at the
// first page read, so they must be armed before any test runs. Sleep mode
// lets concurrent workers overlap their simulated I/O (and the OS reclaim
// the CPU) exactly as bench_concurrency configures it.
int main(int argc, char** argv) {
  setenv("VIEWJOIN_PAGE_READ_MICROS", "2000", /*overwrite=*/1);
  setenv("VIEWJOIN_PAGE_READ_SLEEP", "1", /*overwrite=*/1);
  ::testing::InitGoogleTest(&argc, argv);
  return RUN_ALL_TESTS();
}
