#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <string>

#include "tests/test_util.h"
#include "view/cost_model.h"
#include "view/selection.h"

namespace viewjoin {
namespace {

using testing::MakeDoc;
using testing::MustParse;
using tpq::TreePattern;
using view::MissingEdgeCounts;
using view::SelectionHeuristic;
using view::SelectionOptions;
using view::SelectionResult;
using view::SelectViews;
using view::ViewCost;
using view::ViewListLengths;

TEST(CostModelTest, MissingEdgeCounts) {
  TreePattern q = MustParse("//a//b//c");
  // View //a//b: a has 1 edge in Q (to b), present; b has edges to a
  // (present) and to c (missing) → e = {0, 1}.
  EXPECT_EQ(MissingEdgeCounts(q, MustParse("//a//b")), (std::vector<int>{0, 1}));
  // Single-node //b: both incident edges missing.
  EXPECT_EQ(MissingEdgeCounts(q, MustParse("//b")), (std::vector<int>{2}));
  // Interleaved //a//c: the a-c view edge is not a Q edge, so every Q edge
  // incident to a or c is missing: a has (a,b) → 1; c has (b,c) → 1.
  EXPECT_EQ(MissingEdgeCounts(q, MustParse("//a//c")), (std::vector<int>{1, 1}));
  // Full view: nothing missing.
  EXPECT_EQ(MissingEdgeCounts(q, MustParse("//a//b//c")),
            (std::vector<int>{0, 0, 0}));
}

TEST(CostModelTest, LambdaBlendsIoAndJoinCosts) {
  xml::Document doc = MakeDoc("r(a(b(c)) a(b(c)) b)");
  TreePattern q = MustParse("//a//b//c");
  TreePattern v = MustParse("//a//b");
  std::vector<uint32_t> lengths = ViewListLengths(doc, v);
  ASSERT_EQ(lengths.size(), 2u);
  double io_only = ViewCost(q, v, lengths, 0.0);
  double join_only = ViewCost(q, v, lengths, 1.0);
  EXPECT_DOUBLE_EQ(io_only, lengths[0] + lengths[1]);
  EXPECT_DOUBLE_EQ(join_only, static_cast<double>(lengths[1]));  // e_b = 1
  EXPECT_DOUBLE_EQ(ViewCost(q, v, lengths, 0.5),
                   0.5 * io_only + 0.5 * join_only);
}

TEST(CostModelTest, ListLengthsAreSolutionCounts) {
  xml::Document doc = MakeDoc("r(a(b) a b)");
  std::vector<uint32_t> lengths = ViewListLengths(doc, MustParse("//a//b"));
  EXPECT_EQ(lengths, (std::vector<uint32_t>{1, 1}));
}

TEST(SelectionTest, PrefersPrecomputedJoinsUnderCostModel) {
  // Mirrors Example 5.1's structure: a long chain query; candidates include
  // a fully-precomputed suffix view (cheap under λ=1 because its edges are
  // in the view) vs. fragmented small views.
  xml::Document doc = MakeDoc(
      "r(a(b(c(d)) b(c(d) c(d))) a(b(c(d))) a(b) c(d))");
  TreePattern q = MustParse("//a//b//c//d");
  std::vector<TreePattern> candidates = {
      MustParse("//a"),        // 0
      MustParse("//b//c//d"),  // 1: precomputed suffix — no missing edges
                               // except b's edge to a
      MustParse("//b"),        // 2
      MustParse("//c//d"),     // 3
      MustParse("//c"),        // 4
      MustParse("//d"),        // 5
  };
  SelectionOptions cost_based;
  SelectionResult result = SelectViews(doc, q, candidates, cost_based);
  ASSERT_TRUE(result.covers);
  // Must include the big suffix view (its join cost beats the fragments).
  bool has_suffix = false;
  for (size_t i : result.selected) has_suffix |= (i == 1);
  EXPECT_TRUE(has_suffix);
  EXPECT_EQ(result.selected.size(), 2u);  // {//a, //b//c//d}
}

TEST(SelectionTest, SizeOnlyHeuristicCanPickFragments) {
  xml::Document doc = MakeDoc(
      "r(a(b(c(d)) b(c(d) c(d))) a(b(c(d))) a(b) c(d))");
  TreePattern q = MustParse("//a//b//c//d");
  std::vector<TreePattern> candidates = {
      MustParse("//a"), MustParse("//b//c//d"), MustParse("//b"),
      MustParse("//c//d"), MustParse("//c"), MustParse("//d")};
  SelectionOptions size_only;
  size_only.heuristic = SelectionHeuristic::kSizeOnly;
  SelectionResult result = SelectViews(doc, q, candidates, size_only);
  ASSERT_TRUE(result.covers);
  // Both heuristics report per-candidate costs and sizes for Table II.
  EXPECT_FALSE(std::isnan(result.costs[1]));
  EXPECT_GT(result.sizes[1], 0u);
}

TEST(SelectionTest, SkipsNonSubpatterns) {
  xml::Document doc = MakeDoc("r(a(b))");
  TreePattern q = MustParse("//a//b");
  std::vector<TreePattern> candidates = {MustParse("//b//a"),  // wrong direction
                                         MustParse("//a"), MustParse("//b")};
  SelectionResult result = SelectViews(doc, q, candidates);
  ASSERT_TRUE(result.covers);
  EXPECT_EQ(result.selected.size(), 2u);
  EXPECT_TRUE(std::isnan(result.costs[0]));
  for (size_t i : result.selected) EXPECT_NE(i, 0u);
}

TEST(SelectionTest, ReportsFailureWhenUncoverable) {
  xml::Document doc = MakeDoc("r(a(b))");
  TreePattern q = MustParse("//a//b//c");
  std::vector<TreePattern> candidates = {MustParse("//a"), MustParse("//b")};
  SelectionResult result = SelectViews(doc, q, candidates);
  EXPECT_FALSE(result.covers);
}

TEST(SelectionTest, DisjointnessIsRespected) {
  xml::Document doc = MakeDoc("r(a(b(c)))");
  TreePattern q = MustParse("//a//b//c");
  std::vector<TreePattern> candidates = {
      MustParse("//a//b"), MustParse("//b//c"),  // overlap on b
      MustParse("//c"), MustParse("//a")};
  SelectionResult result = SelectViews(doc, q, candidates);
  ASSERT_TRUE(result.covers);
  // Whatever got picked, the selected views share no element types.
  std::set<std::string> seen;
  for (size_t i : result.selected) {
    for (size_t n = 0; n < candidates[i].size(); ++n) {
      EXPECT_TRUE(seen.insert(candidates[i].node(static_cast<int>(n)).tag)
                      .second);
    }
  }
}

}  // namespace
}  // namespace viewjoin
