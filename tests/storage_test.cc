#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <set>
#include <thread>

#include "storage/buffer_pool.h"
#include "storage/materialized_view.h"
#include "storage/pager.h"
#include "storage/stored_list.h"
#include "tests/test_util.h"
#include "tpq/evaluator.h"

namespace viewjoin {
namespace {

using storage::BufferPool;
using storage::EntryIndex;
using storage::kNullEntry;
using storage::ListCursor;
using storage::MaterializedView;
using storage::Pager;
using storage::Scheme;
using storage::StoredList;
using storage::ViewCatalog;
using testing::MakeDoc;
using testing::MustParse;
using xml::Label;
using xml::NodeId;

std::string TempPath(const char* name) {
  return std::string(::testing::TempDir()) + name;
}

TEST(PagerTest, WriteReadRoundTrip) {
  Pager pager(TempPath("pager_rt.db"));
  std::vector<uint8_t> page(Pager::kPageSize);
  storage::PageId a = *pager.AllocatePage();
  storage::PageId b = *pager.AllocatePage();
  EXPECT_EQ(a, 0u);
  EXPECT_EQ(b, 1u);
  for (size_t i = 0; i < page.size(); ++i) page[i] = static_cast<uint8_t>(i);
  pager.WritePage(b, page.data());
  std::fill(page.begin(), page.end(), 0);
  pager.WritePage(a, page.data());
  std::vector<uint8_t> out(Pager::kPageSize);
  pager.ReadPage(b, out.data());
  EXPECT_EQ(out[7], 7);
  EXPECT_EQ(pager.stats().pages_read, 1u);
  EXPECT_EQ(pager.stats().pages_written, 2u);
}

/// Writes `pages` pages whose first byte is the page id (mod 256).
void FillPages(Pager* pager, int pages) {
  std::vector<uint8_t> page(Pager::kPageSize, 0);
  for (int i = 0; i < pages; ++i) {
    storage::PageId id = *pager->AllocatePage();
    page[0] = static_cast<uint8_t>(i);
    pager->WritePage(id, page.data());
  }
}

TEST(BufferPoolTest, CachesAndEvictsLru) {
  Pager pager(TempPath("pool_lru.db"));
  FillPages(&pager, 4);
  // One shard so the pool behaves as one exact global LRU.
  BufferPool pool(&pager, 2, /*shards=*/1);
  ASSERT_EQ(pool.shard_count(), 1u);
  EXPECT_EQ(pool.GetPage(0).data()[0], 0);
  EXPECT_EQ(pool.GetPage(1).data()[0], 1);
  EXPECT_EQ(pool.GetPage(0).data()[0], 0);  // hit
  EXPECT_EQ(pool.hits(), 1u);
  EXPECT_EQ(pool.misses(), 2u);
  pool.GetPage(2);  // evicts page 1 (LRU)
  uint64_t version = pool.eviction_version();
  EXPECT_GT(version, 0u);
  pool.GetPage(0);  // still cached
  EXPECT_EQ(pool.hits(), 2u);
  pool.GetPage(1);  // miss again
  EXPECT_EQ(pool.misses(), 4u);
}

TEST(BufferPoolTest, ShardCountRoundsToPowerOfTwoWithinCapacity) {
  Pager pager(TempPath("pool_shards.db"));
  FillPages(&pager, 1);
  BufferPool six(&pager, 64, /*shards=*/6);
  EXPECT_EQ(six.shard_count(), 4u);  // floor to a power of two
  BufferPool tiny(&pager, 3);        // default 8 shards, capped by capacity
  EXPECT_EQ(tiny.shard_count(), 2u);
  BufferPool one(&pager, 1);
  EXPECT_EQ(one.shard_count(), 1u);
}

TEST(BufferPoolTest, CapacityZeroIsRejected) {
  Pager pager(TempPath("pool_zero.db"));
  FillPages(&pager, 1);
  BufferPool pool(&pager, 0);
  BufferPool::PinnedPage pin;
  util::Status status = pool.Fetch(0, &pin);
  EXPECT_EQ(status.code(), util::StatusCode::kInvalidArgument);
  EXPECT_FALSE(pin.valid());
  // The infallible spelling latches the error and hands back poison.
  BufferPool::PinnedPage poison = pool.GetPage(0);
  ASSERT_TRUE(poison.valid());
  EXPECT_EQ(poison.data()[0], 0xFF);
  EXPECT_EQ(pool.error().code(), util::StatusCode::kInvalidArgument);
}

TEST(BufferPoolTest, PinHeldPageSurvivesEvictionPressure) {
  Pager pager(TempPath("pool_pin.db"));
  FillPages(&pager, 16);
  BufferPool pool(&pager, 2, /*shards=*/1);
  BufferPool::PinnedPage held = pool.GetPage(3);
  ASSERT_TRUE(held.valid());
  const uint8_t* data = held.data();
  // Thrash far past capacity; the pinned frame must neither move nor vanish.
  for (int round = 0; round < 3; ++round) {
    for (storage::PageId p = 0; p < 16; ++p) {
      if (p != 3) EXPECT_EQ(pool.GetPage(p).data()[0], p);
    }
  }
  EXPECT_GT(pool.eviction_version(), 0u);
  EXPECT_EQ(held.data(), data);
  EXPECT_EQ(held.data()[0], 3);
  // Copying re-pins: the copy keeps the frame alive after the original dies.
  BufferPool::PinnedPage copy = held;
  held.Release();
  for (storage::PageId p = 0; p < 16; ++p) pool.GetPage(p);
  EXPECT_EQ(copy.data()[0], 3);
}

TEST(BufferPoolTest, ConcurrentOverlappingFetches) {
  Pager pager(TempPath("pool_conc.db"));
  constexpr int kPages = 32;
  FillPages(&pager, kPages);
  // Tiny per-shard capacity so threads race on eviction constantly.
  BufferPool pool(&pager, 4, /*shards=*/4);
  constexpr int kThreads = 8;
  constexpr int kIters = 4000;
  std::atomic<int> mismatches{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kIters; ++i) {
        storage::PageId page =
            static_cast<storage::PageId>((i * 7 + t * 13) % kPages);
        BufferPool::PinnedPage pin = pool.GetPage(page);
        if (!pin.valid() || pin.data()[0] != static_cast<uint8_t>(page)) {
          mismatches.fetch_add(1);
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(mismatches.load(), 0);
  EXPECT_TRUE(pool.error().ok());
  EXPECT_EQ(pool.hits() + pool.misses(),
            static_cast<uint64_t>(kThreads) * kIters);
}

TEST(BufferPoolTest, ErrorScopeIsolatesLatchesPerThread) {
  Pager pager(TempPath("pool_scope.db"));
  FillPages(&pager, 4);
  BufferPool pool(&pager, 4);
  constexpr storage::PageId kBadPage = 999;  // beyond the file
  std::atomic<bool> faulting_saw_error{false};
  std::atomic<bool> clean_saw_error{false};
  std::thread faulting([&] {
    BufferPool::ErrorScope scope(&pool);
    for (int i = 0; i < 100; ++i) pool.GetPage(i % 4);
    pool.GetPage(kBadPage);
    faulting_saw_error =
        !scope.error().ok() && scope.error_page() == kBadPage;
  });
  std::thread clean([&] {
    BufferPool::ErrorScope scope(&pool);
    for (int i = 0; i < 100; ++i) pool.GetPage(i % 4);
    clean_saw_error = !scope.error().ok();
  });
  faulting.join();
  clean.join();
  EXPECT_TRUE(faulting_saw_error.load());
  EXPECT_FALSE(clean_saw_error.load());
  // Scoped faults never leak into the pool-global latch.
  EXPECT_TRUE(pool.error().ok());
  // Without a scope the same fault latches globally; Clear() resets it.
  pool.GetPage(kBadPage);
  EXPECT_FALSE(pool.error().ok());
  EXPECT_EQ(pool.error_page(), kBadPage);
  pool.Clear();
  EXPECT_TRUE(pool.error().ok());
  EXPECT_EQ(pool.error_page(), storage::kInvalidPage);
}

TEST(StoredListTest, PageOffsetArithmetic) {
  StoredList list;
  list.first_page = 3;
  list.count = 1000;
  list.layout.label_count = 1;
  ASSERT_EQ(list.layout.RecordSize(), 12u);
  EXPECT_EQ(list.RecordsPerPage(), 341u);
  EXPECT_EQ(list.PageOf(0), 3u);
  EXPECT_EQ(list.PageOf(340), 3u);
  EXPECT_EQ(list.PageOf(341), 4u);
  EXPECT_EQ(list.OffsetOf(341), 0u);
  EXPECT_EQ(list.OffsetOf(342), 12u);
  EXPECT_EQ(list.PageSpan(), 3u);
}

class MaterializeTest : public ::testing::Test {
 protected:
  // Document with recursive 'a' nesting and multi-match nodes.
  MaterializeTest()
      : doc_(MakeDoc("r(a(b(c) a(b(c c)) b) a(x(b(c))) b(c))")),
        catalog_(TempPath("mat.db"), 64) {}

  xml::Document doc_;
  ViewCatalog catalog_;
};

TEST_F(MaterializeTest, ElementSchemeListsAreSolutionNodes) {
  tpq::TreePattern v = MustParse("//a//b//c");
  const MaterializedView* view = catalog_.Materialize(doc_, v, Scheme::kElement);
  tpq::NaiveEvaluator eval(doc_, v);
  std::vector<std::vector<NodeId>> expected = eval.SolutionNodes();
  for (size_t q = 0; q < v.size(); ++q) {
    ListCursor cursor(&view->list(static_cast<int>(q)), catalog_.pool());
    ASSERT_EQ(cursor.size(), expected[q].size());
    for (size_t i = 0; !cursor.AtEnd(); cursor.Next(), ++i) {
      EXPECT_EQ(cursor.LabelAt(), doc_.NodeLabel(expected[q][i]));
    }
    EXPECT_EQ(view->ListLength(static_cast<int>(q)), expected[q].size());
  }
  EXPECT_EQ(view->PointerCount(), 0u);
  EXPECT_EQ(view->SizeBytes(), 12u * (view->ListLength(0) +
                                      view->ListLength(1) +
                                      view->ListLength(2)));
}

TEST_F(MaterializeTest, TupleSchemeMatchesSortedMatches) {
  tpq::TreePattern v = MustParse("//a//b");
  const MaterializedView* view = catalog_.Materialize(doc_, v, Scheme::kTuple);
  std::vector<tpq::Match> matches = tpq::NaiveEvaluator(doc_, v).Collect();
  tpq::SortMatches(&matches);
  ASSERT_EQ(view->MatchCount(), matches.size());
  ListCursor cursor(&view->tuple_list(), catalog_.pool());
  uint32_t prev_start = 0;
  for (size_t t = 0; !cursor.AtEnd(); cursor.Next(), ++t) {
    EXPECT_EQ(cursor.LabelAt(0), doc_.NodeLabel(matches[t][0]));
    EXPECT_EQ(cursor.LabelAt(1), doc_.NodeLabel(matches[t][1]));
    EXPECT_GE(cursor.LabelAt(0).start, prev_start);  // composite key order
    prev_start = cursor.LabelAt(0).start;
  }
}

TEST_F(MaterializeTest, TupleSchemeDuplicatesRecurringNodes) {
  // With recursive 'a's, one b can occur in several (a,b) tuples while the
  // element lists stay duplicate-free — the paper's core redundancy point.
  tpq::TreePattern v = MustParse("//a//b");
  const MaterializedView* tuple = catalog_.Materialize(doc_, v, Scheme::kTuple);
  const MaterializedView* element =
      catalog_.Materialize(doc_, v, Scheme::kElement);
  EXPECT_GT(tuple->MatchCount(),
            static_cast<uint64_t>(element->ListLength(1)));
}

TEST_F(MaterializeTest, LinkedElementPointersAreCorrect) {
  tpq::TreePattern v = MustParse("//a//b");
  const MaterializedView* view =
      catalog_.Materialize(doc_, v, Scheme::kLinkedElement);
  ListCursor a_cursor(&view->list(0), catalog_.pool());
  ListCursor b_cursor(&view->list(1), catalog_.pool());

  std::vector<Label> a_labels;
  for (a_cursor.Reset(); !a_cursor.AtEnd(); a_cursor.Next()) {
    a_labels.push_back(a_cursor.LabelAt());
  }
  std::vector<Label> b_labels;
  for (b_cursor.Reset(); !b_cursor.AtEnd(); b_cursor.Next()) {
    b_labels.push_back(b_cursor.LabelAt());
  }

  for (EntryIndex i = 0; i < a_labels.size(); ++i) {
    a_cursor.Seek(i);
    // Following: first entry starting after this one ends.
    EntryIndex follow = a_cursor.Following();
    EntryIndex expect_follow = kNullEntry;
    for (EntryIndex j = i + 1; j < a_labels.size(); ++j) {
      if (a_labels[j].start > a_labels[i].end) {
        expect_follow = j;
        break;
      }
    }
    EXPECT_EQ(follow, expect_follow) << "entry " << i;
    // Descendant: next entry iff nested.
    EntryIndex desc = a_cursor.Descendant();
    if (i + 1 < a_labels.size() && a_labels[i + 1].start < a_labels[i].end) {
      EXPECT_EQ(desc, i + 1);
    } else {
      EXPECT_EQ(desc, kNullEntry);
    }
    // Child pointer: first b entry inside this a.
    EntryIndex child = a_cursor.Child(0);
    ASSERT_NE(child, kNullEntry);
    EXPECT_GT(b_labels[child].start, a_labels[i].start);
    EXPECT_LT(b_labels[child].end, a_labels[i].end);
    for (EntryIndex j = 0; j < child; ++j) {
      EXPECT_FALSE(b_labels[j].start > a_labels[i].start &&
                   b_labels[j].end < a_labels[i].end)
          << "child pointer skipped an earlier descendant";
    }
  }
}

TEST_F(MaterializeTest, PcChildPointerRespectsLevels) {
  tpq::TreePattern v = MustParse("//b/c");
  const MaterializedView* view =
      catalog_.Materialize(doc_, v, Scheme::kLinkedElement);
  ListCursor b_cursor(&view->list(0), catalog_.pool());
  ListCursor c_cursor(&view->list(1), catalog_.pool());
  for (b_cursor.Reset(); !b_cursor.AtEnd(); b_cursor.Next()) {
    EntryIndex child = b_cursor.Child(0);
    ASSERT_NE(child, kNullEntry);
    c_cursor.Seek(child);
    EXPECT_EQ(c_cursor.LabelAt().level, b_cursor.LabelAt().level + 1);
  }
}

TEST_F(MaterializeTest, PartialSchemeDropsAdjacentPointers) {
  tpq::TreePattern v = MustParse("//a//b");
  const MaterializedView* full =
      catalog_.Materialize(doc_, v, Scheme::kLinkedElement);
  const MaterializedView* partial =
      catalog_.Materialize(doc_, v, Scheme::kLinkedElementPartial);
  EXPECT_LT(partial->PointerCount(), full->PointerCount());
  EXPECT_LT(partial->SizeBytes(), full->SizeBytes());
  // LE_p never materializes descendant pointers (always adjacent) and only
  // keeps following pointers that jump at least two entries.
  ListCursor cursor(&partial->list(0), catalog_.pool());
  for (cursor.Reset(); !cursor.AtEnd(); cursor.Next()) {
    EXPECT_EQ(cursor.Descendant(), kNullEntry);
    EntryIndex follow = cursor.Following();
    if (follow != kNullEntry) {
      EXPECT_GT(follow, cursor.index() + 1);
    }
    // Child pointers always survive.
    EXPECT_NE(cursor.Child(0), kNullEntry);
  }
}

TEST_F(MaterializeTest, SchemeSizeOrdering) {
  // E is smallest; LE_p smaller than LE (paper Table IV).
  tpq::TreePattern v = MustParse("//a//b//c");
  uint64_t e = catalog_.Materialize(doc_, v, Scheme::kElement)->SizeBytes();
  uint64_t le = catalog_.Materialize(doc_, v, Scheme::kLinkedElement)->SizeBytes();
  uint64_t lep =
      catalog_.Materialize(doc_, v, Scheme::kLinkedElementPartial)->SizeBytes();
  EXPECT_LT(e, lep);
  EXPECT_LE(lep, le);
}

TEST_F(MaterializeTest, EmptyViewHasEmptyLists) {
  tpq::TreePattern v = MustParse("//a//zzz");
  const MaterializedView* view =
      catalog_.Materialize(doc_, v, Scheme::kLinkedElement);
  EXPECT_EQ(view->ListLength(0), 0u);
  EXPECT_EQ(view->ListLength(1), 0u);
  ListCursor cursor(&view->list(0), catalog_.pool());
  EXPECT_TRUE(cursor.AtEnd());
}

TEST(MaterializeLargeTest, MultiPageListsReadBackCorrectly) {
  // Enough nodes to span several pages per list.
  xml::Document doc;
  doc.StartElement("root");
  for (int i = 0; i < 2000; ++i) {
    doc.StartElement("a");
    doc.StartElement("b");
    doc.EndElement();
    doc.EndElement();
  }
  doc.EndElement();
  ViewCatalog catalog(TempPath("mat_large.db"), 4);  // tiny pool forces evictions
  tpq::TreePattern v = MustParse("//a/b");
  const MaterializedView* view =
      catalog.Materialize(doc, v, Scheme::kLinkedElement);
  ASSERT_EQ(view->ListLength(0), 2000u);
  ListCursor cursor(&view->list(0), catalog.pool());
  uint32_t prev = 0;
  ListCursor b_cursor(&view->list(1), catalog.pool());
  for (cursor.Reset(); !cursor.AtEnd(); cursor.Next()) {
    Label label = cursor.LabelAt();
    EXPECT_GT(label.start, prev);
    prev = label.start;
    EntryIndex child = cursor.Child(0);
    b_cursor.Seek(child);
    EXPECT_EQ(b_cursor.LabelAt().level, label.level + 1);
  }
  EXPECT_GT(catalog.pool()->eviction_version(), 0u);
}

}  // namespace
}  // namespace viewjoin
