#include <gtest/gtest.h>

#include <cstring>
#include <set>

#include "storage/buffer_pool.h"
#include "storage/materialized_view.h"
#include "storage/pager.h"
#include "storage/stored_list.h"
#include "tests/test_util.h"
#include "tpq/evaluator.h"

namespace viewjoin {
namespace {

using storage::BufferPool;
using storage::EntryIndex;
using storage::kNullEntry;
using storage::ListCursor;
using storage::MaterializedView;
using storage::Pager;
using storage::Scheme;
using storage::StoredList;
using storage::ViewCatalog;
using testing::MakeDoc;
using testing::MustParse;
using xml::Label;
using xml::NodeId;

std::string TempPath(const char* name) {
  return std::string(::testing::TempDir()) + name;
}

TEST(PagerTest, WriteReadRoundTrip) {
  Pager pager(TempPath("pager_rt.db"));
  std::vector<uint8_t> page(Pager::kPageSize);
  storage::PageId a = *pager.AllocatePage();
  storage::PageId b = *pager.AllocatePage();
  EXPECT_EQ(a, 0u);
  EXPECT_EQ(b, 1u);
  for (size_t i = 0; i < page.size(); ++i) page[i] = static_cast<uint8_t>(i);
  pager.WritePage(b, page.data());
  std::fill(page.begin(), page.end(), 0);
  pager.WritePage(a, page.data());
  std::vector<uint8_t> out(Pager::kPageSize);
  pager.ReadPage(b, out.data());
  EXPECT_EQ(out[7], 7);
  EXPECT_EQ(pager.stats().pages_read, 1u);
  EXPECT_EQ(pager.stats().pages_written, 2u);
}

TEST(BufferPoolTest, CachesAndEvictsLru) {
  Pager pager(TempPath("pool_lru.db"));
  std::vector<uint8_t> page(Pager::kPageSize, 0);
  for (int i = 0; i < 4; ++i) {
    storage::PageId id = *pager.AllocatePage();
    page[0] = static_cast<uint8_t>(i);
    pager.WritePage(id, page.data());
  }
  BufferPool pool(&pager, 2);
  EXPECT_EQ(pool.GetPage(0)[0], 0);
  EXPECT_EQ(pool.GetPage(1)[0], 1);
  EXPECT_EQ(pool.GetPage(0)[0], 0);  // hit
  EXPECT_EQ(pool.hits(), 1u);
  EXPECT_EQ(pool.misses(), 2u);
  pool.GetPage(2);  // evicts page 1 (LRU)
  uint64_t version = pool.eviction_version();
  EXPECT_GT(version, 0u);
  pool.GetPage(0);  // still cached
  EXPECT_EQ(pool.hits(), 2u);
  pool.GetPage(1);  // miss again
  EXPECT_EQ(pool.misses(), 4u);
}

TEST(StoredListTest, PageOffsetArithmetic) {
  StoredList list;
  list.first_page = 3;
  list.count = 1000;
  list.layout.label_count = 1;
  ASSERT_EQ(list.layout.RecordSize(), 12u);
  EXPECT_EQ(list.RecordsPerPage(), 341u);
  EXPECT_EQ(list.PageOf(0), 3u);
  EXPECT_EQ(list.PageOf(340), 3u);
  EXPECT_EQ(list.PageOf(341), 4u);
  EXPECT_EQ(list.OffsetOf(341), 0u);
  EXPECT_EQ(list.OffsetOf(342), 12u);
  EXPECT_EQ(list.PageSpan(), 3u);
}

class MaterializeTest : public ::testing::Test {
 protected:
  // Document with recursive 'a' nesting and multi-match nodes.
  MaterializeTest()
      : doc_(MakeDoc("r(a(b(c) a(b(c c)) b) a(x(b(c))) b(c))")),
        catalog_(TempPath("mat.db"), 64) {}

  xml::Document doc_;
  ViewCatalog catalog_;
};

TEST_F(MaterializeTest, ElementSchemeListsAreSolutionNodes) {
  tpq::TreePattern v = MustParse("//a//b//c");
  const MaterializedView* view = catalog_.Materialize(doc_, v, Scheme::kElement);
  tpq::NaiveEvaluator eval(doc_, v);
  std::vector<std::vector<NodeId>> expected = eval.SolutionNodes();
  for (size_t q = 0; q < v.size(); ++q) {
    ListCursor cursor(&view->list(static_cast<int>(q)), catalog_.pool());
    ASSERT_EQ(cursor.size(), expected[q].size());
    for (size_t i = 0; !cursor.AtEnd(); cursor.Next(), ++i) {
      EXPECT_EQ(cursor.LabelAt(), doc_.NodeLabel(expected[q][i]));
    }
    EXPECT_EQ(view->ListLength(static_cast<int>(q)), expected[q].size());
  }
  EXPECT_EQ(view->PointerCount(), 0u);
  EXPECT_EQ(view->SizeBytes(), 12u * (view->ListLength(0) +
                                      view->ListLength(1) +
                                      view->ListLength(2)));
}

TEST_F(MaterializeTest, TupleSchemeMatchesSortedMatches) {
  tpq::TreePattern v = MustParse("//a//b");
  const MaterializedView* view = catalog_.Materialize(doc_, v, Scheme::kTuple);
  std::vector<tpq::Match> matches = tpq::NaiveEvaluator(doc_, v).Collect();
  tpq::SortMatches(&matches);
  ASSERT_EQ(view->MatchCount(), matches.size());
  ListCursor cursor(&view->tuple_list(), catalog_.pool());
  uint32_t prev_start = 0;
  for (size_t t = 0; !cursor.AtEnd(); cursor.Next(), ++t) {
    EXPECT_EQ(cursor.LabelAt(0), doc_.NodeLabel(matches[t][0]));
    EXPECT_EQ(cursor.LabelAt(1), doc_.NodeLabel(matches[t][1]));
    EXPECT_GE(cursor.LabelAt(0).start, prev_start);  // composite key order
    prev_start = cursor.LabelAt(0).start;
  }
}

TEST_F(MaterializeTest, TupleSchemeDuplicatesRecurringNodes) {
  // With recursive 'a's, one b can occur in several (a,b) tuples while the
  // element lists stay duplicate-free — the paper's core redundancy point.
  tpq::TreePattern v = MustParse("//a//b");
  const MaterializedView* tuple = catalog_.Materialize(doc_, v, Scheme::kTuple);
  const MaterializedView* element =
      catalog_.Materialize(doc_, v, Scheme::kElement);
  EXPECT_GT(tuple->MatchCount(),
            static_cast<uint64_t>(element->ListLength(1)));
}

TEST_F(MaterializeTest, LinkedElementPointersAreCorrect) {
  tpq::TreePattern v = MustParse("//a//b");
  const MaterializedView* view =
      catalog_.Materialize(doc_, v, Scheme::kLinkedElement);
  ListCursor a_cursor(&view->list(0), catalog_.pool());
  ListCursor b_cursor(&view->list(1), catalog_.pool());

  std::vector<Label> a_labels;
  for (a_cursor.Reset(); !a_cursor.AtEnd(); a_cursor.Next()) {
    a_labels.push_back(a_cursor.LabelAt());
  }
  std::vector<Label> b_labels;
  for (b_cursor.Reset(); !b_cursor.AtEnd(); b_cursor.Next()) {
    b_labels.push_back(b_cursor.LabelAt());
  }

  for (EntryIndex i = 0; i < a_labels.size(); ++i) {
    a_cursor.Seek(i);
    // Following: first entry starting after this one ends.
    EntryIndex follow = a_cursor.Following();
    EntryIndex expect_follow = kNullEntry;
    for (EntryIndex j = i + 1; j < a_labels.size(); ++j) {
      if (a_labels[j].start > a_labels[i].end) {
        expect_follow = j;
        break;
      }
    }
    EXPECT_EQ(follow, expect_follow) << "entry " << i;
    // Descendant: next entry iff nested.
    EntryIndex desc = a_cursor.Descendant();
    if (i + 1 < a_labels.size() && a_labels[i + 1].start < a_labels[i].end) {
      EXPECT_EQ(desc, i + 1);
    } else {
      EXPECT_EQ(desc, kNullEntry);
    }
    // Child pointer: first b entry inside this a.
    EntryIndex child = a_cursor.Child(0);
    ASSERT_NE(child, kNullEntry);
    EXPECT_GT(b_labels[child].start, a_labels[i].start);
    EXPECT_LT(b_labels[child].end, a_labels[i].end);
    for (EntryIndex j = 0; j < child; ++j) {
      EXPECT_FALSE(b_labels[j].start > a_labels[i].start &&
                   b_labels[j].end < a_labels[i].end)
          << "child pointer skipped an earlier descendant";
    }
  }
}

TEST_F(MaterializeTest, PcChildPointerRespectsLevels) {
  tpq::TreePattern v = MustParse("//b/c");
  const MaterializedView* view =
      catalog_.Materialize(doc_, v, Scheme::kLinkedElement);
  ListCursor b_cursor(&view->list(0), catalog_.pool());
  ListCursor c_cursor(&view->list(1), catalog_.pool());
  for (b_cursor.Reset(); !b_cursor.AtEnd(); b_cursor.Next()) {
    EntryIndex child = b_cursor.Child(0);
    ASSERT_NE(child, kNullEntry);
    c_cursor.Seek(child);
    EXPECT_EQ(c_cursor.LabelAt().level, b_cursor.LabelAt().level + 1);
  }
}

TEST_F(MaterializeTest, PartialSchemeDropsAdjacentPointers) {
  tpq::TreePattern v = MustParse("//a//b");
  const MaterializedView* full =
      catalog_.Materialize(doc_, v, Scheme::kLinkedElement);
  const MaterializedView* partial =
      catalog_.Materialize(doc_, v, Scheme::kLinkedElementPartial);
  EXPECT_LT(partial->PointerCount(), full->PointerCount());
  EXPECT_LT(partial->SizeBytes(), full->SizeBytes());
  // LE_p never materializes descendant pointers (always adjacent) and only
  // keeps following pointers that jump at least two entries.
  ListCursor cursor(&partial->list(0), catalog_.pool());
  for (cursor.Reset(); !cursor.AtEnd(); cursor.Next()) {
    EXPECT_EQ(cursor.Descendant(), kNullEntry);
    EntryIndex follow = cursor.Following();
    if (follow != kNullEntry) {
      EXPECT_GT(follow, cursor.index() + 1);
    }
    // Child pointers always survive.
    EXPECT_NE(cursor.Child(0), kNullEntry);
  }
}

TEST_F(MaterializeTest, SchemeSizeOrdering) {
  // E is smallest; LE_p smaller than LE (paper Table IV).
  tpq::TreePattern v = MustParse("//a//b//c");
  uint64_t e = catalog_.Materialize(doc_, v, Scheme::kElement)->SizeBytes();
  uint64_t le = catalog_.Materialize(doc_, v, Scheme::kLinkedElement)->SizeBytes();
  uint64_t lep =
      catalog_.Materialize(doc_, v, Scheme::kLinkedElementPartial)->SizeBytes();
  EXPECT_LT(e, lep);
  EXPECT_LE(lep, le);
}

TEST_F(MaterializeTest, EmptyViewHasEmptyLists) {
  tpq::TreePattern v = MustParse("//a//zzz");
  const MaterializedView* view =
      catalog_.Materialize(doc_, v, Scheme::kLinkedElement);
  EXPECT_EQ(view->ListLength(0), 0u);
  EXPECT_EQ(view->ListLength(1), 0u);
  ListCursor cursor(&view->list(0), catalog_.pool());
  EXPECT_TRUE(cursor.AtEnd());
}

TEST(MaterializeLargeTest, MultiPageListsReadBackCorrectly) {
  // Enough nodes to span several pages per list.
  xml::Document doc;
  doc.StartElement("root");
  for (int i = 0; i < 2000; ++i) {
    doc.StartElement("a");
    doc.StartElement("b");
    doc.EndElement();
    doc.EndElement();
  }
  doc.EndElement();
  ViewCatalog catalog(TempPath("mat_large.db"), 4);  // tiny pool forces evictions
  tpq::TreePattern v = MustParse("//a/b");
  const MaterializedView* view =
      catalog.Materialize(doc, v, Scheme::kLinkedElement);
  ASSERT_EQ(view->ListLength(0), 2000u);
  ListCursor cursor(&view->list(0), catalog.pool());
  uint32_t prev = 0;
  ListCursor b_cursor(&view->list(1), catalog.pool());
  for (cursor.Reset(); !cursor.AtEnd(); cursor.Next()) {
    Label label = cursor.LabelAt();
    EXPECT_GT(label.start, prev);
    prev = label.start;
    EntryIndex child = cursor.Child(0);
    b_cursor.Seek(child);
    EXPECT_EQ(b_cursor.LabelAt().level, label.level + 1);
  }
  EXPECT_GT(catalog.pool()->eviction_version(), 0u);
}

}  // namespace
}  // namespace viewjoin
