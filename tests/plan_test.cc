// Planner and plan-cache tests: kAuto must return exactly the match set of
// every forced algorithm × scheme combination (the plan layer may pick the
// winner, never change the answer); executed plans must account for the whole
// run in their per-step stats; and cached plans must be invalidated by any
// catalog change (quarantine, re-materialization) that could shift the
// decision.

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "bench/harness.h"
#include "bench/workloads.h"
#include "core/engine.h"
#include "plan/algorithm.h"
#include "plan/physical_plan.h"
#include "plan/plan_cache.h"
#include "storage/materialized_view.h"
#include "tests/test_util.h"
#include "tpq/pattern.h"
#include "util/fault_injection.h"
#include "util/rng.h"

namespace viewjoin {
namespace {

using bench::BenchContext;
using bench::Combo;
using bench::ParseQuery;
using bench::QuerySpec;
using core::Algorithm;
using core::Engine;
using core::RunOptions;
using core::RunResult;
using storage::MaterializedView;
using storage::Scheme;
using testing::MustParse;
using tpq::TreePattern;

std::string TempPath(const std::string& name) {
  return std::string(::testing::TempDir()) + name;
}

TEST(ParseHelpersTest, AlgorithmNamesRoundTrip) {
  for (Algorithm a : {Algorithm::kTwigStack, Algorithm::kViewJoin,
                      Algorithm::kInterJoin, Algorithm::kAuto}) {
    auto parsed = plan::ParseAlgorithm(AlgorithmName(a));
    ASSERT_TRUE(parsed.has_value()) << AlgorithmName(a);
    EXPECT_EQ(*parsed, a);
  }
  EXPECT_FALSE(plan::ParseAlgorithm("").has_value());
  EXPECT_FALSE(plan::ParseAlgorithm("vj").has_value());
  EXPECT_FALSE(plan::ParseAlgorithm("TwigStack").has_value());
}

TEST(ParseHelpersTest, SchemeNamesRoundTrip) {
  for (Scheme s : {Scheme::kElement, Scheme::kTuple, Scheme::kLinkedElement,
                   Scheme::kLinkedElementPartial}) {
    auto parsed = storage::ParseScheme(SchemeName(s));
    ASSERT_TRUE(parsed.has_value()) << SchemeName(s);
    EXPECT_EQ(*parsed, s);
  }
  EXPECT_FALSE(storage::ParseScheme("").has_value());
  EXPECT_FALSE(storage::ParseScheme("le").has_value());
  EXPECT_FALSE(storage::ParseScheme("LEp").has_value());
}

// kAuto must agree with every forced combination on every workload query:
// the planner picks among equivalent strategies, so whatever it chooses the
// match set (count and hash) is pinned by the forced runs.
TEST(PlannerEquivalenceTest, AutoMatchesEveryForcedComboOnXmark) {
  auto context = BenchContext::Xmark(0.3);
  for (const QuerySpec& spec : bench::XmarkQueries()) {
    TreePattern query = ParseQuery(spec.xpath);
    std::vector<TreePattern> split = bench::PairViews(query);
    // Materialize every scheme so the planner has real twins to price.
    for (Scheme s : {Scheme::kElement, Scheme::kTuple, Scheme::kLinkedElement,
                     Scheme::kLinkedElementPartial}) {
      context->Views(split, s);
    }
    RunResult reference = context->Run(
        query, context->Views(split, Scheme::kLinkedElement),
        {Algorithm::kAuto, Scheme::kLinkedElement}, algo::OutputMode::kMemory,
        /*repeats=*/1);
    ASSERT_TRUE(reference.ok) << spec.name << ": " << reference.error;
    EXPECT_NE(reference.plan.algorithm, Algorithm::kAuto) << spec.name;
    // IJ only binds path queries over tuple path views.
    std::vector<Combo> combos =
        spec.is_path ? bench::AllCombos() : bench::ListCombos();
    for (const Combo& combo : combos) {
      RunResult forced = context->Run(
          query, context->Views(split, combo.scheme), combo,
          algo::OutputMode::kMemory, /*repeats=*/1);
      ASSERT_TRUE(forced.ok)
          << spec.name << " " << combo.Label() << ": " << forced.error;
      EXPECT_EQ(forced.match_count, reference.match_count)
          << spec.name << " " << combo.Label();
      EXPECT_EQ(forced.result_hash, reference.result_hash)
          << spec.name << " " << combo.Label();
    }
  }
}

// The acceptance contract of RunResult::plan: the per-step stats columns sum
// exactly to the run totals, in memory and in disk mode, for forced and
// planned algorithms alike.
TEST(PlanStepStatsTest, StepColumnsSumToRunTotals) {
  util::Rng rng(17);
  xml::Document doc = testing::RandomDoc(&rng, 2000, {"a", "b", "c", "d"});
  Engine engine(&doc, TempPath("plan_sums.db"));
  TreePattern query = MustParse("//a//b[//c]//d");
  std::vector<const MaterializedView*> views = {
      engine.AddView("//a//b", Scheme::kLinkedElement),
      engine.AddView("//c", Scheme::kLinkedElement),
      engine.AddView("//d", Scheme::kLinkedElement),
  };
  for (Algorithm algorithm :
       {Algorithm::kTwigStack, Algorithm::kViewJoin, Algorithm::kAuto}) {
    for (algo::OutputMode mode :
         {algo::OutputMode::kMemory, algo::OutputMode::kDisk}) {
      RunOptions run;
      run.algorithm = algorithm;
      run.output_mode = mode;
      RunResult r = engine.Execute(query, views, run);
      ASSERT_TRUE(r.ok) << r.error;
      ASSERT_FALSE(r.plan.steps.empty());
      plan::StepStats sum;
      for (const plan::PlanStep& step : r.plan.steps) sum += step.stats;
      EXPECT_NEAR(sum.elapsed_ms, r.total_ms, 1e-9)
          << AlgorithmName(algorithm) << " " << r.plan.text;
      EXPECT_EQ(sum.pages_read, r.io.pages_read) << AlgorithmName(algorithm);
      EXPECT_EQ(sum.entries_advanced, r.stats.entries_scanned)
          << AlgorithmName(algorithm);
      EXPECT_EQ(sum.pointer_jumps, r.stats.pointer_jumps)
          << AlgorithmName(algorithm);
    }
  }
}

// Same contract on a skip-heavy run: a highly selective query over LE views
// makes ViewJoin skip via pointer jumps and galloping seeks rather than
// scan. Gallop *probes* are real work — each touches a fence key or an
// entry — so they must land in entries_scanned exactly like stepped-over
// entries, and the per-step columns must still reconcile to the totals.
TEST(PlanStepStatsTest, GallopProbesAreAccountedOnSkipHeavyRuns) {
  xml::Document doc;
  doc.StartElement("r");
  // 3000 a(b) groups; only the last few contain the d the query needs, so
  // evaluation leaps over nearly the whole b list.
  for (int i = 0; i < 3000; ++i) {
    doc.StartElement("a");
    doc.StartElement("b");
    if (i >= 2995) {
      doc.StartElement("d");
      doc.EndElement();
    }
    doc.EndElement();
    doc.EndElement();
  }
  doc.EndElement();
  Engine engine(&doc, TempPath("plan_skip_sums.db"));
  TreePattern query = MustParse("//a//b//d");
  std::vector<const MaterializedView*> views = {
      engine.AddView("//a//b", Scheme::kLinkedElement),
      engine.AddView("//d", Scheme::kLinkedElement),
  };
  RunOptions run;
  run.algorithm = Algorithm::kViewJoin;
  RunResult r = engine.Execute(query, views, run);
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_EQ(r.match_count, 5u);
  EXPECT_GT(r.stats.pointer_jumps, 0u) << r.plan.text;
  plan::StepStats sum;
  for (const plan::PlanStep& step : r.plan.steps) sum += step.stats;
  EXPECT_EQ(sum.entries_advanced, r.stats.entries_scanned);
  EXPECT_EQ(sum.pointer_jumps, r.stats.pointer_jumps);
  EXPECT_EQ(sum.pages_read, r.io.pages_read);
}

TEST(PlanCacheTest, RepeatedQueriesHitTheCache) {
  xml::Document doc = testing::MakeDoc("r(a(b(c) b) a(b(c c)))");
  Engine engine(&doc, TempPath("plan_cache_hit.db"));
  std::vector<const MaterializedView*> views = {
      engine.AddView("//a//b", Scheme::kLinkedElement),
      engine.AddView("//c", Scheme::kLinkedElement),
  };
  TreePattern query = MustParse("//a//b//c");
  RunOptions run;
  run.algorithm = Algorithm::kAuto;
  RunResult first = engine.Execute(query, views, run);
  ASSERT_TRUE(first.ok) << first.error;
  EXPECT_FALSE(first.plan.from_cache);
  RunResult second = engine.Execute(query, views, run);
  ASSERT_TRUE(second.ok) << second.error;
  EXPECT_TRUE(second.plan.from_cache);
  EXPECT_EQ(second.plan.algorithm, first.plan.algorithm);
  EXPECT_EQ(second.match_count, first.match_count);
  EXPECT_GE(engine.plan_cache()->hits(), 1u);
  // A different forced algorithm is a different environment, not a stale hit.
  RunOptions ts;
  ts.algorithm = Algorithm::kTwigStack;
  RunResult other = engine.Execute(query, views, ts);
  ASSERT_TRUE(other.ok) << other.error;
  EXPECT_FALSE(other.plan.from_cache);
}

// Quarantining a view and re-materializing its replacement both bump the
// catalog version, so the next query must re-plan instead of reusing the
// pre-fault plan (which may name the quarantined view).
TEST(PlanCacheTest, QuarantineAndRematerializationInvalidate) {
  util::Rng rng(11);
  xml::Document doc = testing::RandomDoc(&rng, 600, {"a", "b", "c"});
  TreePattern query = MustParse("//a//b//c");
  util::ScopedFaultInjection fi;
  Engine engine(&doc, TempPath("plan_cache_inval.db"));
  const MaterializedView* ab =
      engine.AddView("//a//b", Scheme::kLinkedElement);
  fi->ArmWriteFault(util::WriteFault::kBitFlip, /*nth=*/1, /*count=*/1);
  const MaterializedView* c = engine.AddView("//c", Scheme::kLinkedElement);

  // Clean pass over a healthy twin store to pin the expected answer.
  RunResult clean;
  {
    util::ScopedFaultInjection off;
    Engine reference(&doc, TempPath("plan_cache_inval_ref.db"));
    clean = reference.Execute(query,
                              {reference.AddView("//a//b",
                                                 Scheme::kLinkedElement),
                               reference.AddView("//c",
                                                 Scheme::kLinkedElement)});
    ASSERT_TRUE(clean.ok) << clean.error;
  }

  const uint64_t version_before = engine.catalog()->version();
  RunResult faulted = engine.Execute(query, {ab, c});
  ASSERT_TRUE(faulted.ok) << faulted.error;
  EXPECT_TRUE(faulted.degraded);
  ASSERT_FALSE(faulted.quarantined_views.empty());
  EXPECT_EQ(faulted.result_hash, clean.result_hash);
  EXPECT_FALSE(faulted.plan.from_cache);
  // Quarantine + replacement re-materialization moved the catalog version.
  EXPECT_GT(engine.catalog()->version(), version_before);

  // The cached plan predates the quarantine: it must NOT be served again.
  RunResult after = engine.Execute(query, {ab, c});
  ASSERT_TRUE(after.ok) << after.error;
  EXPECT_FALSE(after.plan.from_cache);
  EXPECT_FALSE(after.degraded);
  EXPECT_EQ(after.result_hash, clean.result_hash);

  // With the catalog now stable the re-plan is reusable...
  RunResult warm = engine.Execute(query, {ab, c});
  ASSERT_TRUE(warm.ok) << warm.error;
  EXPECT_TRUE(warm.plan.from_cache);
  EXPECT_EQ(warm.result_hash, clean.result_hash);

  // ...until any new materialization bumps the version again.
  engine.AddView("//a//b", Scheme::kTuple);
  RunResult remat = engine.Execute(query, {ab, c});
  ASSERT_TRUE(remat.ok) << remat.error;
  EXPECT_FALSE(remat.plan.from_cache);
  EXPECT_EQ(remat.result_hash, clean.result_hash);
}

}  // namespace
}  // namespace viewjoin
