// Robustness and failure-injection tests: parser fuzzing, pathological pool
// sizes, empty/missing inputs, cache behaviour, resolver monotonicity, and
// the storage fault matrix (transient read faults, torn pages, bit flips,
// persistent media failure) — under every injected fault Execute must either
// succeed with the exact clean answer (possibly degraded) or return a typed
// error; it must never abort or fabricate matches.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "algo/monotone_resolver.h"
#include "core/engine.h"
#include "storage/buffer_pool.h"
#include "storage/fsck.h"
#include "storage/materialized_view.h"
#include "storage/pager.h"
#include "tests/test_util.h"
#include "tpq/evaluator.h"
#include "util/fault_injection.h"
#include "util/rng.h"
#include "util/status.h"
#include "xml/parser.h"
#include "xml/writer.h"

namespace viewjoin {
namespace {

using core::Algorithm;
using core::Engine;
using core::EngineOptions;
using core::RunOptions;
using core::RunResult;
using storage::MaterializedView;
using storage::Scheme;
using testing::MakeDoc;
using testing::MustParse;
using tpq::TreePattern;

std::string TempPath(const std::string& name) {
  return std::string(::testing::TempDir()) + name;
}

TEST(MonotoneResolverTest, ResolvesAscendingStreams) {
  xml::Document doc = MakeDoc("a(b(c) b(c c) b)");
  xml::TagId b = doc.FindTag("b");
  xml::TagId c = doc.FindTag("c");
  algo::MonotoneResolver resolver(&doc, {b, c});
  for (xml::NodeId n : doc.NodesOfTag(b)) {
    EXPECT_EQ(resolver.Resolve(0, doc.NodeLabel(n).start), n);
  }
  for (xml::NodeId n : doc.NodesOfTag(c)) {
    EXPECT_EQ(resolver.Resolve(1, doc.NodeLabel(n).start), n);
  }
  // Unknown start past the end resolves to invalid.
  EXPECT_EQ(resolver.Resolve(0, 100000u), xml::kInvalidNode);
}

TEST(MonotoneResolverTest, RepeatedStartsAreStable) {
  xml::Document doc = MakeDoc("a(b b)");
  xml::TagId b = doc.FindTag("b");
  algo::MonotoneResolver resolver(&doc, {b});
  xml::NodeId first = doc.NodesOfTag(b)[0];
  uint32_t start = doc.NodeLabel(first).start;
  EXPECT_EQ(resolver.Resolve(0, start), first);
  EXPECT_EQ(resolver.Resolve(0, start), first);  // same start: no advance
}

TEST(ParserFuzzTest, MutatedDocumentsNeverCrash) {
  util::Rng rng(77);
  xml::Document doc = testing::RandomDoc(&rng, 60, {"a", "bb", "c"});
  std::string base = xml::WriteDocument(doc);
  for (int trial = 0; trial < 500; ++trial) {
    std::string mutated = base;
    int edits = 1 + static_cast<int>(rng.Uniform(4));
    for (int e = 0; e < edits; ++e) {
      size_t pos = rng.Uniform(mutated.size());
      switch (rng.Uniform(3)) {
        case 0:
          mutated[pos] = static_cast<char>(rng.Uniform(128));
          break;
        case 1:
          mutated.erase(pos, 1 + rng.Uniform(3));
          break;
        default:
          mutated.insert(pos, 1, "<>/ab\""[rng.Uniform(6)]);
          break;
      }
      if (mutated.empty()) mutated = "<a/>";
    }
    // Must either parse to a complete document or fail cleanly.
    xml::ParseResult result = xml::ParseDocument(mutated);
    if (result.ok()) {
      EXPECT_TRUE(result.document->IsComplete());
    } else {
      EXPECT_FALSE(result.error.empty());
    }
  }
}

TEST(ParserFuzzTest, RandomGarbageNeverCrashes) {
  util::Rng rng(99);
  for (int trial = 0; trial < 300; ++trial) {
    std::string garbage;
    size_t len = rng.Uniform(200);
    for (size_t i = 0; i < len; ++i) {
      garbage.push_back("<>/= \"'abc![]-?x"[rng.Uniform(16)]);
    }
    xml::ParseResult result = xml::ParseDocument(garbage);
    if (result.ok()) {
      EXPECT_TRUE(result.document->IsComplete());
    }
  }
}

TEST(PoolPressureTest, CapacityOneStillAnswersCorrectly) {
  util::Rng rng(5);
  xml::Document doc = testing::RandomDoc(&rng, 400, {"a", "b", "c", "d"});
  TreePattern query = MustParse("//a//b[//c]//d");
  uint64_t expected = tpq::NaiveEvaluator(doc, query).Count();
  EngineOptions options;
  options.pool_pages = 1;  // every page access is a miss after the first
  Engine engine(&doc, TempPath("pool1.db"), options);
  std::vector<const MaterializedView*> views = {
      engine.AddView("//a//b", Scheme::kLinkedElement),
      engine.AddView("//c", Scheme::kLinkedElement),
      engine.AddView("//d", Scheme::kLinkedElement),
  };
  RunResult r = engine.Execute(query, views);
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_EQ(r.match_count, expected);
  EXPECT_GT(r.io.pool_misses, 0u);
}

TEST(CacheBehaviourTest, WarmRunsReadFewerPages) {
  xml::Document doc = MakeDoc("r(a(b(c) b) a(b(c c)))");
  Engine engine(&doc, TempPath("warm.db"));
  std::vector<const MaterializedView*> views = {
      engine.AddView("//a//b", Scheme::kLinkedElement),
      engine.AddView("//c", Scheme::kLinkedElement),
  };
  TreePattern query = MustParse("//a//b//c");
  RunOptions cold;
  cold.cold_cache = true;
  RunResult first = engine.Execute(query, views, cold);
  ASSERT_TRUE(first.ok);
  RunOptions warm;
  warm.cold_cache = false;
  RunResult second = engine.Execute(query, views, warm);
  ASSERT_TRUE(second.ok);
  EXPECT_EQ(first.match_count, second.match_count);
  EXPECT_LT(second.io.pages_read, first.io.pages_read + 1);
}

TEST(MissingTagTest, AllAlgorithmsReturnEmpty) {
  xml::Document doc = MakeDoc("r(a(b))");
  Engine engine(&doc, TempPath("missing.db"));
  TreePattern query = MustParse("//a//zzz");
  std::vector<const MaterializedView*> views = {
      engine.AddView("//a", Scheme::kLinkedElement),
      engine.AddView("//zzz", Scheme::kLinkedElement),
  };
  for (Algorithm algorithm : {Algorithm::kTwigStack, Algorithm::kViewJoin}) {
    RunOptions run;
    run.algorithm = algorithm;
    RunResult r = engine.Execute(query, views, run);
    ASSERT_TRUE(r.ok) << r.error;
    EXPECT_EQ(r.match_count, 0u);
  }
  std::vector<const MaterializedView*> tuples = {
      engine.AddView("//a", Scheme::kTuple),
      engine.AddView("//zzz", Scheme::kTuple),
  };
  RunOptions ij;
  ij.algorithm = Algorithm::kInterJoin;
  RunResult r = engine.Execute(query, tuples, ij);
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_EQ(r.match_count, 0u);
}

TEST(EmptyResultViewTest, StoringAnEmptyAnswerWorks) {
  xml::Document doc = MakeDoc("r(a(b) c)");
  Engine engine(&doc, TempPath("emptyview.db"));
  TreePattern query = MustParse("//c//a");  // a never under c
  std::vector<const MaterializedView*> views = {
      engine.AddView("//c", Scheme::kLinkedElement),
      engine.AddView("//a", Scheme::kLinkedElement),
  };
  const MaterializedView* stored = nullptr;
  RunResult r =
      engine.ExecuteToView(query, views, Scheme::kLinkedElement, &stored);
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_EQ(r.match_count, 0u);
  ASSERT_NE(stored, nullptr);
  EXPECT_EQ(stored->ListLength(0), 0u);
  EXPECT_EQ(stored->ListLength(1), 0u);
}

TEST(DiskModeTest, SmallFlushesAgreeWithMemoryOnManyGroups) {
  // Many independent root groups: disk mode flushes repeatedly once the
  // spill threshold is crossed; the final answers must agree regardless.
  xml::Document doc;
  doc.StartElement("r");
  for (int i = 0; i < 5000; ++i) {
    doc.StartElement("a");
    doc.StartElement("b");
    doc.StartElement("c");
    doc.EndElement();
    doc.EndElement();
    doc.EndElement();
  }
  doc.EndElement();
  Engine engine(&doc, TempPath("diskgroups.db"));
  TreePattern query = MustParse("//a//b//c");
  std::vector<const MaterializedView*> views = {
      engine.AddView("//a//b", Scheme::kLinkedElement),
      engine.AddView("//c", Scheme::kLinkedElement),
  };
  RunOptions mem;
  mem.output_mode = algo::OutputMode::kMemory;
  RunOptions disk;
  disk.output_mode = algo::OutputMode::kDisk;
  RunResult m = engine.Execute(query, views, mem);
  RunResult d = engine.Execute(query, views, disk);
  ASSERT_TRUE(m.ok && d.ok);
  EXPECT_EQ(m.match_count, 5000u);
  EXPECT_EQ(m.result_hash, d.result_hash);
  EXPECT_GT(d.stats.flushes, 1u);          // threshold-triggered group flushes
  EXPECT_GT(d.stats.spill_pages_written, 0u);
  EXPECT_LT(d.stats.peak_buffered, m.stats.peak_buffered);
}

// ---- Storage fault matrix ------------------------------------------------
//
// Every scenario compares the faulted run's result_hash against a clean
// TwigStack run over an untouched store: recovery must reproduce the exact
// match set, not an approximation.

class FaultMatrixTest : public ::testing::Test {
 protected:
  FaultMatrixTest() {
    util::Rng rng(11);
    doc_ = testing::RandomDoc(&rng, 600, {"a", "b", "c", "d"});
    query_ = MustParse("//a//b//c");
  }

  /// Clean reference hash from a fresh, fault-free engine.
  RunResult CleanBaseline() {
    util::ScopedFaultInjection off;  // ensure nothing is armed
    Engine engine(&doc_, TempPath("fault_clean.db"));
    std::vector<const MaterializedView*> views = {
        engine.AddView("//a//b", Scheme::kLinkedElement),
        engine.AddView("//c", Scheme::kLinkedElement),
    };
    RunOptions ts;
    ts.algorithm = Algorithm::kTwigStack;
    RunResult r = engine.Execute(query_, views, ts);
    EXPECT_TRUE(r.ok) << r.error;
    EXPECT_FALSE(r.degraded);
    return r;
  }

  xml::Document doc_;
  TreePattern query_;
};

TEST_F(FaultMatrixTest, TransientReadFaultIsAbsorbedByRetry) {
  RunResult clean = CleanBaseline();
  util::ScopedFaultInjection fi;
  Engine engine(&doc_, TempPath("fault_transient.db"));
  std::vector<const MaterializedView*> views = {
      engine.AddView("//a//b", Scheme::kLinkedElement),
      engine.AddView("//c", Scheme::kLinkedElement),
  };
  fi->ArmReadFault(/*nth=*/1, /*count=*/1);
  RunResult r = engine.Execute(query_, views);
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_FALSE(r.degraded);  // the retry hid the fault entirely
  EXPECT_GT(r.retries, 0u);
  EXPECT_TRUE(r.quarantined_views.empty());
  EXPECT_EQ(r.result_hash, clean.result_hash);
  EXPECT_EQ(r.match_count, clean.match_count);
}

TEST_F(FaultMatrixTest, BitFlippedViewIsQuarantinedAndRematerialized) {
  RunResult clean = CleanBaseline();
  util::ScopedFaultInjection fi;
  Engine engine(&doc_, TempPath("fault_bitflip.db"));
  const MaterializedView* ab = engine.AddView("//a//b",
                                              Scheme::kLinkedElement);
  // Corrupt the first page written for //c: the checksum is computed before
  // the flip, so the page reads back as kCorruption.
  fi->ArmWriteFault(util::WriteFault::kBitFlip, /*nth=*/1, /*count=*/1);
  const MaterializedView* c = engine.AddView("//c", Scheme::kLinkedElement);
  RunResult r = engine.Execute(query_, {ab, c});
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_TRUE(r.degraded);
  ASSERT_FALSE(r.quarantined_views.empty());
  EXPECT_EQ(r.quarantined_views[0], "//c");
  EXPECT_EQ(r.result_hash, clean.result_hash);
  EXPECT_EQ(r.match_count, clean.match_count);
  // The catalog remembers the quarantine and the healthy replacement, so the
  // next run with the stale pointer is clean again.
  EXPECT_GE(engine.catalog()->quarantined_count(), 1u);
  RunResult again = engine.Execute(query_, {ab, c});
  ASSERT_TRUE(again.ok) << again.error;
  EXPECT_FALSE(again.degraded);
  EXPECT_EQ(again.result_hash, clean.result_hash);
}

TEST_F(FaultMatrixTest, TornPageIsDetectedAndRecovered) {
  RunResult clean = CleanBaseline();
  util::ScopedFaultInjection fi;
  Engine engine(&doc_, TempPath("fault_torn.db"));
  const MaterializedView* ab = engine.AddView("//a//b",
                                              Scheme::kLinkedElement);
  fi->ArmWriteFault(util::WriteFault::kTornPage, /*nth=*/1, /*count=*/1);
  const MaterializedView* c = engine.AddView("//c", Scheme::kLinkedElement);
  RunResult r = engine.Execute(query_, {ab, c});
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_TRUE(r.degraded);
  EXPECT_FALSE(r.quarantined_views.empty());
  EXPECT_EQ(r.result_hash, clean.result_hash);
}

TEST_F(FaultMatrixTest, PersistentReadFaultFallsBackToBaseDocument) {
  RunResult clean = CleanBaseline();
  util::ScopedFaultInjection fi;
  Engine engine(&doc_, TempPath("fault_dead_disk.db"));
  std::vector<const MaterializedView*> views = {
      engine.AddView("//a//b", Scheme::kLinkedElement),
      engine.AddView("//c", Scheme::kLinkedElement),
  };
  // Every physical read fails from here on: retry cannot hide it and
  // re-materialized replacements are just as unreadable, so the engine must
  // end up answering from the in-memory document alone.
  fi->ArmReadFault(/*nth=*/1, /*count=*/-1);
  for (Algorithm algorithm : {Algorithm::kTwigStack, Algorithm::kViewJoin}) {
    RunOptions run;
    run.algorithm = algorithm;
    RunResult r = engine.Execute(query_, views, run);
    ASSERT_TRUE(r.ok) << AlgorithmName(algorithm) << ": " << r.error;
    EXPECT_TRUE(r.degraded);
    EXPECT_FALSE(r.quarantined_views.empty());
    EXPECT_EQ(r.result_hash, clean.result_hash) << AlgorithmName(algorithm);
    EXPECT_EQ(r.match_count, clean.match_count);
  }
}

TEST_F(FaultMatrixTest, SpillWriteFaultDegradesToMemoryBuffering) {
  // Many independent groups so disk mode actually spills (cf. DiskModeTest).
  xml::Document doc;
  doc.StartElement("r");
  for (int i = 0; i < 5000; ++i) {
    doc.StartElement("a");
    doc.StartElement("b");
    doc.StartElement("c");
    doc.EndElement();
    doc.EndElement();
    doc.EndElement();
  }
  doc.EndElement();
  util::ScopedFaultInjection fi;
  Engine engine(&doc, TempPath("fault_spill.db"));
  TreePattern query = MustParse("//a//b//c");
  std::vector<const MaterializedView*> views = {
      engine.AddView("//a//b", Scheme::kLinkedElement),
      engine.AddView("//c", Scheme::kLinkedElement),
  };
  RunOptions mem;
  mem.output_mode = algo::OutputMode::kMemory;
  RunResult clean = engine.Execute(query, views, mem);
  ASSERT_TRUE(clean.ok);
  // All further writes fail short: only the spill spool writes from here on.
  fi->ArmWriteFault(util::WriteFault::kShortWrite, /*nth=*/1, /*count=*/-1);
  RunOptions disk;
  disk.output_mode = algo::OutputMode::kDisk;
  RunResult r = engine.Execute(query, views, disk);
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_TRUE(r.degraded);
  EXPECT_TRUE(r.quarantined_views.empty());  // the views were never at fault
  EXPECT_EQ(r.match_count, 5000u);
  EXPECT_EQ(r.result_hash, clean.result_hash);
}

TEST(FsckTest, DetectsExactlyTheCorruptedPages) {
  util::ScopedFaultInjection fi;
  std::string path = TempPath("fsck_matrix.db");
  {
    storage::Pager pager(path, storage::Pager::Mode::kPersist);
    ASSERT_TRUE(pager.init_status().ok());
    std::vector<uint8_t> page(storage::Pager::kPageSize);
    // Bit-flip write #4 (page 3), tear writes #7 and #8 (pages 6 and 7).
    fi->ArmWriteFault(util::WriteFault::kBitFlip, /*nth=*/4, /*count=*/1);
    for (uint32_t i = 0; i < 10; ++i) {
      if (i == 6) {
        fi->ArmWriteFault(util::WriteFault::kTornPage, /*nth=*/1, /*count=*/2);
      }
      for (size_t b = 0; b < page.size(); ++b) {
        page[b] = static_cast<uint8_t>(i + b);
      }
      storage::PageId id = *pager.AllocatePage();
      pager.WritePage(id, page.data());  // torn writes still report success
    }
  }
  storage::FsckReport report = storage::FsckPagerFile(path);
  ASSERT_TRUE(report.file_status.ok()) << report.file_status.ToString();
  EXPECT_EQ(report.page_count, 10u);
  EXPECT_FALSE(report.ok());
  std::set<storage::PageId> bad;
  for (const auto& [id, status] : report.bad_pages) {
    EXPECT_EQ(status.code(), util::StatusCode::kCorruption)
        << status.ToString();
    bad.insert(id);
  }
  EXPECT_EQ(bad, (std::set<storage::PageId>{3, 6, 7}));
  std::remove(path.c_str());
}

TEST(FsckTest, RejectsGarbageFileViaHeader) {
  std::string path = TempPath("fsck_garbage.db");
  {
    std::FILE* f = std::fopen(path.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    for (int i = 0; i < 9000; ++i) std::fputc(0x42, f);
    std::fclose(f);
  }
  storage::FsckReport report = storage::FsckPagerFile(path);
  EXPECT_EQ(report.file_status.code(), util::StatusCode::kCorruption);
  EXPECT_FALSE(report.ok());
  std::remove(path.c_str());
}

// ---- Error-latch lifecycle ----------------------------------------------

TEST(PoolLatchTest, ClearResetsThePoisonLatch) {
  std::string path = TempPath("latch_clear.db");
  storage::Pager pager(path, storage::Pager::Mode::kTruncate);
  ASSERT_TRUE(pager.init_status().ok());
  std::vector<uint8_t> page(storage::Pager::kPageSize, 1);
  storage::PageId id = *pager.AllocatePage();
  ASSERT_TRUE(pager.WritePage(id, page.data()).ok());
  storage::BufferPool pool(&pager, 4);
  // Out-of-range read: GetPage hands back poison and latches the error.
  storage::BufferPool::PinnedPage poison = pool.GetPage(999);
  ASSERT_TRUE(poison.valid());
  EXPECT_EQ(poison.data()[0], 0xFF);
  EXPECT_FALSE(pool.error().ok());
  EXPECT_EQ(pool.error_page(), 999u);
  // Regression: Clear() (the cold-cache path) must reset the latch along
  // with the frames; it used to drop only the frames, so a later run saw a
  // stale fault it never experienced.
  pool.Clear();
  EXPECT_TRUE(pool.error().ok());
  EXPECT_EQ(pool.error_page(), storage::kInvalidPage);
  // ResetError() — the quarantine path's explicit reset — works on its own.
  pool.GetPage(999);
  EXPECT_FALSE(pool.error().ok());
  pool.ResetError();
  EXPECT_TRUE(pool.error().ok());
  EXPECT_EQ(pool.error_page(), storage::kInvalidPage);
  // A valid page still reads correctly after both resets.
  storage::BufferPool::PinnedPage pin = pool.GetPage(id);
  EXPECT_EQ(pin.data()[0], 1);
  EXPECT_TRUE(pool.error().ok());
  std::remove(path.c_str());
}

TEST(PoolLatchTest, RecoveredEngineStaysCleanOnColdRuns) {
  util::Rng rng(13);
  xml::Document doc = testing::RandomDoc(&rng, 400, {"a", "b", "c"});
  TreePattern query = MustParse("//a//b//c");
  util::ScopedFaultInjection fi;
  Engine engine(&doc, TempPath("latch_engine.db"));
  const MaterializedView* ab = engine.AddView("//a//b",
                                              Scheme::kLinkedElement);
  fi->ArmWriteFault(util::WriteFault::kBitFlip, /*nth=*/1, /*count=*/1);
  const MaterializedView* c = engine.AddView("//c", Scheme::kLinkedElement);
  RunResult faulted = engine.Execute(query, {ab, c});
  ASSERT_TRUE(faulted.ok) << faulted.error;
  EXPECT_TRUE(faulted.degraded);
  // Every later cold-cache run (DropCaches → BufferPool::Clear) must start
  // from a clean latch: same answer, no phantom degradation.
  for (int i = 0; i < 3; ++i) {
    RunResult r = engine.Execute(query, {ab, c});
    ASSERT_TRUE(r.ok) << r.error;
    EXPECT_FALSE(r.degraded);
    EXPECT_TRUE(r.quarantined_views.empty());
    EXPECT_EQ(r.result_hash, faulted.result_hash);
  }
}

// ---- Batch fault isolation ----------------------------------------------

TEST(BatchFaultIsolationTest, CorruptViewDegradesOnlyItsOwnQuery) {
  util::Rng rng(21);
  xml::Document doc = testing::RandomDoc(&rng, 600, {"a", "b", "c", "d"});
  TreePattern q_bad = MustParse("//a//b");
  TreePattern q_good = MustParse("//c//d");
  uint64_t bad_expected = tpq::NaiveEvaluator(doc, q_bad).Count();
  uint64_t good_expected = tpq::NaiveEvaluator(doc, q_good).Count();
  util::ScopedFaultInjection fi;
  Engine engine(&doc, TempPath("batch_fault.db"));
  const MaterializedView* a = engine.AddView("//a", Scheme::kLinkedElement);
  const MaterializedView* c = engine.AddView("//c", Scheme::kLinkedElement);
  const MaterializedView* d = engine.AddView("//d", Scheme::kLinkedElement);
  fi->ArmWriteFault(util::WriteFault::kBitFlip, /*nth=*/1, /*count=*/1);
  const MaterializedView* b = engine.AddView("//b", Scheme::kLinkedElement);
  std::vector<core::BatchQuery> batch;
  for (int rep = 0; rep < 4; ++rep) {
    batch.push_back({&q_bad, {a, b}});    // touches the corrupt view
    batch.push_back({&q_good, {c, d}});   // never touches it
  }
  core::BatchOptions options;
  options.threads = 4;
  std::vector<RunResult> results = engine.ExecuteBatch(batch, options);
  ASSERT_EQ(results.size(), batch.size());
  bool any_bad_degraded = false;
  for (size_t i = 0; i < results.size(); ++i) {
    ASSERT_TRUE(results[i].ok) << "query " << i << ": " << results[i].error;
    if (i % 2 == 0) {
      EXPECT_EQ(results[i].match_count, bad_expected);
      any_bad_degraded |= results[i].degraded;
    } else {
      // Sibling queries must not be contaminated by the corrupt view's
      // poison latch or quarantine (per-query ErrorScope isolation).
      EXPECT_FALSE(results[i].degraded) << "sibling " << i << " contaminated";
      EXPECT_TRUE(results[i].quarantined_views.empty());
      EXPECT_EQ(results[i].match_count, good_expected);
    }
  }
  // At least the first query to touch the corrupt view saw the fault (later
  // replicas may already be served by the rebuilt replacement).
  EXPECT_TRUE(any_bad_degraded);
  EXPECT_GE(engine.catalog()->quarantined_count(), 1u);
}

TEST(BatchFaultIsolationTest, CancelDuringQuarantineRecoveryLeaksNothing) {
  // A query hits a corrupt view, the engine quarantines and rebuilds it, and
  // the caller cancels *during* that recovery: an armed recovery barrier
  // holds the victim's worker between the rebuild and the retry run until
  // the canceller has flipped the token, so the cancellation lands
  // mid-recovery deterministically — the retry can never outrun it. The
  // cancelled query must stop without leaking buffer pins or spill files,
  // and sibling batch queries must complete with clean answers.
  util::Rng rng(33);
  xml::Document doc = testing::RandomDoc(&rng, 40000, {"a", "b", "c", "d"});
  TreePattern q_bad = MustParse("//a//b");
  TreePattern q_good = MustParse("//c//d");
  uint64_t good_expected = tpq::NaiveEvaluator(doc, q_good).Count();
  util::ScopedFaultInjection fi;
  std::string path = TempPath("cancel_recovery.db");
  Engine engine(&doc, path);
  const MaterializedView* a = engine.AddView("//a", Scheme::kLinkedElement);
  const MaterializedView* c = engine.AddView("//c", Scheme::kLinkedElement);
  const MaterializedView* d = engine.AddView("//d", Scheme::kLinkedElement);
  fi->ArmWriteFault(util::WriteFault::kBitFlip, /*nth=*/1, /*count=*/1);
  const MaterializedView* b = engine.AddView("//b", Scheme::kLinkedElement);
  fi->ArmRecoveryBarrier();

  std::atomic<bool> cancel{false};
  std::thread canceller([&] {
    auto give_up = std::chrono::steady_clock::now() + std::chrono::seconds(10);
    while (engine.catalog()->quarantined_count() == 0 &&
           std::chrono::steady_clock::now() < give_up) {
      std::this_thread::yield();
    }
    cancel.store(true);
    // The token is set; let the recovering worker proceed into the retry,
    // whose first checkpoint observes the cancellation.
    util::FaultInjector::Global().ReleaseRecoveryBarrier();
  });

  core::BatchQuery victim{&q_bad, {a, b}};
  victim.cancel = &cancel;
  std::vector<core::BatchQuery> batch = {
      victim, {&q_good, {c, d}}, {&q_good, {c, d}}};
  core::BatchOptions options;
  options.threads = 2;
  std::vector<RunResult> results = engine.ExecuteBatch(batch, options);
  canceller.join();

  ASSERT_EQ(results.size(), 3u);
  EXPECT_FALSE(results[0].ok);
  EXPECT_TRUE(results[0].cancelled) << results[0].error;
  // The quarantine had already happened when the token flipped.
  EXPECT_GE(engine.catalog()->quarantined_count(), 1u);
  ASSERT_FALSE(results[0].quarantined_views.empty());
  EXPECT_EQ(results[0].quarantined_views[0], "//b");
  // No pins survive the abort and the worker spill spools are gone.
  EXPECT_EQ(engine.catalog()->pool()->pinned_frames(), 0u);
  EXPECT_FALSE(std::filesystem::exists(path + ".spill.0"));
  EXPECT_FALSE(std::filesystem::exists(path + ".spill.1"));
  // Siblings were untouched by both the fault and the cancellation.
  for (size_t i = 1; i < 3; ++i) {
    ASSERT_TRUE(results[i].ok) << "sibling " << i << ": " << results[i].error;
    EXPECT_FALSE(results[i].cancelled);
    EXPECT_FALSE(results[i].degraded) << "sibling " << i << " contaminated";
    EXPECT_EQ(results[i].match_count, good_expected);
  }
  // The rebuilt replacement serves the cancelled query cleanly afterwards.
  RunResult after = engine.Execute(q_bad, {a, b});
  ASSERT_TRUE(after.ok) << after.error;
  EXPECT_FALSE(after.degraded);
  EXPECT_EQ(after.match_count, tpq::NaiveEvaluator(doc, q_bad).Count());
}

TEST(SingleNodeQueryTest, DegenerateQueriesWork) {
  xml::Document doc = MakeDoc("a(b b(b))");
  Engine engine(&doc, TempPath("single.db"));
  TreePattern query = MustParse("//b");
  std::vector<const MaterializedView*> views = {
      engine.AddView("//b", Scheme::kLinkedElement)};
  for (Algorithm algorithm : {Algorithm::kTwigStack, Algorithm::kViewJoin}) {
    RunOptions run;
    run.algorithm = algorithm;
    RunResult r = engine.Execute(query, views, run);
    ASSERT_TRUE(r.ok) << r.error;
    EXPECT_EQ(r.match_count, 3u);
  }
}

}  // namespace
}  // namespace viewjoin
