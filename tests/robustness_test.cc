// Robustness and failure-injection tests: parser fuzzing, pathological pool
// sizes, empty/missing inputs, cache behaviour, and resolver monotonicity.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "algo/monotone_resolver.h"
#include "core/engine.h"
#include "storage/materialized_view.h"
#include "tests/test_util.h"
#include "tpq/evaluator.h"
#include "util/rng.h"
#include "xml/parser.h"
#include "xml/writer.h"

namespace viewjoin {
namespace {

using core::Algorithm;
using core::Engine;
using core::EngineOptions;
using core::RunOptions;
using core::RunResult;
using storage::MaterializedView;
using storage::Scheme;
using testing::MakeDoc;
using testing::MustParse;
using tpq::TreePattern;

std::string TempPath(const std::string& name) {
  return std::string(::testing::TempDir()) + name;
}

TEST(MonotoneResolverTest, ResolvesAscendingStreams) {
  xml::Document doc = MakeDoc("a(b(c) b(c c) b)");
  xml::TagId b = doc.FindTag("b");
  xml::TagId c = doc.FindTag("c");
  algo::MonotoneResolver resolver(&doc, {b, c});
  for (xml::NodeId n : doc.NodesOfTag(b)) {
    EXPECT_EQ(resolver.Resolve(0, doc.NodeLabel(n).start), n);
  }
  for (xml::NodeId n : doc.NodesOfTag(c)) {
    EXPECT_EQ(resolver.Resolve(1, doc.NodeLabel(n).start), n);
  }
  // Unknown start past the end resolves to invalid.
  EXPECT_EQ(resolver.Resolve(0, 100000u), xml::kInvalidNode);
}

TEST(MonotoneResolverTest, RepeatedStartsAreStable) {
  xml::Document doc = MakeDoc("a(b b)");
  xml::TagId b = doc.FindTag("b");
  algo::MonotoneResolver resolver(&doc, {b});
  xml::NodeId first = doc.NodesOfTag(b)[0];
  uint32_t start = doc.NodeLabel(first).start;
  EXPECT_EQ(resolver.Resolve(0, start), first);
  EXPECT_EQ(resolver.Resolve(0, start), first);  // same start: no advance
}

TEST(ParserFuzzTest, MutatedDocumentsNeverCrash) {
  util::Rng rng(77);
  xml::Document doc = testing::RandomDoc(&rng, 60, {"a", "bb", "c"});
  std::string base = xml::WriteDocument(doc);
  for (int trial = 0; trial < 500; ++trial) {
    std::string mutated = base;
    int edits = 1 + static_cast<int>(rng.Uniform(4));
    for (int e = 0; e < edits; ++e) {
      size_t pos = rng.Uniform(mutated.size());
      switch (rng.Uniform(3)) {
        case 0:
          mutated[pos] = static_cast<char>(rng.Uniform(128));
          break;
        case 1:
          mutated.erase(pos, 1 + rng.Uniform(3));
          break;
        default:
          mutated.insert(pos, 1, "<>/ab\""[rng.Uniform(6)]);
          break;
      }
      if (mutated.empty()) mutated = "<a/>";
    }
    // Must either parse to a complete document or fail cleanly.
    xml::ParseResult result = xml::ParseDocument(mutated);
    if (result.ok()) {
      EXPECT_TRUE(result.document->IsComplete());
    } else {
      EXPECT_FALSE(result.error.empty());
    }
  }
}

TEST(ParserFuzzTest, RandomGarbageNeverCrashes) {
  util::Rng rng(99);
  for (int trial = 0; trial < 300; ++trial) {
    std::string garbage;
    size_t len = rng.Uniform(200);
    for (size_t i = 0; i < len; ++i) {
      garbage.push_back("<>/= \"'abc![]-?x"[rng.Uniform(16)]);
    }
    xml::ParseResult result = xml::ParseDocument(garbage);
    if (result.ok()) {
      EXPECT_TRUE(result.document->IsComplete());
    }
  }
}

TEST(PoolPressureTest, CapacityOneStillAnswersCorrectly) {
  util::Rng rng(5);
  xml::Document doc = testing::RandomDoc(&rng, 400, {"a", "b", "c", "d"});
  TreePattern query = MustParse("//a//b[//c]//d");
  uint64_t expected = tpq::NaiveEvaluator(doc, query).Count();
  EngineOptions options;
  options.pool_pages = 1;  // every page access is a miss after the first
  Engine engine(&doc, TempPath("pool1.db"), options);
  std::vector<const MaterializedView*> views = {
      engine.AddView("//a//b", Scheme::kLinkedElement),
      engine.AddView("//c", Scheme::kLinkedElement),
      engine.AddView("//d", Scheme::kLinkedElement),
  };
  RunResult r = engine.Execute(query, views);
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_EQ(r.match_count, expected);
  EXPECT_GT(r.io.pool_misses, 0u);
}

TEST(CacheBehaviourTest, WarmRunsReadFewerPages) {
  xml::Document doc = MakeDoc("r(a(b(c) b) a(b(c c)))");
  Engine engine(&doc, TempPath("warm.db"));
  std::vector<const MaterializedView*> views = {
      engine.AddView("//a//b", Scheme::kLinkedElement),
      engine.AddView("//c", Scheme::kLinkedElement),
  };
  TreePattern query = MustParse("//a//b//c");
  RunOptions cold;
  cold.cold_cache = true;
  RunResult first = engine.Execute(query, views, cold);
  ASSERT_TRUE(first.ok);
  RunOptions warm;
  warm.cold_cache = false;
  RunResult second = engine.Execute(query, views, warm);
  ASSERT_TRUE(second.ok);
  EXPECT_EQ(first.match_count, second.match_count);
  EXPECT_LT(second.io.pages_read, first.io.pages_read + 1);
}

TEST(MissingTagTest, AllAlgorithmsReturnEmpty) {
  xml::Document doc = MakeDoc("r(a(b))");
  Engine engine(&doc, TempPath("missing.db"));
  TreePattern query = MustParse("//a//zzz");
  std::vector<const MaterializedView*> views = {
      engine.AddView("//a", Scheme::kLinkedElement),
      engine.AddView("//zzz", Scheme::kLinkedElement),
  };
  for (Algorithm algorithm : {Algorithm::kTwigStack, Algorithm::kViewJoin}) {
    RunOptions run;
    run.algorithm = algorithm;
    RunResult r = engine.Execute(query, views, run);
    ASSERT_TRUE(r.ok) << r.error;
    EXPECT_EQ(r.match_count, 0u);
  }
  std::vector<const MaterializedView*> tuples = {
      engine.AddView("//a", Scheme::kTuple),
      engine.AddView("//zzz", Scheme::kTuple),
  };
  RunOptions ij;
  ij.algorithm = Algorithm::kInterJoin;
  RunResult r = engine.Execute(query, tuples, ij);
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_EQ(r.match_count, 0u);
}

TEST(EmptyResultViewTest, StoringAnEmptyAnswerWorks) {
  xml::Document doc = MakeDoc("r(a(b) c)");
  Engine engine(&doc, TempPath("emptyview.db"));
  TreePattern query = MustParse("//c//a");  // a never under c
  std::vector<const MaterializedView*> views = {
      engine.AddView("//c", Scheme::kLinkedElement),
      engine.AddView("//a", Scheme::kLinkedElement),
  };
  const MaterializedView* stored = nullptr;
  RunResult r =
      engine.ExecuteToView(query, views, Scheme::kLinkedElement, &stored);
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_EQ(r.match_count, 0u);
  ASSERT_NE(stored, nullptr);
  EXPECT_EQ(stored->ListLength(0), 0u);
  EXPECT_EQ(stored->ListLength(1), 0u);
}

TEST(DiskModeTest, SmallFlushesAgreeWithMemoryOnManyGroups) {
  // Many independent root groups: disk mode flushes repeatedly once the
  // spill threshold is crossed; the final answers must agree regardless.
  xml::Document doc;
  doc.StartElement("r");
  for (int i = 0; i < 5000; ++i) {
    doc.StartElement("a");
    doc.StartElement("b");
    doc.StartElement("c");
    doc.EndElement();
    doc.EndElement();
    doc.EndElement();
  }
  doc.EndElement();
  Engine engine(&doc, TempPath("diskgroups.db"));
  TreePattern query = MustParse("//a//b//c");
  std::vector<const MaterializedView*> views = {
      engine.AddView("//a//b", Scheme::kLinkedElement),
      engine.AddView("//c", Scheme::kLinkedElement),
  };
  RunOptions mem;
  mem.output_mode = algo::OutputMode::kMemory;
  RunOptions disk;
  disk.output_mode = algo::OutputMode::kDisk;
  RunResult m = engine.Execute(query, views, mem);
  RunResult d = engine.Execute(query, views, disk);
  ASSERT_TRUE(m.ok && d.ok);
  EXPECT_EQ(m.match_count, 5000u);
  EXPECT_EQ(m.result_hash, d.result_hash);
  EXPECT_GT(d.stats.flushes, 1u);          // threshold-triggered group flushes
  EXPECT_GT(d.stats.spill_pages_written, 0u);
  EXPECT_LT(d.stats.peak_buffered, m.stats.peak_buffered);
}

TEST(SingleNodeQueryTest, DegenerateQueriesWork) {
  xml::Document doc = MakeDoc("a(b b(b))");
  Engine engine(&doc, TempPath("single.db"));
  TreePattern query = MustParse("//b");
  std::vector<const MaterializedView*> views = {
      engine.AddView("//b", Scheme::kLinkedElement)};
  for (Algorithm algorithm : {Algorithm::kTwigStack, Algorithm::kViewJoin}) {
    RunOptions run;
    run.algorithm = algorithm;
    RunResult r = engine.Execute(query, views, run);
    ASSERT_TRUE(r.ok) << r.error;
    EXPECT_EQ(r.match_count, 3u);
  }
}

}  // namespace
}  // namespace viewjoin
