// Validates the benchmark workload definitions against the paper's
// specifications: query shapes, the Table III interleaving counts, view-set
// well-formedness (covering, disjoint, subpatterns), and non-empty results
// on the shipped generators.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "algo/query_binding.h"
#include "bench/workloads.h"
#include "core/segmented_query.h"
#include "data/nasa_generator.h"
#include "data/xmark_generator.h"
#include "storage/materialized_view.h"
#include "tests/test_util.h"
#include "tpq/evaluator.h"
#include "tpq/subpattern.h"

namespace viewjoin {
namespace {

using bench::InterleavingWorkload;
using bench::PairViews;
using bench::QuerySpec;
using bench::SplitViews;
using testing::MustParse;
using tpq::TreePattern;

std::string TempPath(const char* name) {
  return std::string(::testing::TempDir()) + name;
}

TEST(WorkloadsTest, FourteenXmarkQueriesWithPaperSplit) {
  std::vector<QuerySpec> all = bench::XmarkQueries();
  EXPECT_EQ(all.size(), 14u);
  EXPECT_EQ(bench::XmarkPathQueries().size(), 6u);  // paper: 6 path queries
  EXPECT_EQ(bench::XmarkTwigQueries().size(), 8u);  // paper: 8 twig queries
  for (const QuerySpec& spec : all) {
    TreePattern q = MustParse(spec.xpath);
    EXPECT_EQ(q.IsPath(), spec.is_path) << spec.name;
    EXPECT_TRUE(q.HasUniqueTags()) << spec.name;
    EXPECT_GE(q.size(), 3u) << spec.name;
  }
}

TEST(WorkloadsTest, NasaQueriesAreThePapersN1toN8) {
  std::vector<QuerySpec> all = bench::NasaQueries();
  ASSERT_EQ(all.size(), 8u);
  EXPECT_EQ(all[0].xpath, "//field//footnote//para");
  EXPECT_EQ(all[2].xpath, "//revision/creator/lastname");
  EXPECT_EQ(bench::NasaPathQueries().size(), 4u);
  EXPECT_EQ(bench::NasaTwigQueries().size(), 4u);
}

TEST(WorkloadsTest, QueriesHaveMatchesOnGenerators) {
  xml::Document xmark = data::GenerateXmark({.scale = 0.3, .seed = 42});
  for (const QuerySpec& spec : bench::XmarkQueries()) {
    TreePattern q = MustParse(spec.xpath);
    EXPECT_GT(tpq::NaiveEvaluator(xmark, q).Count(), 0u) << spec.name;
  }
  xml::Document nasa = data::GenerateNasa({.datasets = 120, .seed = 7});
  for (const QuerySpec& spec : bench::NasaQueries()) {
    TreePattern q = MustParse(spec.xpath);
    EXPECT_GT(tpq::NaiveEvaluator(nasa, q).Count(), 0u) << spec.name;
  }
}

TEST(WorkloadsTest, SplitViewsAreLegalCoveringSets) {
  for (const QuerySpec& spec : bench::XmarkQueries()) {
    TreePattern q = MustParse(spec.xpath);
    for (int pieces : {1, 2, 3}) {
      std::vector<TreePattern> views = SplitViews(q, pieces);
      tpq::CoveringInfo info = tpq::AnalyzeCovering(q, views);
      EXPECT_TRUE(info.covers) << spec.name << " pieces=" << pieces;
      EXPECT_FALSE(info.overlapping) << spec.name << " pieces=" << pieces;
      for (const TreePattern& v : views) {
        EXPECT_TRUE(IsSubpattern(v, q)) << spec.name << " " << v.ToString();
      }
    }
  }
}

TEST(WorkloadsTest, PairViewsOfPathQueriesArePathViews) {
  for (const QuerySpec& spec : bench::XmarkPathQueries()) {
    TreePattern q = MustParse(spec.xpath);
    for (const TreePattern& v : PairViews(q)) {
      EXPECT_TRUE(v.IsPath()) << spec.name << " " << v.ToString();
    }
  }
}

TEST(WorkloadsTest, SplitIntoOnePieceIsTheQueryItself) {
  TreePattern q = MustParse("//a//b[//c]//d");
  std::vector<TreePattern> views = SplitViews(q, 1);
  ASSERT_EQ(views.size(), 1u);
  EXPECT_EQ(views[0].ToString(), q.ToString());
}

TEST(WorkloadsTest, TableIIIInterleavingCountsHold) {
  xml::Document nasa = data::GenerateNasa({.datasets = 60, .seed = 7});
  storage::ViewCatalog catalog(TempPath("workloads_t3.db"), 64);
  auto verify = [&](const InterleavingWorkload& w) {
    TreePattern q = MustParse(w.query);
    std::vector<const storage::MaterializedView*> views;
    for (const std::string& v : w.views) {
      views.push_back(
          catalog.Materialize(nasa, MustParse(v), storage::Scheme::kElement));
    }
    auto binding = algo::QueryBinding::Bind(nasa, q, views);
    ASSERT_TRUE(binding.has_value()) << w.name;
    core::SegmentedQuery sq = core::BuildSegmentedQuery(*binding);
    EXPECT_EQ(sq.inter_view_edges, w.expected_conditions) << w.name;
  };
  for (const InterleavingWorkload& w : bench::PathInterleavingWorkloads()) {
    verify(w);
  }
  for (const InterleavingWorkload& w : bench::TwigInterleavingWorkloads()) {
    verify(w);
  }
}

TEST(WorkloadsTest, Table2CandidatesAreSubpatternsOfTheTable2Query) {
  TreePattern q = MustParse(bench::Table2Query());
  for (const std::string& v : bench::Table2CandidateViews()) {
    EXPECT_TRUE(IsSubpattern(MustParse(v), q)) << v;
  }
}

TEST(WorkloadsTest, EnvScaleParsesAndFallsBack) {
  ::setenv("VIEWJOIN_TEST_SCALE", "2.5", 1);
  EXPECT_DOUBLE_EQ(bench::EnvScale("VIEWJOIN_TEST_SCALE", 1.0), 2.5);
  ::setenv("VIEWJOIN_TEST_SCALE", "garbage", 1);
  EXPECT_DOUBLE_EQ(bench::EnvScale("VIEWJOIN_TEST_SCALE", 1.0), 1.0);
  ::setenv("VIEWJOIN_TEST_SCALE", "-3", 1);
  EXPECT_DOUBLE_EQ(bench::EnvScale("VIEWJOIN_TEST_SCALE", 1.0), 1.0);
  ::unsetenv("VIEWJOIN_TEST_SCALE");
  EXPECT_DOUBLE_EQ(bench::EnvScale("VIEWJOIN_TEST_SCALE", 1.0), 1.0);
}

}  // namespace
}  // namespace viewjoin
