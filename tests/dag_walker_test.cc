// DagWalker tests: the linked-element DAG must regenerate exactly the view's
// match set (= the tuple scheme's content = the oracle's embeddings), on
// crafted shapes and randomized documents/patterns.

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "storage/dag_walker.h"
#include "storage/materialized_view.h"
#include "tests/test_util.h"
#include "tpq/evaluator.h"
#include "util/rng.h"

namespace viewjoin {
namespace {

using storage::DagWalker;
using storage::MaterializedView;
using storage::Scheme;
using storage::ViewCatalog;
using testing::MakeDoc;
using testing::MustParse;
using tpq::Match;
using tpq::TreePattern;
using xml::Label;

std::string TempPath(const std::string& name) {
  return std::string(::testing::TempDir()) + name;
}

/// Collects walker matches as start-label tuples for comparison.
std::vector<std::vector<uint32_t>> WalkStarts(const MaterializedView* view,
                                              storage::BufferPool* pool) {
  std::vector<std::vector<uint32_t>> out;
  DagWalker walker(view, pool);
  walker.Walk([&](const std::vector<Label>& match) {
    std::vector<uint32_t> starts;
    starts.reserve(match.size());
    for (const Label& l : match) starts.push_back(l.start);
    out.push_back(std::move(starts));
  });
  return out;
}

std::vector<std::vector<uint32_t>> OracleStarts(const xml::Document& doc,
                                                const TreePattern& pattern) {
  std::vector<Match> matches = tpq::NaiveEvaluator(doc, pattern).Collect();
  tpq::SortMatches(&matches);
  std::vector<std::vector<uint32_t>> out;
  for (const Match& m : matches) {
    std::vector<uint32_t> starts;
    for (xml::NodeId n : m) starts.push_back(doc.NodeLabel(n).start);
    out.push_back(std::move(starts));
  }
  return out;
}

TEST(DagWalkerTest, ReconstructsTupleContentOnNestedDoc) {
  xml::Document doc = MakeDoc("r(a(b(c) a(b(c c)) b) a(x(b(c))) b(c))");
  ViewCatalog catalog(TempPath("dag1.db"), 64);
  for (const char* pattern : {"//a//b", "//a//b//c", "//a[//b]//c", "//b/c"}) {
    TreePattern p = MustParse(pattern);
    const MaterializedView* le =
        catalog.Materialize(doc, p, Scheme::kLinkedElement);
    const MaterializedView* tuple = catalog.Materialize(doc, p, Scheme::kTuple);
    std::vector<std::vector<uint32_t>> walked =
        WalkStarts(le, catalog.pool());
    EXPECT_EQ(walked.size(), tuple->MatchCount()) << pattern;
    std::sort(walked.begin(), walked.end());
    EXPECT_EQ(walked, OracleStarts(doc, p)) << pattern;
  }
}

TEST(DagWalkerTest, EmitsInDocumentOrderOfTheRoot) {
  xml::Document doc = MakeDoc("r(a(b b) a(b))");
  ViewCatalog catalog(TempPath("dag2.db"), 64);
  const MaterializedView* view =
      catalog.Materialize(doc, MustParse("//a//b"), Scheme::kLinkedElement);
  std::vector<std::vector<uint32_t>> walked = WalkStarts(view, catalog.pool());
  // Sorted by (root start, child start) — the tuple scheme's composite key.
  EXPECT_TRUE(std::is_sorted(walked.begin(), walked.end()));
}

TEST(DagWalkerTest, PartialSchemeWalksIdentically) {
  xml::Document doc = MakeDoc("r(a(b(c) a(b(c))) b)");
  ViewCatalog catalog(TempPath("dag3.db"), 64);
  TreePattern p = MustParse("//a//b//c");
  const MaterializedView* le =
      catalog.Materialize(doc, p, Scheme::kLinkedElement);
  const MaterializedView* lep =
      catalog.Materialize(doc, p, Scheme::kLinkedElementPartial);
  std::vector<std::vector<uint32_t>> a = WalkStarts(le, catalog.pool());
  std::vector<std::vector<uint32_t>> b = WalkStarts(lep, catalog.pool());
  EXPECT_EQ(a, b);
}

TEST(DagWalkerTest, EmptyViewWalksToNothing) {
  xml::Document doc = MakeDoc("a(b)");
  ViewCatalog catalog(TempPath("dag4.db"), 16);
  const MaterializedView* view =
      catalog.Materialize(doc, MustParse("//a//zzz"), Scheme::kLinkedElement);
  DagWalker walker(view, catalog.pool());
  EXPECT_EQ(walker.CountMatches(), 0u);
}

class DagWalkerPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(DagWalkerPropertyTest, MatchesOracleOnRandomInputs) {
  uint64_t seed = 7000 + static_cast<uint64_t>(GetParam());
  util::Rng rng(seed);
  std::vector<std::string> tags = {"a", "b", "c", "d", "e"};
  xml::Document doc = testing::RandomDoc(&rng, 120, tags);
  TreePattern pattern = testing::RandomQuery(
      &rng, 1 + static_cast<int>(rng.Uniform(4)), tags);
  ViewCatalog catalog(TempPath("dagp_" + std::to_string(seed) + ".db"), 8);
  const MaterializedView* view =
      catalog.Materialize(doc, pattern, Scheme::kLinkedElement);
  std::vector<std::vector<uint32_t>> walked = WalkStarts(view, catalog.pool());
  std::sort(walked.begin(), walked.end());
  EXPECT_EQ(walked, OracleStarts(doc, pattern)) << pattern.ToString();
}

INSTANTIATE_TEST_SUITE_P(Seeds, DagWalkerPropertyTest, ::testing::Range(0, 80));

}  // namespace
}  // namespace viewjoin
