#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "data/nasa_generator.h"
#include "data/xmark_generator.h"
#include "tpq/evaluator.h"
#include "tests/test_util.h"
#include "xml/parser.h"
#include "xml/writer.h"

namespace viewjoin {
namespace {

using data::GenerateNasa;
using data::GenerateXmark;
using data::NasaOptions;
using data::XmarkOptions;
using testing::MustParse;
using xml::Document;

TEST(XmarkGeneratorTest, ProducesCompleteDocument) {
  Document doc = GenerateXmark({.scale = 0.1, .seed = 1});
  EXPECT_TRUE(doc.IsComplete());
  EXPECT_GT(doc.NodeCount(), 1000u);
  EXPECT_EQ(doc.TagName(doc.NodeTag(doc.Root())), "site");
}

TEST(XmarkGeneratorTest, HasBenchmarkVocabulary) {
  Document doc = GenerateXmark({.scale = 0.1, .seed = 1});
  for (const char* tag :
       {"site", "regions", "item", "description", "text", "keyword", "bold",
        "emph", "parlist", "listitem", "people", "person", "profile",
        "education", "open_auction", "bidder", "closed_auction", "annotation",
        "mailbox", "mail", "category", "incategory", "itemref", "personref"}) {
    EXPECT_NE(doc.FindTag(tag), xml::kInvalidTag) << tag;
    EXPECT_FALSE(doc.NodesOfTag(doc.FindTag(tag)).empty()) << tag;
  }
}

TEST(XmarkGeneratorTest, ScalesLinearlyAndDeterministically) {
  Document small = GenerateXmark({.scale = 0.1, .seed = 9});
  Document again = GenerateXmark({.scale = 0.1, .seed = 9});
  Document large = GenerateXmark({.scale = 0.4, .seed = 9});
  EXPECT_EQ(small.NodeCount(), again.NodeCount());
  double ratio = static_cast<double>(large.NodeCount()) /
                 static_cast<double>(small.NodeCount());
  EXPECT_GT(ratio, 2.5);
  EXPECT_LT(ratio, 6.0);
}

TEST(XmarkGeneratorTest, RecurringViewNodesExist) {
  // //item//text//keyword must have keywords with nested text ancestry
  // possibilities, i.e. more (item,text,keyword) matches than keywords in
  // some documents — the paper's v1 redundancy. At minimum, matches exist.
  Document doc = GenerateXmark({.scale = 0.2, .seed = 3});
  tpq::NaiveEvaluator eval(doc, MustParse("//item//text//keyword"));
  EXPECT_GT(eval.Count(), 0u);
  tpq::NaiveEvaluator eval2(doc, MustParse("//person//education"));
  EXPECT_GT(eval2.Count(), 0u);
}

TEST(NasaGeneratorTest, ProducesCompleteDocument) {
  Document doc = GenerateNasa({.datasets = 50, .skew = 1.2, .seed = 2});
  EXPECT_TRUE(doc.IsComplete());
  EXPECT_EQ(doc.TagName(doc.NodeTag(doc.Root())), "datasets");
  EXPECT_GT(doc.NodeCount(), 500u);
}

TEST(NasaGeneratorTest, SupportsAllPaperQueries) {
  Document doc = GenerateNasa({.datasets = 150, .skew = 1.2, .seed = 2});
  const char* queries[] = {
      // N1-N8 from the paper (Section VI).
      "//field//footnote//para",
      "//dataset//definition//footnote",
      "//revision/creator/lastname",
      "//reference//journal//date//year",
      "//dataset[//definition/footnote]//history//revision//para",
      "//journal[//suffix][title]/date/year",
      "//dataset[//field//footnote]//journal[//bibcode]//lastname",
      "//descriptions[//observatory]/description//para",
      // Np and Nt from Section VI-B.
      "//dataset//tableHead//field//definition//footnote//para",
      "//dataset//tableHead[//tableLink//title]//field//definition//para",
  };
  for (const char* q : queries) {
    tpq::NaiveEvaluator eval(doc, MustParse(q));
    EXPECT_GT(eval.Count(), 0u) << q;
  }
}

TEST(NasaGeneratorTest, SkewProducesRecurringDefinitions) {
  // Nested definitions make //dataset//definition tuples redundant: some
  // definition node must occur in more than one (dataset,definition) match
  // or some para in multiple (definition,para) matches.
  Document doc = GenerateNasa({.datasets = 150, .skew = 1.2, .seed = 2});
  tpq::TreePattern v = MustParse("//field//definition//para");
  tpq::NaiveEvaluator eval(doc, v);
  uint64_t matches = eval.Count();
  std::vector<std::vector<xml::NodeId>> lists = eval.SolutionNodes();
  EXPECT_GT(matches, static_cast<uint64_t>(lists[2].size()))
      << "paras should occur in multiple matches under nested definitions";
}

TEST(NasaGeneratorTest, Deterministic) {
  Document a = GenerateNasa({.datasets = 30, .skew = 1.0, .seed = 5});
  Document b = GenerateNasa({.datasets = 30, .skew = 1.0, .seed = 5});
  ASSERT_EQ(a.NodeCount(), b.NodeCount());
  for (xml::NodeId n = 0; n < a.NodeCount(); ++n) {
    EXPECT_EQ(a.NodeLabel(n), b.NodeLabel(n));
  }
}

TEST(GeneratorTest, SerializesToParsableXml) {
  Document doc = GenerateNasa({.datasets = 10, .skew = 1.0, .seed = 4});
  xml::WriterOptions options;
  options.synthetic_text = true;
  auto reparsed = xml::ParseDocument(xml::WriteDocument(doc, options));
  ASSERT_TRUE(reparsed.ok()) << reparsed.error;
  EXPECT_EQ(reparsed.document->NodeCount(), doc.NodeCount());
}

}  // namespace
}  // namespace viewjoin
