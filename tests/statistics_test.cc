// Document statistics and cardinality estimation tests: exactness where the
// estimator is exact, calibration bounds elsewhere, and the
// estimate-driven view selection path.

#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <vector>

#include "data/nasa_generator.h"
#include "tests/test_util.h"
#include "tpq/evaluator.h"
#include "util/rng.h"
#include "view/cardinality.h"
#include "view/selection.h"
#include "xml/statistics.h"

namespace viewjoin {
namespace {

using testing::MakeDoc;
using testing::MustParse;
using tpq::TreePattern;
using view::EstimateListLengths;
using view::EstimateMatchCount;
using xml::DocumentStatistics;

TEST(StatisticsTest, CountsAndDepths) {
  xml::Document doc = MakeDoc("a(b(c) b d(b(c)))");
  DocumentStatistics stats = DocumentStatistics::Collect(doc);
  EXPECT_EQ(stats.node_count(), 7u);
  EXPECT_EQ(stats.TagCount(doc.FindTag("a")), 1u);
  EXPECT_EQ(stats.TagCount(doc.FindTag("b")), 3u);
  EXPECT_EQ(stats.TagCount(doc.FindTag("c")), 2u);
  EXPECT_EQ(stats.max_depth(), 4u);  // a=1, d=2, b=3, c=4
  EXPECT_EQ(stats.TagCount(xml::kInvalidTag), 0u);
}

TEST(StatisticsTest, PairCountsMatchOracle) {
  xml::Document doc = MakeDoc("a(b(c b(c)) b a(b))");
  DocumentStatistics stats = DocumentStatistics::Collect(doc);
  xml::TagId a = doc.FindTag("a");
  xml::TagId b = doc.FindTag("b");
  xml::TagId c = doc.FindTag("c");
  // ad pair count == matches of //x//y.
  EXPECT_EQ(stats.AdPairCount(a, b),
            tpq::NaiveEvaluator(doc, MustParse("//a//b")).Count());
  EXPECT_EQ(stats.AdPairCount(b, c),
            tpq::NaiveEvaluator(doc, MustParse("//b//c")).Count());
  EXPECT_EQ(stats.AdPairCount(b, b),
            tpq::NaiveEvaluator(doc, MustParse("//b//b")).Count());
  // pc pair count == matches of //x/y.
  EXPECT_EQ(stats.PcPairCount(a, b),
            tpq::NaiveEvaluator(doc, MustParse("//a/b")).Count());
  EXPECT_EQ(stats.PcPairCount(b, c),
            tpq::NaiveEvaluator(doc, MustParse("//b/c")).Count());
  EXPECT_EQ(stats.PcPairCount(c, a), 0u);
}

TEST(StatisticsTest, PairCountsMatchOracleOnRandomDocs) {
  util::Rng rng(321);
  std::vector<std::string> tags = {"a", "b", "c"};
  for (int trial = 0; trial < 20; ++trial) {
    xml::Document doc = testing::RandomDoc(&rng, 80, tags);
    DocumentStatistics stats = DocumentStatistics::Collect(doc);
    for (const std::string& s : tags) {
      for (const std::string& t : tags) {
        if (s == t) continue;  // queries need distinct tags
        TreePattern ad = MustParse("//" + s + "//" + t);
        TreePattern pc = MustParse("//" + s + "/" + t);
        EXPECT_EQ(stats.AdPairCount(doc.FindTag(s), doc.FindTag(t)),
                  tpq::NaiveEvaluator(doc, ad).Count())
            << ad.ToString();
        EXPECT_EQ(stats.PcPairCount(doc.FindTag(s), doc.FindTag(t)),
                  tpq::NaiveEvaluator(doc, pc).Count())
            << pc.ToString();
      }
    }
  }
}

TEST(CardinalityTest, ExactForSingleNodePatterns) {
  xml::Document doc = MakeDoc("a(b(c) b d(b))");
  DocumentStatistics stats = DocumentStatistics::Collect(doc);
  std::vector<double> est =
      EstimateListLengths(stats, doc, MustParse("//b"));
  ASSERT_EQ(est.size(), 1u);
  EXPECT_DOUBLE_EQ(est[0], 3.0);
}

TEST(CardinalityTest, ExactDescendantSideOfTwoNodePatterns) {
  xml::Document doc = MakeDoc("r(a(b(c) b a(b(c))) c)");
  DocumentStatistics stats = DocumentStatistics::Collect(doc);
  TreePattern q = MustParse("//b//c");
  std::vector<double> est = EstimateListLengths(stats, doc, q);
  // The descendant node's estimate uses the exact distinct-pair count.
  tpq::NaiveEvaluator oracle(doc, q);
  std::vector<std::vector<xml::NodeId>> lists = oracle.SolutionNodes();
  EXPECT_DOUBLE_EQ(est[1], static_cast<double>(lists[1].size()));
}

TEST(CardinalityTest, EstimatesWithinFactorOnGenerators) {
  xml::Document doc = data::GenerateNasa({.datasets = 60, .seed = 9});
  DocumentStatistics stats = DocumentStatistics::Collect(doc);
  // Path patterns on the generator: estimates should land within ~4x of the
  // truth (independence assumption; generator correlations are mild).
  for (const char* xpath :
       {"//dataset//definition", "//field//para", "//tableLink//title",
        "//reference//journal//date"}) {
    TreePattern q = MustParse(xpath);
    std::vector<double> est = EstimateListLengths(stats, doc, q);
    tpq::NaiveEvaluator oracle(doc, q);
    std::vector<std::vector<xml::NodeId>> lists = oracle.SolutionNodes();
    for (size_t i = 0; i < q.size(); ++i) {
      double truth = static_cast<double>(lists[i].size());
      if (truth < 8) continue;  // tiny lists: absolute error dominates
      EXPECT_GT(est[i], truth / 4.0) << xpath << " node " << i;
      EXPECT_LT(est[i], truth * 4.0) << xpath << " node " << i;
    }
  }
}

TEST(CardinalityTest, MatchCountExactForAdPairs) {
  xml::Document doc = MakeDoc("a(b b(b) c(b))");
  DocumentStatistics stats = DocumentStatistics::Collect(doc);
  TreePattern q = MustParse("//a//b");
  EXPECT_DOUBLE_EQ(EstimateMatchCount(stats, doc, q),
                   static_cast<double>(tpq::NaiveEvaluator(doc, q).Count()));
}

TEST(SelectionWithEstimatesTest, PicksTheSameSetOnTable2Workload) {
  xml::Document doc = data::GenerateNasa({.datasets = 200, .seed = 7});
  DocumentStatistics stats = DocumentStatistics::Collect(doc);
  TreePattern query = MustParse(
      "//dataset//tableHead[//tableLink//title]//field//definition//para");
  std::vector<TreePattern> candidates;
  for (const char* v :
       {"//dataset//definition", "//dataset//tableHead", "//field//para",
        "//definition", "//tableLink//title", "//field//definition//para"}) {
    candidates.push_back(MustParse(v));
  }
  view::SelectionOptions exact;
  view::SelectionResult exact_pick =
      view::SelectViews(doc, query, candidates, exact);
  view::SelectionOptions estimated;
  estimated.statistics = &stats;
  view::SelectionResult est_pick =
      view::SelectViews(doc, query, candidates, estimated);
  ASSERT_TRUE(exact_pick.covers);
  ASSERT_TRUE(est_pick.covers);
  // The estimator must preserve the decision, not the exact numbers.
  EXPECT_EQ(est_pick.selected, exact_pick.selected);
}

}  // namespace
}  // namespace viewjoin
