// Unit tests for the util layer: table printer, deterministic RNG, timers,
// and the CHECK macros' failure behaviour.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <string>
#include <vector>

#include "util/backoff.h"
#include "util/check.h"
#include "util/env.h"
#include "util/crc32.h"
#include "util/fault_injection.h"
#include "util/rng.h"
#include "util/status.h"
#include "util/table_printer.h"
#include "util/timer.h"

namespace viewjoin {
namespace {

TEST(TablePrinterTest, AlignsColumnsToWidestCell) {
  util::TablePrinter table({"name", "value"});
  table.AddRow({"x", "1"});
  table.AddRow({"longer-name", "223344"});
  std::string out = table.ToString();
  // Header, separator, two rows.
  EXPECT_EQ(std::count(out.begin(), out.end(), '\n'), 4);
  EXPECT_NE(out.find("| name        | value  |"), std::string::npos);
  EXPECT_NE(out.find("| longer-name | 223344 |"), std::string::npos);
  EXPECT_NE(out.find("|-------------|--------|"), std::string::npos);
}

TEST(TablePrinterTest, RejectsRaggedRows) {
  util::TablePrinter table({"a", "b"});
  EXPECT_DEATH(table.AddRow({"only-one"}), "CHECK failed");
}

TEST(FormatTest, DoublesAndMegabytes) {
  EXPECT_EQ(util::FormatDouble(1.23456, 2), "1.23");
  EXPECT_EQ(util::FormatDouble(1.5, 0), "2");
  EXPECT_EQ(util::FormatMegabytes(3 * 1024 * 1024), "3.00 MB");
  EXPECT_EQ(util::FormatMegabytes(512 * 1024), "0.50 MB");
}

TEST(RngTest, DeterministicPerSeed) {
  util::Rng a(42);
  util::Rng b(42);
  util::Rng c(43);
  bool diverged = false;
  for (int i = 0; i < 100; ++i) {
    uint64_t va = a.Next();
    EXPECT_EQ(va, b.Next());
    if (va != c.Next()) diverged = true;
  }
  EXPECT_TRUE(diverged);
}

TEST(RngTest, UniformRangeIsInclusive) {
  util::Rng rng(7);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    int64_t v = rng.UniformRange(3, 5);
    EXPECT_GE(v, 3);
    EXPECT_LE(v, 5);
    saw_lo |= (v == 3);
    saw_hi |= (v == 5);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, BernoulliRoughlyCalibrated) {
  util::Rng rng(11);
  int hits = 0;
  for (int i = 0; i < 10000; ++i) hits += rng.Bernoulli(0.3);
  EXPECT_GT(hits, 2500);
  EXPECT_LT(hits, 3500);
}

TEST(RngTest, ZipfSkewsTowardLowRanks) {
  util::Rng rng(13);
  int low = 0;
  int high = 0;
  for (int i = 0; i < 5000; ++i) {
    uint64_t r = rng.Zipf(8, 1.2);
    EXPECT_LT(r, 8u);
    if (r == 0) ++low;
    if (r == 7) ++high;
  }
  EXPECT_GT(low, high * 2);
}

TEST(TimerTest, MeasuresElapsedTime) {
  util::Timer timer;
  volatile uint64_t sink = 0;
  while (timer.ElapsedMicros() < 1000) {
    for (int i = 0; i < 1000; ++i) sink = sink + static_cast<uint64_t>(i);
  }
  EXPECT_GE(timer.ElapsedMicros(), 1000);
  EXPECT_GT(timer.ElapsedMillis(), 0.9);
  timer.Reset();
  EXPECT_LT(timer.ElapsedMicros(), 1000);
}

TEST(AccumulatingTimerTest, SumsScopes) {
  util::AccumulatingTimer acc;
  for (int i = 0; i < 3; ++i) {
    util::AccumulatingTimer::Scope scope(&acc);
    util::Timer spin;
    while (spin.ElapsedMicros() < 200) {
    }
  }
  EXPECT_GE(acc.TotalMicros(), 600);
  acc.Reset();
  EXPECT_EQ(acc.TotalMicros(), 0);
}

TEST(CheckTest, PassingConditionIsSilent) {
  VJ_CHECK(1 + 1 == 2) << "never evaluated";
  VJ_CHECK_EQ(3, 3);
  VJ_CHECK_LT(1, 2);
  SUCCEED();
}

TEST(CheckTest, FailingConditionAbortsWithMessage) {
  EXPECT_DEATH(VJ_CHECK(false) << "context " << 42, "context 42");
  EXPECT_DEATH(VJ_CHECK_EQ(1, 2), "CHECK failed");
}

TEST(StatusTest, OkAndErrorStates) {
  util::Status ok = util::Status::Ok();
  EXPECT_TRUE(ok.ok());
  EXPECT_EQ(ok.code(), util::StatusCode::kOk);
  util::Status err = util::Status::Corruption("bad page");
  EXPECT_FALSE(err.ok());
  EXPECT_EQ(err.code(), util::StatusCode::kCorruption);
  EXPECT_EQ(err.message(), "bad page");
  EXPECT_NE(err.ToString().find("CORRUPTION"), std::string::npos);
  EXPECT_NE(err.ToString().find("bad page"), std::string::npos);
  EXPECT_EQ(util::Status::IoError("x").code(), util::StatusCode::kIoError);
  EXPECT_EQ(util::Status::NotFound("x").code(), util::StatusCode::kNotFound);
  EXPECT_EQ(util::Status::InvalidArgument("x").code(),
            util::StatusCode::kInvalidArgument);
}

TEST(StatusTest, StatusOrHoldsValueOrStatus) {
  util::StatusOr<int> value = 42;
  ASSERT_TRUE(value.ok());
  EXPECT_EQ(*value, 42);
  util::StatusOr<int> err = util::Status::IoError("disk gone");
  ASSERT_FALSE(err.ok());
  EXPECT_EQ(err.status().code(), util::StatusCode::kIoError);
  EXPECT_DEATH({ int v = *err; (void)v; }, "");
}

TEST(Crc32Test, KnownVectorsAndSensitivity) {
  // The standard CRC-32 ("check" value of the catalogue entry).
  EXPECT_EQ(util::Crc32("123456789", 9), 0xCBF43926u);
  EXPECT_EQ(util::Crc32("", 0), 0x00000000u);
  uint8_t buf[64] = {};
  uint32_t clean = util::Crc32(buf, sizeof buf);
  buf[13] ^= 0x01;  // single bit flip must change the checksum
  EXPECT_NE(util::Crc32(buf, sizeof buf), clean);
}

TEST(FaultInjectorTest, FailsExactlyTheArmedReads) {
  util::ScopedFaultInjection fi;
  fi->ArmReadFault(/*nth=*/2, /*count=*/2);
  EXPECT_FALSE(fi->OnReadAttempt());  // 1st
  EXPECT_TRUE(fi->OnReadAttempt());   // 2nd: fault
  EXPECT_TRUE(fi->OnReadAttempt());   // 3rd: fault
  EXPECT_FALSE(fi->OnReadAttempt());  // 4th: disarmed again
  EXPECT_EQ(fi->injected_read_faults(), 2u);
  EXPECT_EQ(fi->reads_seen(), 4u);
}

TEST(FaultInjectorTest, UnboundedWriteFaultPersists) {
  util::ScopedFaultInjection fi;
  fi->ArmWriteFault(util::WriteFault::kBitFlip, /*nth=*/1, /*count=*/-1);
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(fi->OnWriteAttempt(), util::WriteFault::kBitFlip);
  }
  fi->Reset();
  EXPECT_EQ(fi->OnWriteAttempt(), util::WriteFault::kNone);
  EXPECT_FALSE(fi->armed());
}

TEST(BackoffTest, DelaysStayInsideBaseAndCap) {
  util::DecorrelatedJitterBackoff backoff(2.0, 50.0, /*seed=*/9);
  double prev = 2.0;
  for (int i = 0; i < 200; ++i) {
    double ms = backoff.NextDelayMs();
    EXPECT_GE(ms, 2.0);
    EXPECT_LE(ms, 50.0);
    // Decorrelated growth: each draw is bounded by 3x the previous delay.
    EXPECT_LE(ms, std::max(2.0, prev * 3.0) + 1e-9);
    prev = ms;
  }
}

TEST(BackoffTest, SequencesAreJitteredAndSeedDecorrelated) {
  util::DecorrelatedJitterBackoff a(1.0, 100.0, /*seed=*/1);
  util::DecorrelatedJitterBackoff b(1.0, 100.0, /*seed=*/2);
  util::DecorrelatedJitterBackoff a2(1.0, 100.0, /*seed=*/1);
  std::vector<double> sa, sb, sa2;
  for (int i = 0; i < 16; ++i) {
    sa.push_back(a.NextDelayMs());
    sb.push_back(b.NextDelayMs());
    sa2.push_back(a2.NextDelayMs());
  }
  EXPECT_EQ(sa, sa2);  // deterministic per seed (reproducible tests)
  EXPECT_NE(sa, sb);   // decorrelated across seeds (no thundering herd)
  // Jitter, not a ladder: the values do not repeat.
  std::vector<double> uniq = sa;
  std::sort(uniq.begin(), uniq.end());
  uniq.erase(std::unique(uniq.begin(), uniq.end()), uniq.end());
  EXPECT_GT(uniq.size(), sa.size() / 2);
}

TEST(BackoffTest, ResetRestartsFromBase) {
  util::DecorrelatedJitterBackoff backoff(1.0, 1000.0, /*seed=*/3);
  for (int i = 0; i < 10; ++i) backoff.NextDelayMs();
  backoff.Reset();
  EXPECT_LE(backoff.NextDelayMs(), 3.0);  // first post-reset draw: [1, 3]
}

TEST(BackoffTest, DegenerateConfigsAreClamped) {
  // cap below base: clamped up to base (constant delays, never negative).
  util::DecorrelatedJitterBackoff tight(5.0, 1.0, /*seed=*/4);
  for (int i = 0; i < 5; ++i) EXPECT_DOUBLE_EQ(tight.NextDelayMs(), 5.0);
  // zero/negative base: delays are zero, not NaN.
  util::DecorrelatedJitterBackoff zero(-1.0, 0.0, /*seed=*/5);
  for (int i = 0; i < 5; ++i) EXPECT_DOUBLE_EQ(zero.NextDelayMs(), 0.0);
}

class EnvParseTest : public ::testing::Test {
 protected:
  static constexpr const char* kVar = "VIEWJOIN_ENV_PARSE_TEST_VAR";
  void TearDown() override { unsetenv(kVar); }
};

TEST_F(EnvParseTest, UnsetOrEmptyReturnsDefault) {
  unsetenv(kVar);
  EXPECT_EQ(*util::ParseNonNegativeIntEnv(kVar, 42), 42);
  EXPECT_EQ(*util::ParseBoolEnv(kVar, true), true);
  setenv(kVar, "", 1);
  EXPECT_EQ(*util::ParseNonNegativeIntEnv(kVar, 7), 7);
  EXPECT_EQ(*util::ParseBoolEnv(kVar, false), false);
}

TEST_F(EnvParseTest, ValidValuesParse) {
  setenv(kVar, "150", 1);
  EXPECT_EQ(*util::ParseNonNegativeIntEnv(kVar, 0), 150);
  setenv(kVar, "0", 1);
  EXPECT_EQ(*util::ParseNonNegativeIntEnv(kVar, 5), 0);
  EXPECT_EQ(*util::ParseBoolEnv(kVar, true), false);
  setenv(kVar, "true", 1);
  EXPECT_EQ(*util::ParseBoolEnv(kVar, false), true);
  setenv(kVar, "false", 1);
  EXPECT_EQ(*util::ParseBoolEnv(kVar, true), false);
  setenv(kVar, "1", 1);
  EXPECT_EQ(*util::ParseBoolEnv(kVar, false), true);
}

TEST_F(EnvParseTest, MalformedValuesAreTypedErrorsNamingTheVariable) {
  // A set-but-ignored tuning knob would silently invalidate measurements;
  // malformed values must fail loudly instead of coercing to the default.
  for (const char* bad : {"100ms", "abc", "12.5", "-3", " 7", "99x"}) {
    setenv(kVar, bad, 1);
    util::StatusOr<int64_t> parsed = util::ParseNonNegativeIntEnv(kVar, 0);
    ASSERT_FALSE(parsed.ok()) << bad;
    EXPECT_EQ(parsed.status().code(), util::StatusCode::kInvalidArgument);
    EXPECT_NE(parsed.status().ToString().find(kVar), std::string::npos);
    EXPECT_NE(parsed.status().ToString().find(bad), std::string::npos);
  }
  for (const char* bad : {"yes", "no", "2", "TRUE", "ture"}) {
    setenv(kVar, bad, 1);
    util::StatusOr<bool> parsed = util::ParseBoolEnv(kVar, false);
    ASSERT_FALSE(parsed.ok()) << bad;
    EXPECT_EQ(parsed.status().code(), util::StatusCode::kInvalidArgument);
    EXPECT_NE(parsed.status().ToString().find(kVar), std::string::npos);
  }
}

}  // namespace
}  // namespace viewjoin
