// Unit tests for the util layer: table printer, deterministic RNG, timers,
// and the CHECK macros' failure behaviour.

#include <gtest/gtest.h>

#include <algorithm>
#include <string>

#include "util/check.h"
#include "util/rng.h"
#include "util/table_printer.h"
#include "util/timer.h"

namespace viewjoin {
namespace {

TEST(TablePrinterTest, AlignsColumnsToWidestCell) {
  util::TablePrinter table({"name", "value"});
  table.AddRow({"x", "1"});
  table.AddRow({"longer-name", "223344"});
  std::string out = table.ToString();
  // Header, separator, two rows.
  EXPECT_EQ(std::count(out.begin(), out.end(), '\n'), 4);
  EXPECT_NE(out.find("| name        | value  |"), std::string::npos);
  EXPECT_NE(out.find("| longer-name | 223344 |"), std::string::npos);
  EXPECT_NE(out.find("|-------------|--------|"), std::string::npos);
}

TEST(TablePrinterTest, RejectsRaggedRows) {
  util::TablePrinter table({"a", "b"});
  EXPECT_DEATH(table.AddRow({"only-one"}), "CHECK failed");
}

TEST(FormatTest, DoublesAndMegabytes) {
  EXPECT_EQ(util::FormatDouble(1.23456, 2), "1.23");
  EXPECT_EQ(util::FormatDouble(1.5, 0), "2");
  EXPECT_EQ(util::FormatMegabytes(3 * 1024 * 1024), "3.00 MB");
  EXPECT_EQ(util::FormatMegabytes(512 * 1024), "0.50 MB");
}

TEST(RngTest, DeterministicPerSeed) {
  util::Rng a(42);
  util::Rng b(42);
  util::Rng c(43);
  bool diverged = false;
  for (int i = 0; i < 100; ++i) {
    uint64_t va = a.Next();
    EXPECT_EQ(va, b.Next());
    if (va != c.Next()) diverged = true;
  }
  EXPECT_TRUE(diverged);
}

TEST(RngTest, UniformRangeIsInclusive) {
  util::Rng rng(7);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    int64_t v = rng.UniformRange(3, 5);
    EXPECT_GE(v, 3);
    EXPECT_LE(v, 5);
    saw_lo |= (v == 3);
    saw_hi |= (v == 5);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, BernoulliRoughlyCalibrated) {
  util::Rng rng(11);
  int hits = 0;
  for (int i = 0; i < 10000; ++i) hits += rng.Bernoulli(0.3);
  EXPECT_GT(hits, 2500);
  EXPECT_LT(hits, 3500);
}

TEST(RngTest, ZipfSkewsTowardLowRanks) {
  util::Rng rng(13);
  int low = 0;
  int high = 0;
  for (int i = 0; i < 5000; ++i) {
    uint64_t r = rng.Zipf(8, 1.2);
    EXPECT_LT(r, 8u);
    if (r == 0) ++low;
    if (r == 7) ++high;
  }
  EXPECT_GT(low, high * 2);
}

TEST(TimerTest, MeasuresElapsedTime) {
  util::Timer timer;
  volatile uint64_t sink = 0;
  while (timer.ElapsedMicros() < 1000) {
    for (int i = 0; i < 1000; ++i) sink = sink + static_cast<uint64_t>(i);
  }
  EXPECT_GE(timer.ElapsedMicros(), 1000);
  EXPECT_GT(timer.ElapsedMillis(), 0.9);
  timer.Reset();
  EXPECT_LT(timer.ElapsedMicros(), 1000);
}

TEST(AccumulatingTimerTest, SumsScopes) {
  util::AccumulatingTimer acc;
  for (int i = 0; i < 3; ++i) {
    util::AccumulatingTimer::Scope scope(&acc);
    util::Timer spin;
    while (spin.ElapsedMicros() < 200) {
    }
  }
  EXPECT_GE(acc.TotalMicros(), 600);
  acc.Reset();
  EXPECT_EQ(acc.TotalMicros(), 0);
}

TEST(CheckTest, PassingConditionIsSilent) {
  VJ_CHECK(1 + 1 == 2) << "never evaluated";
  VJ_CHECK_EQ(3, 3);
  VJ_CHECK_LT(1, 2);
  SUCCEED();
}

TEST(CheckTest, FailingConditionAbortsWithMessage) {
  EXPECT_DEATH(VJ_CHECK(false) << "context " << 42, "context 42");
  EXPECT_DEATH(VJ_CHECK_EQ(1, 2), "CHECK failed");
}

}  // namespace
}  // namespace viewjoin
