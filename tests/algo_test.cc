#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "algo/candidate_enumerator.h"
#include "algo/inter_join.h"
#include "algo/path_stack.h"
#include "algo/query_binding.h"
#include "algo/spill_buffer.h"
#include "algo/structural_join.h"
#include "algo/twig_stack.h"
#include "storage/materialized_view.h"
#include "tests/test_util.h"
#include "tpq/evaluator.h"

namespace viewjoin {
namespace {

using algo::OutputMode;
using algo::QueryBinding;
using storage::MaterializedView;
using storage::Scheme;
using storage::ViewCatalog;
using testing::MakeDoc;
using testing::MustParse;
using tpq::Axis;
using tpq::Match;
using tpq::TreePattern;
using xml::Label;

std::string TempPath(const char* name) {
  return std::string(::testing::TempDir()) + name;
}

std::vector<Match> SortedOracle(const xml::Document& doc,
                                const TreePattern& query) {
  std::vector<Match> matches = tpq::NaiveEvaluator(doc, query).Collect();
  tpq::SortMatches(&matches);
  return matches;
}

TEST(StructuralJoinTest, AncestorDescendantPairs) {
  std::vector<Label> anc = {{1, 20, 1}, {2, 9, 2}, {3, 4, 3}, {21, 30, 1}};
  std::vector<Label> desc = {{5, 6, 3}, {10, 11, 2}, {22, 23, 2}, {40, 41, 1}};
  std::vector<std::pair<size_t, size_t>> pairs;
  algo::StackTreeDesc(anc, desc, Axis::kDescendant,
                      [&](size_t i, size_t j) { pairs.emplace_back(i, j); });
  // (1,20)⊃(5,6),(10,11); (2,9)⊃(5,6); (21,30)⊃(22,23).
  std::vector<std::pair<size_t, size_t>> expected = {
      {0, 0}, {1, 0}, {0, 1}, {3, 2}};
  EXPECT_EQ(pairs, expected);
}

TEST(StructuralJoinTest, ParentAxisFiltersLevels) {
  std::vector<Label> anc = {{1, 10, 1}};
  std::vector<Label> desc = {{2, 3, 2}, {4, 5, 3}};
  std::vector<std::pair<size_t, size_t>> pairs;
  algo::StackTreeDesc(anc, desc, Axis::kChild,
                      [&](size_t i, size_t j) { pairs.emplace_back(i, j); });
  ASSERT_EQ(pairs.size(), 1u);
  EXPECT_EQ(pairs[0], (std::pair<size_t, size_t>{0, 0}));
}

TEST(SpillBufferTest, RoundTripsManyLabels) {
  storage::Pager pager(TempPath("spill_rt.db"));
  algo::SpillBuffer spill(&pager, 2);
  std::vector<Label> expected;
  for (uint32_t i = 0; i < 1000; ++i) {
    Label label{i * 2 + 1, i * 2 + 2, i % 7};
    spill.Append(0, label);
    expected.push_back(label);
  }
  spill.Append(1, Label{99, 100, 1});
  EXPECT_EQ(spill.Count(0), 1000u);
  std::vector<Label> got = spill.Drain(0);
  EXPECT_EQ(got, expected);
  EXPECT_EQ(spill.Count(0), 0u);
  // Stream 1 unaffected; pages are recycled across drains.
  EXPECT_EQ(spill.Drain(1).size(), 1u);
  uint64_t pages_before = pager.page_count();
  for (uint32_t i = 0; i < 1000; ++i) spill.Append(0, Label{i, i + 1, 0});
  spill.Drain(0);
  EXPECT_EQ(pager.page_count(), pages_before);  // recycled, no growth
}

class BoundAlgosTest : public ::testing::Test {
 protected:
  BoundAlgosTest() : catalog_(TempPath("algos.db"), 64) {}

  /// Materializes views and runs an algorithm, returning sorted matches.
  std::vector<Match> RunTwigStack(const xml::Document& doc,
                                  const TreePattern& query,
                                  const std::vector<std::string>& view_paths,
                                  Scheme scheme,
                                  OutputMode mode = OutputMode::kMemory) {
    std::vector<const MaterializedView*> views;
    for (const std::string& path : view_paths) {
      views.push_back(catalog_.Materialize(doc, MustParse(path), scheme));
    }
    std::string error;
    std::optional<QueryBinding> binding =
        QueryBinding::Bind(doc, query, views, &error);
    VJ_CHECK(binding.has_value()) << error;
    algo::TwigStack ts(&*binding, catalog_.pool());
    tpq::CollectingSink sink;
    storage::Pager spill(TempPath("algos_spill.db"));
    ts.Evaluate(&sink, mode, &spill);
    std::vector<Match> matches = sink.matches();
    tpq::SortMatches(&matches);
    return matches;
  }

  std::vector<Match> RunInterJoin(const xml::Document& doc,
                                  const TreePattern& query,
                                  const std::vector<std::string>& view_paths) {
    std::vector<const MaterializedView*> views;
    for (const std::string& path : view_paths) {
      views.push_back(catalog_.Materialize(doc, MustParse(path), Scheme::kTuple));
    }
    std::string error;
    std::optional<algo::InterJoin> join =
        algo::InterJoin::Bind(doc, query, views, catalog_.pool(), &error);
    VJ_CHECK(join.has_value()) << error;
    tpq::CollectingSink sink;
    join->Evaluate(&sink);
    std::vector<Match> matches = sink.matches();
    tpq::SortMatches(&matches);
    return matches;
  }

  ViewCatalog catalog_;
};

TEST_F(BoundAlgosTest, TwigStackAdPathAllSchemes) {
  xml::Document doc = MakeDoc("r(a(b(c) a(b(c c)) b) a(x(b(c))) b(c))");
  TreePattern query = MustParse("//a//b//c");
  std::vector<Match> expected = SortedOracle(doc, query);
  ASSERT_FALSE(expected.empty());
  for (Scheme scheme : {Scheme::kElement, Scheme::kLinkedElement,
                        Scheme::kLinkedElementPartial}) {
    EXPECT_EQ(RunTwigStack(doc, query, {"//a", "//b", "//c"}, scheme),
              expected);
    EXPECT_EQ(RunTwigStack(doc, query, {"//a//b", "//c"}, scheme), expected);
    EXPECT_EQ(RunTwigStack(doc, query, {"//a//b//c"}, scheme), expected);
  }
}

TEST_F(BoundAlgosTest, TwigStackTwigWithPcEdges) {
  xml::Document doc =
      MakeDoc("r(a(b(c d(e)) b(d) f) a(f(b(c)) b(d(e)) ) a(b(c)))");
  TreePattern query = MustParse("//a[//b/c]//d");
  std::vector<Match> expected = SortedOracle(doc, query);
  for (Scheme scheme : {Scheme::kElement, Scheme::kLinkedElement}) {
    EXPECT_EQ(RunTwigStack(doc, query, {"//a", "//b/c", "//d"}, scheme),
              expected);
  }
}

TEST_F(BoundAlgosTest, TwigStackDiskModeMatchesMemoryMode) {
  xml::Document doc = MakeDoc("r(a(b(c) a(b(c c)) b) a(x(b(c))) b(c))");
  TreePattern query = MustParse("//a//b//c");
  std::vector<Match> expected = SortedOracle(doc, query);
  EXPECT_EQ(RunTwigStack(doc, query, {"//a//b", "//c"}, Scheme::kElement,
                         OutputMode::kDisk),
            expected);
}

TEST_F(BoundAlgosTest, TwigStackEmptyResult) {
  xml::Document doc = MakeDoc("r(a(b) b(a))");
  TreePattern query = MustParse("//a//b//c");
  EXPECT_TRUE(
      RunTwigStack(doc, query, {"//a", "//b", "//c"}, Scheme::kElement)
          .empty());
}

TEST_F(BoundAlgosTest, PathStackRejectsTwigs) {
  xml::Document doc = MakeDoc("a(b c)");
  TreePattern twig = MustParse("//a[//b]//c");
  auto* v1 = catalog_.Materialize(doc, MustParse("//a"), Scheme::kElement);
  auto* v2 = catalog_.Materialize(doc, MustParse("//b"), Scheme::kElement);
  auto* v3 = catalog_.Materialize(doc, MustParse("//c"), Scheme::kElement);
  std::optional<QueryBinding> binding =
      QueryBinding::Bind(doc, twig, {v1, v2, v3});
  ASSERT_TRUE(binding.has_value());
  EXPECT_DEATH(algo::PathStack(&*binding, catalog_.pool()), "path queries");
}

TEST_F(BoundAlgosTest, BindingRejectsBadViewSets) {
  xml::Document doc = MakeDoc("a(b(c))");
  TreePattern query = MustParse("//a//b");
  auto* va = catalog_.Materialize(doc, MustParse("//a"), Scheme::kElement);
  auto* vc = catalog_.Materialize(doc, MustParse("//c"), Scheme::kElement);
  auto* vab = catalog_.Materialize(doc, MustParse("//a//b"), Scheme::kElement);
  std::string error;
  // Not covering.
  EXPECT_FALSE(QueryBinding::Bind(doc, query, {va, vc}, &error).has_value());
  // Overlapping element types.
  EXPECT_FALSE(QueryBinding::Bind(doc, query, {va, vab}, &error).has_value());
  EXPECT_NE(error.find("overlap"), std::string::npos);
  // Tuple views bind only via InterJoin.
  auto* tup = catalog_.Materialize(doc, MustParse("//b"), Scheme::kTuple);
  EXPECT_FALSE(QueryBinding::Bind(doc, query, {va, tup}, &error).has_value());
}

TEST_F(BoundAlgosTest, InterJoinPaperExample) {
  // Paper Section VII: Q = //a//b//c over views //a//c and //b.
  xml::Document doc = MakeDoc("r(a(b(c) c) a(c(b)) b(a(b(c))))");
  TreePattern query = MustParse("//a//b//c");
  std::vector<Match> expected = SortedOracle(doc, query);
  ASSERT_FALSE(expected.empty());
  EXPECT_EQ(RunInterJoin(doc, query, {"//a//c", "//b"}), expected);
  EXPECT_EQ(RunInterJoin(doc, query, {"//a", "//b", "//c"}), expected);
  EXPECT_EQ(RunInterJoin(doc, query, {"//a//b", "//c"}), expected);
  EXPECT_EQ(RunInterJoin(doc, query, {"//a//b//c"}), expected);
}

TEST_F(BoundAlgosTest, InterJoinPcEdges) {
  xml::Document doc = MakeDoc("r(a(b(c) x(b(c))) a(b(x(c))))");
  TreePattern query = MustParse("//a//b/c");
  std::vector<Match> expected = SortedOracle(doc, query);
  EXPECT_EQ(RunInterJoin(doc, query, {"//a//c", "//b"}), expected);
  // A single covering view stored with the weaker ad-edge must still verify
  // the query's pc-edge at emission.
  EXPECT_EQ(RunInterJoin(doc, query, {"//a//b//c"}), expected);
}

TEST_F(BoundAlgosTest, InterJoinRejectsNonPathInputs) {
  xml::Document doc = MakeDoc("a(b c)");
  auto* tup = catalog_.Materialize(doc, MustParse("//a"), Scheme::kTuple);
  auto* etup = catalog_.Materialize(doc, MustParse("//b"), Scheme::kElement);
  std::string error;
  EXPECT_FALSE(algo::InterJoin::Bind(doc, MustParse("//a[//b]//c"), {tup},
                                     catalog_.pool(), &error)
                   .has_value());
  EXPECT_FALSE(algo::InterJoin::Bind(doc, MustParse("//a//b"), {tup, etup},
                                     catalog_.pool(), &error)
                   .has_value());
  EXPECT_NE(error.find("tuple"), std::string::npos);
}

TEST(CandidateEnumeratorTest, FiltersNonJoiningCandidates) {
  xml::Document doc = MakeDoc("r(a(b) a b)");
  TreePattern query = MustParse("//a//b");
  algo::CandidateEnumerator enumerator(doc, query);
  // Overapproximated candidates: all a's and all b's.
  xml::TagId a = doc.FindTag("a");
  xml::TagId b = doc.FindTag("b");
  std::vector<std::vector<xml::NodeId>> candidates = {doc.NodesOfTag(a),
                                                      doc.NodesOfTag(b)};
  tpq::CollectingSink sink;
  enumerator.Enumerate(candidates, &sink);
  std::vector<Match> matches = sink.matches();
  tpq::SortMatches(&matches);
  EXPECT_EQ(matches, SortedOracle(doc, query));
}

TEST(CandidateEnumeratorTest, EmptyCandidateListShortCircuits) {
  xml::Document doc = MakeDoc("r(a(b))");
  TreePattern query = MustParse("//a//b");
  algo::CandidateEnumerator enumerator(doc, query);
  tpq::CollectingSink sink;
  enumerator.Enumerate({{0}, {}}, &sink);
  EXPECT_TRUE(sink.matches().empty());
}

}  // namespace
}  // namespace viewjoin
